//! Runtime configuration.

use std::sync::Arc;

use guesstimate_core::{CommuteMatrix, ShardPlan};
use guesstimate_net::SimTime;

/// Tunables of a GUESSTIMATE machine.
///
/// The defaults approximate the paper's deployment: a master that starts a
/// synchronization every few hundred milliseconds on a LAN, with a stall
/// timeout long enough that it only fires when something is genuinely wrong
/// (the paper's Figure 5 outliers are exactly such recoveries).
///
/// # Examples
///
/// ```
/// use guesstimate_net::SimTime;
/// use guesstimate_runtime::MachineConfig;
/// let cfg = MachineConfig::default().with_sync_period(SimTime::from_millis(100));
/// assert_eq!(cfg.sync_period, SimTime::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Master: delay between the end of one synchronization and the start of
    /// the next ("the master can start another synchronization any time
    /// after this", §4).
    pub sync_period: SimTime,
    /// Master: how long a stage may stall before recovery kicks in
    /// (resend, then removal + restart).
    pub stall_timeout: SimTime,
    /// Participant: how often to re-send `JoinRequest` until admitted.
    pub join_retry: SimTime,
    /// Ablation A1 (§9 "Scalable run-time"): flush all machines in parallel
    /// during stage 1 instead of the paper's serial turn-taking.
    pub parallel_flush: bool,
    /// Record the full committed-operation history on this machine
    /// (diagnostics / refinement checking against the formal semantics).
    pub record_history: bool,
    /// §9 "Fault tolerance" extension: when set, a member that hears
    /// nothing from the master for this long starts a master election
    /// (candidates ranked by committed progress, ties broken by machine
    /// id). `None` (the default, and the paper's behavior) means master
    /// failure is not tolerated.
    pub master_failover: Option<SimTime>,
    /// Commute-aware replay skipping (see `docs/ANALYSIS.md`): when every
    /// foreign operation committed by a round provably commutes with every
    /// still-pending local operation, patch the guesstimated store in place
    /// instead of rebuilding `sg = [P](sc)` from scratch. Off by default —
    /// the paper always rebuilds.
    pub commute_skip: bool,
    /// Method pairs validated as always-commuting by the offline analysis
    /// (`guesstimate-analysis`). Used as a fast path by the replay-skip
    /// check before falling back to per-argument footprint comparison.
    pub commute_matrix: CommuteMatrix,
    /// Debug-assert the §3 invariant `sg = [P](sc)` after **every**
    /// protocol step (`on_start` / `on_message` / `on_timer`).
    ///
    /// Used by the schedule model checker (`guesstimate-mc`) and by test
    /// clusters instead of ad-hoc per-test invariant calls. The assertion
    /// is a `debug_assert!`, so release builds pay nothing; the invariant
    /// replay makes debug runs quadratic in the pending-list length, which
    /// is why this is off by default.
    pub paranoid_checks: bool,
    /// Hybrid commit path (see `docs/PROTOCOL.md` "Commute-first async
    /// commits"): operations whose method is a *universal commuter* in
    /// [`MachineConfig::commute_matrix`] — it commutes with every method of
    /// its type, including itself — bypass the master-serialized round:
    /// they commit on the issuer immediately, broadcast in one hop, and
    /// apply at receivers in arrival order. Serialized operations keep the
    /// paper's total order. Off by default — the paper commits everything
    /// through rounds.
    pub async_commit: bool,
    /// With [`MachineConfig::paranoid_checks`] on, additionally probe for
    /// undeclared *reads* at every apply site (issue, commit, replay,
    /// async apply) via
    /// [`guesstimate_core::execute_witnessed`]'s perturbation probing —
    /// the live analog of the analysis witness sanitizer. Each apply
    /// re-executes the operation once per uncovered pre-state path, so
    /// this is far costlier than the write-containment check (which
    /// paranoid mode always performs) and is off by default.
    pub witness_reads: bool,
    /// Whether a witness-containment escape `debug_assert!`s (the
    /// default). The model checker's negative preset turns this off so
    /// escapes are *recorded* on the machine
    /// ([`crate::Machine::witness_violations`]) for its oracle to report
    /// — and ddmin-shrink — instead of aborting mid-delivery.
    pub witness_assert: bool,
    /// An analysis-derived shard plan (`analyze --shard-plan`; see
    /// `docs/ANALYSIS.md` "Shard plans"). When installed, every commit is
    /// labeled with its routed [`guesstimate_core::ShardId`] (feeding the
    /// per-shard telemetry counter), and under
    /// [`MachineConfig::paranoid_checks`] the commit sites additionally
    /// assert that the operation's declared footprints stay inside the
    /// routed shard (see [`crate::ShardViolation`]). `None` (the default)
    /// disables all shard accounting.
    pub shard_plan: Option<Arc<ShardPlan>>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            sync_period: SimTime::from_millis(250),
            stall_timeout: SimTime::from_secs(2),
            join_retry: SimTime::from_secs(1),
            parallel_flush: false,
            record_history: false,
            master_failover: None,
            commute_skip: false,
            commute_matrix: CommuteMatrix::new(),
            paranoid_checks: false,
            async_commit: false,
            witness_reads: false,
            witness_assert: true,
            shard_plan: None,
        }
    }
}

impl MachineConfig {
    /// Sets the master's inter-round delay.
    pub fn with_sync_period(mut self, p: SimTime) -> Self {
        self.sync_period = p;
        self
    }

    /// Sets the master's stage stall timeout.
    pub fn with_stall_timeout(mut self, t: SimTime) -> Self {
        self.stall_timeout = t;
        self
    }

    /// Enables the parallel first stage (Ablation A1).
    pub fn with_parallel_flush(mut self, on: bool) -> Self {
        self.parallel_flush = on;
        self
    }

    /// Sets the join-retry period.
    pub fn with_join_retry(mut self, t: SimTime) -> Self {
        self.join_retry = t;
        self
    }

    /// Enables committed-history recording (see [`MachineConfig::record_history`]).
    pub fn with_record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Enables master failover with the given silence threshold (should be
    /// several times the stall timeout, so recovery hiccups never trigger
    /// spurious elections).
    pub fn with_master_failover(mut self, timeout: SimTime) -> Self {
        self.master_failover = Some(timeout);
        self
    }

    /// Enables commute-aware replay skipping (see
    /// [`MachineConfig::commute_skip`]).
    pub fn with_commute_skip(mut self, on: bool) -> Self {
        self.commute_skip = on;
        self
    }

    /// Installs an analysis-validated commute matrix (see
    /// [`MachineConfig::commute_matrix`]).
    pub fn with_commute_matrix(mut self, m: CommuteMatrix) -> Self {
        self.commute_matrix = m;
        self
    }

    /// Enables per-step invariant assertions (see
    /// [`MachineConfig::paranoid_checks`]).
    pub fn with_paranoid_checks(mut self, on: bool) -> Self {
        self.paranoid_checks = on;
        self
    }

    /// Enables read-probing at apply sites under paranoid checks (see
    /// [`MachineConfig::witness_reads`]).
    pub fn with_witness_reads(mut self, on: bool) -> Self {
        self.witness_reads = on;
        self
    }

    /// Sets whether witness escapes assert or are only recorded (see
    /// [`MachineConfig::witness_assert`]).
    pub fn with_witness_assert(mut self, on: bool) -> Self {
        self.witness_assert = on;
        self
    }

    /// Installs an analysis-derived shard plan (see
    /// [`MachineConfig::shard_plan`]).
    pub fn with_shard_plan(mut self, plan: Arc<ShardPlan>) -> Self {
        self.shard_plan = Some(plan);
        self
    }

    /// Installs a shard plan parsed from an `analyze --json` schema-v3
    /// archive (the deployable form of [`MachineConfig::with_shard_plan`]):
    /// the build step runs `guesstimate analyze --json`, ships the archive
    /// with the application, and the runtime loads the validated plans
    /// back at startup without depending on the analyzer crate.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed archives (see
    /// [`ShardPlan::from_json_archive`]).
    pub fn with_shard_plan_from_json(self, archive: &str) -> Result<Self, String> {
        let plan = ShardPlan::from_json_archive(archive)?;
        Ok(self.with_shard_plan(Arc::new(plan)))
    }

    /// Enables the hybrid commute-first commit path (see
    /// [`MachineConfig::async_commit`]). Only effective together with a
    /// non-empty [`MachineConfig::commute_matrix`], which names the
    /// analysis-validated commuting pairs.
    pub fn with_async_commit(mut self, on: bool) -> Self {
        self.async_commit = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MachineConfig::default();
        assert!(c.sync_period < c.stall_timeout);
        assert!(!c.parallel_flush);
    }

    #[test]
    fn builders_set_fields() {
        let c = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(10))
            .with_stall_timeout(SimTime::from_millis(500))
            .with_join_retry(SimTime::from_millis(100))
            .with_parallel_flush(true);
        assert_eq!(c.sync_period, SimTime::from_millis(10));
        assert_eq!(c.stall_timeout, SimTime::from_millis(500));
        assert_eq!(c.join_retry, SimTime::from_millis(100));
        assert!(c.parallel_flush);
    }

    #[test]
    fn shard_plan_loads_from_v3_archive() {
        let archive = r#"{
          "version": 3,
          "apps": [{
            "type": "Pair",
            "shard_plan": {
              "components": [
                {"id": 0, "keyed": false, "prefixes": ["a"]},
                {"id": 1, "keyed": false, "prefixes": ["b"]}
              ],
              "routes": {
                "bump_a": {"kind": "local", "component": 0, "key_arg": null},
                "mix": {"kind": "cross"}
              }
            }
          }]
        }"#;
        let cfg = MachineConfig::default()
            .with_shard_plan_from_json(archive)
            .unwrap();
        let plan = cfg.shard_plan.as_ref().unwrap();
        assert_eq!(plan.types["Pair"].components.len(), 2);
        assert!(matches!(
            plan.types["Pair"].routes["mix"],
            guesstimate_core::Routing::CrossShard
        ));
        assert!(MachineConfig::default()
            .with_shard_plan_from_json("{\"version\": 9, \"apps\": []}")
            .is_err());
    }
}
