//! Commit-side machinery: applying a consolidated round, the commute-skip
//! judgment, join initialization, and restarts.
//!
//! These are the [`Machine`] operations that touch the replicated stores
//! (`sc`, `sg`) and the pending list in bulk. They are invoked by the
//! composer in [`crate::protocol`] when it lowers role effects —
//! [`Machine::apply_committed_round`] behind `Effect::TryApply`,
//! [`Machine::init_from_join_info`] on `JoinInfo`, and
//! [`Machine::reset_for_restart`] behind `Effect::SelfRestart`.

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::{
    containment_escapes, declared_footprints, execute, execute_witnessed, CompletionQueue,
    ExecError, ExecOutcome, Footprint, MachineId, ObjectId, ObjectStore, OpId, OpRegistry,
    ProbeReads, SharedOp,
};
use guesstimate_net::{ReplayCause, SimTime, TraceEvent};

use crate::commute;
use crate::config::MachineConfig;
use crate::machine::Machine;
use crate::message::{ObjectInit, WireEnvelope, WireOp};

impl Machine {
    /// Applies one round's consolidated, ordered operation list to the
    /// committed state, then re-establishes `sg = [P](sc)`: copy `sc → sg`,
    /// run queued completion routines, replay remaining pending operations.
    ///
    /// With [`crate::MachineConfig::commute_skip`] enabled, the rebuild is
    /// elided whenever every foreign commit provably commutes with the whole
    /// pending list (see [`Machine::can_skip_replay`]); the guesstimated
    /// store is then patched in place instead.
    ///
    /// Returns the number of operations committed.
    pub(crate) fn apply_committed_round(
        &mut self,
        ordered: Vec<WireEnvelope>,
        round: u64,
        now: SimTime,
    ) -> u64 {
        // The commutation judgment must see the pending list *before* the
        // commit loop below pops own operations off its front.
        let skip = self.cfg.commute_skip && self.can_skip_replay(&ordered);
        let mut queue = CompletionQueue::new();
        let mut remote_touched: BTreeSet<ObjectId> = BTreeSet::new();
        let n = ordered.len() as u64;
        for env in &ordered {
            if env.id.machine() != self.id && !self.remote_hooks.is_empty() {
                match &env.op {
                    WireOp::Create { object, .. } => {
                        remote_touched.insert(*object);
                    }
                    WireOp::Shared(op) => {
                        remote_touched.extend(op.objects_touched());
                    }
                    // Markers touch no state; the wrapper fires hooks for the
                    // payload's objects when the coordinated round resolves.
                    WireOp::CrossMarker { .. } => {}
                }
            }
            if let WireOp::Create {
                object, type_name, ..
            } = &env.op
            {
                self.catalog.insert(*object, type_name.clone());
            }
            let result = execute_wire_checked(
                &env.op,
                &mut self.committed,
                &self.registry,
                &self.cfg,
                self.id,
                "commit",
                &mut self.witness_log,
            )
            .expect("commit: registries must agree on every machine");
            self.note_shard_commit(&env.op, "commit");
            if matches!(env.op, WireOp::CrossMarker { .. }) {
                // Hand the committed marker to the multi-group wrapper: its
                // position in this group's commit order *is* the agreed
                // interleaving point of the coordinated round.
                self.cross_commits.push(env.clone());
            }
            self.completed.push(env.id);
            self.completed_serialized.push(env.id);
            if self.cfg.record_history {
                self.history.push(env.clone());
            }
            if env.id.machine() == self.id {
                let count = self.exec_counts.remove(&env.id).unwrap_or(0) + 1;
                self.stats.record_exec_count(count);
                self.stats.committed_own += 1;
                self.telemetry.op_committed(env.id, round, count, now);
                if !result {
                    // Succeeded at issue (only successful ops are enqueued),
                    // failed at commit: a conflict (Figure 7).
                    self.stats.conflicts += 1;
                }
                match self.pending.front() {
                    Some(front) if front.id == env.id => {
                        self.pending.pop_front();
                    }
                    _ => debug_assert!(false, "own op committed out of pending order"),
                }
                if let Some(c) = self.completions.remove(&env.id) {
                    queue.push(env.id, result, c);
                    self.telemetry.op_completed(env.id, now);
                }
                if let Some(t) = self.issue_times.remove(&env.id) {
                    self.stats.commit_latencies.push(now.saturating_since(t));
                }
            } else {
                self.stats.committed_foreign += 1;
            }
        }
        if skip {
            // Every foreign commit commutes past the whole pending list, so
            // `sg = [P](sc)` survives the round up to appending the foreign
            // ops: own committed ops already acted first in `sg` (they sat
            // at the front of `P`), and the still-pending tail need not
            // re-execute. Skipped replays do not count as executions, so
            // `exec_counts` is deliberately left alone.
            for env in &ordered {
                if env.id.machine() != self.id {
                    let _ = execute_wire_checked(
                        &env.op,
                        &mut self.guess,
                        &self.registry,
                        &self.cfg,
                        self.id,
                        "commute-skip",
                        &mut self.witness_log,
                    );
                }
            }
            let skipped = self.pending.len() as u64;
            self.stats.replays_skipped += skipped;
            self.stats.completions_run += queue.run_all() as u64;
            self.trace(
                now,
                TraceEvent::ReplaySkipped {
                    round,
                    pending: skipped,
                },
            );
        } else {
            // §4 steps (i)-(iii): copy committed onto guesstimated, run the
            // pending completion routines, replay the still-pending operations.
            self.guess.copy_from(&self.committed);
            self.stats.completions_run += queue.run_all() as u64;
            let still_pending: Vec<WireEnvelope> = self.pending.iter().cloned().collect();
            for env in &still_pending {
                let _ = execute_wire_checked(
                    &env.op,
                    &mut self.guess,
                    &self.registry,
                    &self.cfg,
                    self.id,
                    "replay",
                    &mut self.witness_log,
                );
                self.stats.replays += 1;
                *self.exec_counts.entry(env.id).or_insert(0) += 1;
            }
            if !still_pending.is_empty() {
                let cause = if ordered.iter().any(|e| e.id.machine() != self.id) {
                    ReplayCause::ForeignConflict
                } else {
                    ReplayCause::RoundReplay
                };
                self.trace(
                    now,
                    TraceEvent::Reexecuted {
                        round,
                        pending: still_pending.len() as u64,
                        cause,
                    },
                );
            }
        }
        self.stats.rounds_applied += 1;
        for object in remote_touched {
            for hook in &mut self.remote_hooks {
                hook(object);
            }
        }
        // Async operations held back because their object's Create had not
        // committed here yet may have just become applicable.
        if self.cfg.async_commit {
            self.drain_async(now);
        }
        n
    }

    /// Decides whether this round's rebuild of `sg = [P](sc)` may be
    /// skipped: every foreign committed operation must provably commute
    /// with every operation in the pending list `P` — own ops about to
    /// commit included, since skipping implicitly reorders each foreign op
    /// past all of them. A round that commits no foreign operation always
    /// qualifies (own commits act first in both stores, so `sg` is already
    /// `[P'](sc')`).
    ///
    /// Proofs, strongest-first per pair: disjoint touched-object sets;
    /// the analysis-validated [`crate::MachineConfig::commute_matrix`]; and
    /// argument-precise footprint disjointness from the methods' declared
    /// [`guesstimate_core::EffectSpec`]s (see [`crate::commute`]). Any pair
    /// left unproven — including any operation whose method lacks a
    /// declared effect — forces the full rebuild.
    fn can_skip_replay(&self, ordered: &[WireEnvelope]) -> bool {
        if self.pending.is_empty() {
            return false; // nothing to skip; the rebuild is a plain copy
        }
        // Objects created this round are not in the catalog yet.
        let mut created: BTreeMap<ObjectId, String> = BTreeMap::new();
        for env in ordered {
            if let WireOp::Create {
                object, type_name, ..
            } = &env.op
            {
                created.insert(*object, type_name.clone());
            }
        }
        let type_of = |id: ObjectId| {
            created
                .get(&id)
                .cloned()
                .or_else(|| self.catalog.get(&id).cloned())
        };
        let pending_objs: Vec<(&WireEnvelope, BTreeSet<ObjectId>)> = self
            .pending
            .iter()
            .map(|env| (env, commute::wire_objects(&env.op)))
            .collect();
        for f in ordered.iter().filter(|e| e.id.machine() != self.id) {
            let f_objs = commute::wire_objects(&f.op);
            let mut f_fps: Option<BTreeMap<ObjectId, Footprint>> = None;
            for (p, p_objs) in &pending_objs {
                if f_objs.is_disjoint(p_objs) {
                    continue; // per-object state: disjoint objects commute
                }
                if commute::matrix_commutes(&self.cfg.commute_matrix, &type_of, &f.op, &p.op) {
                    continue;
                }
                if f_fps.is_none() {
                    match commute::wire_footprints(&self.registry, &type_of, &f.op) {
                        Some(fp) => f_fps = Some(fp),
                        None => return false,
                    }
                }
                let ffp = f_fps.as_ref().expect("computed above");
                let Some(pfp) = commute::wire_footprints(&self.registry, &type_of, &p.op) else {
                    return false;
                };
                let all_disjoint =
                    f_objs
                        .intersection(p_objs)
                        .all(|id| match (ffp.get(id), pfp.get(id)) {
                            (Some(a), Some(b)) => a.disjoint(b),
                            _ => false,
                        });
                if !all_disjoint {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the catalog snapshot + completed history shipped to a joining
    /// machine (the master's side of "sends the new device both the list of
    /// available objects and the list of completed operations"), plus the
    /// hybrid path's serialized-only subsequence and per-sender async
    /// watermarks (both trivial when `async_commit` is off).
    #[allow(clippy::type_complexity)]
    pub(crate) fn build_join_info(
        &self,
    ) -> (Vec<ObjectInit>, Vec<OpId>, Vec<OpId>, Vec<(MachineId, u64)>) {
        let catalog = self
            .committed
            .iter()
            .map(|(id, obj)| ObjectInit {
                id,
                type_name: obj.type_name().to_owned(),
                state: obj.snapshot(),
            })
            .collect();
        (
            catalog,
            self.completed.clone(),
            self.completed_serialized.clone(),
            self.async_watermarks(),
        )
    }

    /// Initializes committed and guesstimated state from a `JoinInfo`.
    ///
    /// Pending operations issued before admission are preserved and
    /// replayed onto the fresh guesstimated state; they commit in this
    /// machine's first round.
    pub(crate) fn init_from_join_info(
        &mut self,
        catalog: Vec<ObjectInit>,
        completed: Vec<OpId>,
        completed_serialized: Vec<OpId>,
        async_watermarks: Vec<(MachineId, u64)>,
        now: SimTime,
    ) {
        self.committed = ObjectStore::new();
        self.catalog.clear();
        for oi in catalog {
            let mut obj = self
                .registry
                .construct(&oi.type_name)
                .expect("join: type must be registered on every machine");
            obj.restore(&oi.state)
                .expect("join: snapshot must match registered type");
            self.committed.insert(oi.id, obj);
            self.catalog.insert(oi.id, oi.type_name);
        }
        self.completed = completed;
        self.completed_serialized = completed_serialized;
        let own_watermark = self.install_async_watermarks(async_watermarks);
        if self.cfg.async_commit {
            // Own async commits the master never saw are absent from the
            // snapshot; re-apply them from the (restart-surviving) window.
            self.restore_unseen_asyncs(own_watermark, now);
        }
        self.guess.copy_from(&self.committed);
        let still_pending: Vec<WireEnvelope> = self.pending.iter().cloned().collect();
        for env in &still_pending {
            if let WireOp::Create {
                object, type_name, ..
            } = &env.op
            {
                self.catalog.insert(*object, type_name.clone());
            }
            let _ = execute_wire_checked(
                &env.op,
                &mut self.guess,
                &self.registry,
                &self.cfg,
                self.id,
                "join-replay",
                &mut self.witness_log,
            );
            self.stats.replays += 1;
            *self.exec_counts.entry(env.id).or_insert(0) += 1;
        }
        if !still_pending.is_empty() {
            self.trace(
                now,
                TraceEvent::Reexecuted {
                    round: 0,
                    pending: still_pending.len() as u64,
                    cause: ReplayCause::JoinReplay,
                },
            );
        }
        self.membership.joined_system = true;
        // Round bookkeeping restarts with the new membership epoch: the
        // first BeginSync after (re-)admission re-anchors the numbering.
        self.participant.next_round_expected = None;
        self.participant.buffered.clear();
        self.participant.round = None;
        // Async ops buffered while unjoined (or held on a missing object
        // that the snapshot just materialized) may now be applicable.
        if self.cfg.async_commit {
            self.drain_async(now);
        }
    }

    /// Resets all replicated state, as the paper's restart signal does:
    /// "the machine shuts down the current instance of the application and
    /// restarts the application. Upon restart the machine re-enters the
    /// system in a consistent state." Pending operations and their
    /// completion routines are lost (and counted).
    pub(crate) fn reset_for_restart(&mut self) {
        self.stats.restarts += 1;
        self.telemetry
            .machine_restarted(self.id, self.pending.len() as u64);
        self.stats.ops_lost_to_restart += self.pending.len() as u64;
        self.stats.completions_dropped += self.completions.len() as u64;
        self.pending.clear();
        self.completions.clear();
        self.exec_counts.clear();
        self.issue_times.clear();
        self.committed = ObjectStore::new();
        self.guess = ObjectStore::new();
        self.catalog.clear();
        self.completed.clear();
        self.completed_serialized.clear();
        self.cross_commits.clear();
        // Hybrid path: inbound async state is rebuilt from the rejoin's
        // watermarks. The *outbound* fence window and the monotone
        // `aseq_next` deliberately survive the restart — they are what lets
        // a restarted issuer re-fence (and locally restore) async commits
        // the master never observed; see `Machine::restore_unseen_asyncs`.
        self.async_in.clear();
        self.membership.joined_system = false;
        self.membership.in_cohort = false;
        self.participant.next_round_expected = None;
        self.participant.round = None;
        self.participant.buffered.clear();
    }
}

/// Executes a wire operation against a store.
///
/// `Create` materializes the object (idempotently overwriting any stale
/// instance) and always succeeds; `Shared` defers to the core engine.
pub(crate) fn execute_wire(
    op: &WireOp,
    store: &mut ObjectStore,
    registry: &OpRegistry,
) -> Result<bool, ExecError> {
    match op {
        WireOp::Create {
            object,
            type_name,
            init,
        } => {
            let mut obj = registry.construct(type_name)?;
            obj.restore(init)
                .expect("create: snapshot must match registered type");
            store.insert(*object, obj);
            Ok(true)
        }
        WireOp::Shared(op) => Ok(execute(op, store, registry)?.as_bool()),
        // Markers are store no-ops: the payload runs against the merged
        // multi-group state at resolution, not here.
        WireOp::CrossMarker { .. } => Ok(true),
    }
}

/// One witness-containment escape observed at a runtime apply site: the
/// operation accessed state outside its methods' declared
/// [`guesstimate_core::EffectSpec`] footprints.
///
/// Recorded on the machine ([`Machine::witness_violations`]); with
/// [`MachineConfig::witness_assert`] (the default) it also
/// `debug_assert!`s, making every paranoid test cluster and the model
/// checker a live race detector for footprint declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessViolation {
    /// The apply site that observed the escape ("issue", "commit",
    /// "commute-skip", "replay", "join-replay", "async-issue",
    /// "async-commit", "async-apply", "async-restore").
    pub site: &'static str,
    /// The rendered [`guesstimate_core::WitnessEscape`].
    pub detail: String,
}

impl std::fmt::Display for WitnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}", self.detail, self.site)
    }
}

/// Bound on recorded violations per machine: one escaping method at a hot
/// apply site would otherwise grow the log with every delivery.
const WITNESS_LOG_CAP: usize = 64;

/// [`execute`] with witness-containment checking under
/// [`MachineConfig::paranoid_checks`].
///
/// When paranoid mode is off, or any constituent method lacks a declared
/// effect (nothing to contain against), this is exactly [`execute`].
/// Otherwise the op runs witnessed — write containment always, read
/// probing when [`MachineConfig::witness_reads`] — and any escape is
/// recorded in `log` and (with [`MachineConfig::witness_assert`])
/// `debug_assert!`ed.
pub(crate) fn execute_shared_checked(
    op: &SharedOp,
    store: &mut ObjectStore,
    registry: &OpRegistry,
    cfg: &MachineConfig,
    machine: MachineId,
    site: &'static str,
    log: &mut Vec<WitnessViolation>,
) -> Result<ExecOutcome, ExecError> {
    if !cfg.paranoid_checks {
        return execute(op, store, registry);
    }
    let Some(declared) = declared_footprints(op, store, registry) else {
        return execute(op, store, registry);
    };
    let probe = if cfg.witness_reads {
        ProbeReads::Uncovered
    } else {
        ProbeReads::Off
    };
    let (outcome, witness) = execute_witnessed(op, store, registry, probe)?;
    for escape in containment_escapes(&witness, &declared) {
        if cfg.witness_assert {
            debug_assert!(
                false,
                "witness escape on {machine:?} at {site}: {escape} (op {op:?})"
            );
        }
        if log.len() < WITNESS_LOG_CAP {
            log.push(WitnessViolation {
                site,
                detail: escape.to_string(),
            });
        }
    }
    Ok(outcome)
}

/// [`execute_wire`] with witness-containment checking; see
/// [`execute_shared_checked`]. `Create` has nothing to check (it writes
/// its object's whole snapshot by definition).
pub(crate) fn execute_wire_checked(
    op: &WireOp,
    store: &mut ObjectStore,
    registry: &OpRegistry,
    cfg: &MachineConfig,
    machine: MachineId,
    site: &'static str,
    log: &mut Vec<WitnessViolation>,
) -> Result<bool, ExecError> {
    match op {
        WireOp::Create { .. } | WireOp::CrossMarker { .. } => execute_wire(op, store, registry),
        WireOp::Shared(op) => {
            Ok(execute_shared_checked(op, store, registry, cfg, machine, site, log)?.as_bool())
        }
    }
}
