//! The hybrid commit path: commute-first asynchronous commits.
//!
//! The paper's synchronizer totally orders *every* operation through the
//! master's serial-turn rounds, so even an operation that provably
//! commutes with everything pays a full round of latency before it
//! commits. This module adds a second, CRDT-style commit path for the
//! *universal commuters* of a type — methods the validated
//! [`guesstimate_core::CommuteMatrix`] proves always-commuting with every
//! registered method of their type, themselves included (see
//! [`crate::commute::universal_commuters`]):
//!
//! - **Issue** ([`Machine::issue_hybrid`]): an eligible operation executes
//!   on the guesstimated state, commits immediately to the local committed
//!   state, runs its completion routine, and is broadcast as
//!   [`Msg::AsyncOp`] — all in one step, no round involved. Its
//!   issue-to-commit latency is one local step instead of a sync period.
//! - **Receive** ([`Machine::handle_async_op`]): receivers apply foreign
//!   async operations in per-sender FIFO order (an `aseq` watermark plus a
//!   reorder buffer), patching both `sc` and `sg` in place. Because the
//!   operation commutes — in final state *and* results — with every
//!   operation that can ever interleave with it, arrival-order application
//!   yields the same state on every machine, and `sg = [P](sc)` is
//!   preserved by patching both stores.
//! - **Fence** ([`Machine::take_async_window`] /
//!   [`Machine::apply_async_batch`]): every flush piggybacks the sender's
//!   not-yet-fenced async window on its `Msg::Ops` batch, which rides the
//!   round's reliability machinery (`FlushDone` counts, `OpsRequest`
//!   resends). A serialized round therefore observes every async commit
//!   that causally preceded the flush, and a receiver that lost the
//!   original `AsyncOp` broadcast is repaired at the next round boundary.
//!   The window is trimmed only once a round in which it rode a non-empty
//!   (and therefore resend-guaranteed) flush completes; until then it is
//!   re-piggybacked, and the watermark makes duplicates harmless.
//!
//! Serialized operations (composites, non-universal methods, operations
//! on objects whose creation has not committed here yet) keep the paper's
//! total order untouched. The model checker's hybrid oracle checks the
//! split directly: serialized commits stay prefix-ordered across machines
//! ([`Machine::completed_serialized`]), and machines whose full committed
//! *sets* agree must agree on the committed digest.
//!
//! **Durability caveat** (documented in `docs/PROTOCOL.md`): an issuer's
//! async commits are locally durable only up to a restart. The fence
//! window survives [`Machine::reset_for_restart`] precisely so that a
//! restarted issuer can re-fence (and, via the master's join-time
//! watermarks, locally re-apply) async operations the master had not yet
//! observed; see [`Machine::restore_unseen_asyncs`].

use std::collections::BTreeMap;

use guesstimate_core::{CompletionFn, ExecError, MachineId, SharedOp};
use guesstimate_net::{Channel, Ctx, ReplayCause, SimTime, TraceEvent};

use crate::commute::universal_commuters;
#[cfg(test)]
use crate::exec::execute_wire;
use crate::exec::execute_wire_checked;
use crate::machine::Machine;
use crate::message::{Msg, WireEnvelope, WireOp};
use crate::roles::AsyncBatch;

/// Per-sender inbound async state: the next expected sequence number and
/// a reorder buffer for out-of-order (or held-back) arrivals.
///
/// Async operations from one sender apply here in that sender's issue
/// order — not because commutation requires it (it does not), but because
/// a dense per-sender sequence makes duplicate suppression and loss
/// repair a single integer comparison.
#[derive(Debug, Default)]
pub(crate) struct AsyncIn {
    /// The next `aseq` expected from this sender; everything below has
    /// been applied (or was folded into a join snapshot).
    pub(crate) next: u64,
    /// Arrived-but-not-yet-applied operations, keyed by `aseq`.
    pub(crate) buffer: BTreeMap<u64, WireEnvelope>,
}

impl Machine {
    /// Issues a shared operation through the hybrid commit path
    /// (`async_commit`): a *universal commuter* commits asynchronously —
    /// locally now, remotely on arrival — while anything else falls back
    /// to [`Machine::issue_at`] and the serialized round path.
    ///
    /// Returns `Ok(true)` if the operation succeeded on the guesstimated
    /// state (and, on the async path, committed), `Ok(false)` if it failed
    /// at issue and was dropped — exactly the rule-R2 contract of
    /// [`Machine::issue`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    pub fn issue_hybrid(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        ctx: &mut Ctx<'_, Msg>,
    ) -> Result<bool, ExecError> {
        if self.async_eligible(&op) {
            self.commit_async_own(op, completion, ctx)
        } else {
            self.issue_inner(op, completion, Some(ctx.now()))
        }
    }

    /// Issue-time classification: may `op` take the async path?
    ///
    /// Requires, in order: the hybrid path enabled and this machine
    /// admitted; a *primitive* operation (composites always serialize —
    /// their branch structure is not covered by the per-method matrix
    /// rows); an object whose creation has **committed** here (an object
    /// still guess-only could reach receivers before its `Create`, and the
    /// issuer's own `Create` must keep its round-ordered slot); and a
    /// method in the type's universal-commuter set, which also implies a
    /// declared argument footprint.
    fn async_eligible(&mut self, op: &SharedOp) -> bool {
        if !self.cfg.async_commit || !self.membership.joined_system {
            return false;
        }
        let SharedOp::Primitive { object, method, .. } = op else {
            return false;
        };
        if !self.committed.contains(*object) {
            return false;
        }
        let Some(ty) = self.catalog.get(object).cloned() else {
            return false;
        };
        self.universal_set(&ty).contains(method.as_str())
    }

    /// The memoized universal-commuter set of one type (the matrix and
    /// registry are fixed for the machine's lifetime, so each type is
    /// classified once).
    fn universal_set(&mut self, ty: &str) -> &std::collections::BTreeSet<String> {
        if !self.universal_cache.contains_key(ty) {
            let set = universal_commuters(&self.registry, &self.cfg.commute_matrix, ty);
            self.universal_cache.insert(ty.to_owned(), set);
        }
        &self.universal_cache[ty]
    }

    /// The async fast path for an own operation: execute on `sg` (rule
    /// R2), commit to `sc`, complete, broadcast. Two executions total —
    /// the issue-time run and the commit-time run happen back to back —
    /// and an issue-to-commit latency of zero.
    fn commit_async_own(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        ctx: &mut Ctx<'_, Msg>,
    ) -> Result<bool, ExecError> {
        let now = ctx.now();
        let outcome = crate::exec::execute_shared_checked(
            &op,
            &mut self.guess,
            &self.registry,
            &self.cfg,
            self.id,
            "async-issue",
            &mut self.witness_log,
        )?;
        if !outcome.is_success() {
            self.stats.issue_failures += 1;
            return Ok(false);
        }
        let op_id = self.next_op_id();
        let env = WireEnvelope {
            id: op_id,
            op: WireOp::Shared(op),
        };
        let result = execute_wire_checked(
            &env.op,
            &mut self.committed,
            &self.registry,
            &self.cfg,
            self.id,
            "async-commit",
            &mut self.witness_log,
        )
        .expect("async commit: the op just executed on sg, so sc must accept it");
        self.note_shard_commit(&env.op, "async-commit");
        self.completed.push(op_id);
        if self.cfg.record_history {
            self.history.push(env.clone());
        }
        self.stats.issued += 1;
        self.stats.record_exec_count(2);
        self.stats.committed_own += 1;
        self.stats.committed_async_own += 1;
        self.stats.async_commit_latencies.push(SimTime::ZERO);
        if !result {
            // Succeeded on sg an instant ago but failed on sc: a conflict,
            // same accounting as the round path (Figure 7). For a true
            // universal commuter results agree everywhere, so this only
            // fires for methods mis-declared in a hand-built matrix.
            self.stats.conflicts += 1;
        }
        self.telemetry.op_issued(op_id, Some(now));
        self.telemetry.op_committed_async(op_id, 2, now);
        if let Some(c) = completion {
            c(result);
            self.stats.completions_run += 1;
            self.telemetry.op_completed(op_id, now);
        }
        let aseq = self.aseq_next;
        self.aseq_next += 1;
        self.async_window.push((aseq, env.clone()));
        ctx.broadcast(Channel::Operations, Msg::AsyncOp { aseq, env });
        Ok(true)
    }

    /// Receives one [`Msg::AsyncOp`]: buffer by `(sender, aseq)`, then
    /// drain everything that became applicable.
    pub(crate) fn handle_async_op(
        &mut self,
        from: MachineId,
        aseq: u64,
        env: WireEnvelope,
        now: SimTime,
    ) {
        if !self.cfg.async_commit || !self.membership.joined_system || from == self.id {
            return;
        }
        let slot = self.async_in.entry(from).or_default();
        if aseq < slot.next {
            return; // duplicate: already applied or folded into a join snapshot
        }
        slot.buffer.insert(aseq, env);
        self.drain_async(now);
    }

    /// Applies a flush-piggybacked async window (the round-boundary
    /// fence). Runs *before* round gating, so the fence repairs lost
    /// `AsyncOp` broadcasts even when the carrying `Ops` message is
    /// buffered early, stale, or resent — the watermark absorbs every
    /// duplicate.
    pub(crate) fn apply_async_batch(&mut self, from: MachineId, asyncs: &AsyncBatch, now: SimTime) {
        if !self.cfg.async_commit
            || !self.membership.joined_system
            || from == self.id
            || asyncs.is_empty()
        {
            return;
        }
        for (aseq, env) in asyncs.iter() {
            let slot = self.async_in.entry(from).or_default();
            if *aseq < slot.next {
                continue;
            }
            slot.buffer.insert(*aseq, env.clone());
        }
        self.drain_async(now);
    }

    /// Drains every buffered async operation that is ready: in-sequence
    /// for its sender, and touching only objects whose creation has
    /// committed here. An operation racing ahead of its object's `Create`
    /// (which travels the serialized path) simply waits; the drain re-runs
    /// after every round apply and join initialization.
    pub(crate) fn drain_async(&mut self, now: SimTime) {
        let mut applied: u64 = 0;
        let senders: Vec<MachineId> = self.async_in.keys().copied().collect();
        for sender in senders {
            loop {
                let ready = {
                    let slot = self.async_in.get_mut(&sender).expect("sender listed");
                    match slot.buffer.get(&slot.next) {
                        Some(env) => {
                            let applicable = crate::commute::wire_objects(&env.op)
                                .iter()
                                .all(|o| self.committed.contains(*o));
                            if applicable {
                                let env = slot.buffer.remove(&slot.next).expect("just seen");
                                slot.next += 1;
                                Some(env)
                            } else {
                                None // hold: FIFO per sender, retry after the next commit
                            }
                        }
                        None => None,
                    }
                };
                match ready {
                    Some(env) => {
                        self.apply_async_foreign(env);
                        applied += 1;
                    }
                    None => break,
                }
            }
        }
        if applied > 0 {
            self.trace(
                now,
                TraceEvent::Reexecuted {
                    round: 0,
                    pending: applied,
                    cause: ReplayCause::AsyncPatch,
                },
            );
        }
    }

    /// Commits one foreign async operation: patch `sc`, patch `sg` (the
    /// operation commutes past the whole pending list, so `sg = [P](sc)`
    /// survives appending it to both sides), record it, fire remote-update
    /// hooks.
    fn apply_async_foreign(&mut self, env: WireEnvelope) {
        let _ = execute_wire_checked(
            &env.op,
            &mut self.committed,
            &self.registry,
            &self.cfg,
            self.id,
            "async-apply",
            &mut self.witness_log,
        )
        .expect("async apply: registries must agree on every machine");
        let _ = execute_wire_checked(
            &env.op,
            &mut self.guess,
            &self.registry,
            &self.cfg,
            self.id,
            "async-apply",
            &mut self.witness_log,
        )
        .expect("async apply: sg holds every object sc holds");
        self.note_shard_commit(&env.op, "async-apply");
        self.completed.push(env.id);
        if self.cfg.record_history {
            self.history.push(env.clone());
        }
        self.stats.committed_foreign += 1;
        self.stats.committed_async_foreign += 1;
        if !self.remote_hooks.is_empty() {
            if let WireOp::Shared(op) = &env.op {
                for object in op.objects_touched() {
                    for hook in &mut self.remote_hooks {
                        hook(object);
                    }
                }
            }
        }
    }

    /// The not-yet-fenced async window, to piggyback on a flush. The
    /// window is *not* consumed — see [`Machine::trim_async_window`] for
    /// when entries actually leave it.
    pub(crate) fn take_async_window(&self) -> AsyncBatch {
        std::sync::Arc::new(self.async_window.clone())
    }

    /// Trims the fence window after a round completes: entries that rode
    /// this round's flush alongside a **non-empty** serialized batch are
    /// guaranteed delivered (the batch's `FlushDone` count makes the `Ops`
    /// message resend-protected), so they need no further fencing. A
    /// zero-op flush carries the window best-effort only, so its entries
    /// stay and ride the next flush too.
    pub(crate) fn trim_async_window(&mut self) {
        let Some(rs) = self.participant.round.as_ref() else {
            return;
        };
        if !rs.flushed || rs.my_flush.is_empty() || rs.my_asyncs.is_empty() {
            return;
        }
        let fenced = rs
            .my_asyncs
            .last()
            .map(|(aseq, _)| *aseq)
            .expect("non-empty window");
        self.async_window.retain(|(aseq, _)| *aseq > fenced);
    }

    /// The master's per-sender async watermarks, shipped in `JoinInfo`:
    /// the joiner must not re-apply async operations whose effects are
    /// already folded into the shipped catalog. The master's own ops are
    /// covered by its `aseq_next` (they commit locally at issue).
    pub(crate) fn async_watermarks(&self) -> Vec<(MachineId, u64)> {
        let mut wm: Vec<(MachineId, u64)> = self
            .async_in
            .iter()
            .map(|(m, slot)| (*m, slot.next))
            .collect();
        wm.push((self.id, self.aseq_next));
        wm.sort_unstable();
        wm
    }

    /// Installs join-time watermarks: inbound async state restarts at the
    /// master's view (the catalog already reflects everything below it).
    /// The entry for this machine itself is not installed as receive
    /// state — a machine never receives its own broadcasts — but is
    /// returned so the caller can re-apply locally-unseen window entries.
    pub(crate) fn install_async_watermarks(&mut self, watermarks: Vec<(MachineId, u64)>) -> u64 {
        self.async_in.clear();
        let mut own = 0;
        for (m, next) in watermarks {
            if m == self.id {
                own = next;
                continue;
            }
            self.async_in.insert(
                m,
                AsyncIn {
                    next,
                    buffer: BTreeMap::new(),
                },
            );
        }
        own
    }

    /// Restores, after a restart + rejoin, own async commits the master
    /// never observed: their effects are absent from the join snapshot,
    /// but their envelopes survive in the fence window (which
    /// [`Machine::reset_for_restart`] deliberately keeps, along with the
    /// monotone `aseq_next`). Re-applying them here keeps the issuer
    /// consistent with receivers that *did* get the original broadcasts,
    /// and the still-windowed entries re-fence to everyone else.
    ///
    /// Completion routines for these operations were already run in the
    /// previous incarnation and are not re-run.
    pub(crate) fn restore_unseen_asyncs(&mut self, master_watermark: u64, now: SimTime) {
        let mut restored: u64 = 0;
        let window = std::mem::take(&mut self.async_window);
        for (aseq, env) in &window {
            if *aseq < master_watermark {
                continue; // folded into the join snapshot we just installed
            }
            restored += 1;
            let _ = execute_wire_checked(
                &env.op,
                &mut self.committed,
                &self.registry,
                &self.cfg,
                self.id,
                "async-restore",
                &mut self.witness_log,
            )
            .expect("restore: async ops touch only objects committed before issue");
            let _ = execute_wire_checked(
                &env.op,
                &mut self.guess,
                &self.registry,
                &self.cfg,
                self.id,
                "async-restore",
                &mut self.witness_log,
            )
            .expect("restore: sg holds every object sc holds");
            self.completed.push(env.id);
            if self.cfg.record_history {
                self.history.push(env.clone());
            }
            // No telemetry here: the op's span was already committed in the
            // previous incarnation, and the shared handle kept it.
            self.stats.record_exec_count(1);
            self.stats.committed_own += 1;
            self.stats.committed_async_own += 1;
        }
        self.async_window = window;
        if restored > 0 {
            self.trace(
                now,
                TraceEvent::Reexecuted {
                    round: 0,
                    pending: restored,
                    cause: ReplayCause::AsyncPatch,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::testutil::slots_registry;
    use guesstimate_core::{args, CommuteMatrix, MachineId, ObjectId, OpId};
    use std::sync::Arc;

    fn slots_matrix() -> CommuteMatrix {
        // `put` commutes with every Slots method (universal); `raw_put`
        // has no declared effect and so can never qualify.
        let mut m = CommuteMatrix::new();
        m.insert("Slots", "put", "put");
        m.insert("Slots", "put", "raw_put");
        m.insert("Slots", "raw_put", "raw_put");
        m
    }

    fn hybrid_machine(id: u32) -> Machine {
        let cfg = MachineConfig::default()
            .with_commute_matrix(slots_matrix())
            .with_async_commit(true);
        let mut m = Machine::new_master(MachineId::new(id), Arc::new(slots_registry()), cfg);
        m.membership.joined_system = true;
        m
    }

    fn put_env(machine: u32, seq: u64, object: ObjectId, k: &str) -> WireEnvelope {
        WireEnvelope {
            id: OpId::new(MachineId::new(machine), seq),
            op: WireOp::Shared(SharedOp::primitive(object, "put", args![k, 1])),
        }
    }

    #[test]
    fn eligibility_requires_committed_object_and_universal_method() {
        let mut m = hybrid_machine(0);
        let obj = ObjectId::new(m.id(), 0);
        let op = SharedOp::primitive(obj, "put", args!["a", 1]);
        // Object not committed yet (not even created): ineligible.
        assert!(!m.async_eligible(&op));
        // Commit the object directly into sc.
        let create = WireOp::Create {
            object: obj,
            type_name: "Slots".into(),
            init: guesstimate_core::Value::Map(Default::default()),
        };
        execute_wire(&create, &mut m.committed, &m.registry).unwrap();
        execute_wire(&create, &mut m.guess, &m.registry).unwrap();
        m.catalog.insert(obj, "Slots".into());
        assert!(m.async_eligible(&op));
        // Non-universal method (no declared effect): ineligible.
        assert!(!m.async_eligible(&SharedOp::primitive(obj, "raw_put", args!["a", 1])));
        // Composites always serialize.
        assert!(!m.async_eligible(&SharedOp::atomic(vec![op.clone()])));
        // Path disabled: ineligible.
        m.cfg.async_commit = false;
        assert!(!m.async_eligible(&op));
    }

    #[test]
    fn foreign_asyncs_apply_in_per_sender_fifo_order() {
        let mut m = hybrid_machine(0);
        let obj = ObjectId::new(MachineId::new(1), 0);
        let create = WireOp::Create {
            object: obj,
            type_name: "Slots".into(),
            init: guesstimate_core::Value::Map(Default::default()),
        };
        execute_wire(&create, &mut m.committed, &m.registry).unwrap();
        execute_wire(&create, &mut m.guess, &m.registry).unwrap();
        m.catalog.insert(obj, "Slots".into());
        let sender = MachineId::new(1);
        // aseq 1 arrives first: buffered, not applied.
        m.handle_async_op(sender, 1, put_env(1, 1, obj, "b"), SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 0);
        // aseq 0 arrives: both drain, in order.
        m.handle_async_op(sender, 0, put_env(1, 0, obj, "a"), SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 2);
        assert_eq!(m.completed_ops().len(), 2);
        assert!(m.completed_serialized().is_empty());
        // A duplicate is absorbed by the watermark.
        m.handle_async_op(sender, 0, put_env(1, 0, obj, "a"), SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 2);
        assert!(m.check_guess_invariant());
    }

    #[test]
    fn async_gap_buffers_until_the_missing_aseq_arrives() {
        let mut m = hybrid_machine(0);
        let obj = ObjectId::new(MachineId::new(1), 0);
        let create = WireOp::Create {
            object: obj,
            type_name: "Slots".into(),
            init: guesstimate_core::Value::Map(Default::default()),
        };
        execute_wire(&create, &mut m.committed, &m.registry).unwrap();
        execute_wire(&create, &mut m.guess, &m.registry).unwrap();
        m.catalog.insert(obj, "Slots".into());
        let sender = MachineId::new(1);
        let put = |seq: u64, v: i64| WireEnvelope {
            id: OpId::new(sender, seq),
            op: WireOp::Shared(SharedOp::primitive(obj, "put", args!["x", v])),
        };
        // aseq 0 is in order: applies immediately.
        m.handle_async_op(sender, 0, put(0, 10), SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 1);
        // aseq 2 arrives with aseq 1 still in flight: a gap, so it must
        // buffer — applying it now would reorder the sender's stream.
        m.handle_async_op(sender, 2, put(2, 30), SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 1, "n+2 before n+1: held");
        // aseq 1 fills the gap: both drain, in sender FIFO order.
        m.handle_async_op(sender, 1, put(1, 20), SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 3);
        assert_eq!(
            m.completed_ops(),
            &[
                OpId::new(sender, 0),
                OpId::new(sender, 1),
                OpId::new(sender, 2)
            ]
        );
        // All three wrote the same slot: FIFO means aseq 2's value lands
        // last (2-before-1 would have left 20).
        assert_eq!(
            m.read::<crate::testutil::Slots, _>(obj, |s| s.m["x"]),
            Some(30)
        );
        assert!(m.check_guess_invariant());
    }

    #[test]
    fn asyncs_hold_until_their_object_commits() {
        let mut m = hybrid_machine(0);
        let obj = ObjectId::new(MachineId::new(1), 0);
        let sender = MachineId::new(1);
        m.handle_async_op(sender, 0, put_env(1, 0, obj, "a"), SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 0, "object unknown: held");
        // The object's Create commits (as it would in a round)...
        let create = WireOp::Create {
            object: obj,
            type_name: "Slots".into(),
            init: guesstimate_core::Value::Map(Default::default()),
        };
        execute_wire(&create, &mut m.committed, &m.registry).unwrap();
        execute_wire(&create, &mut m.guess, &m.registry).unwrap();
        m.catalog.insert(obj, "Slots".into());
        // ...and the post-apply drain releases the held op.
        m.drain_async(SimTime::ZERO);
        assert_eq!(m.stats.committed_async_foreign, 1);
    }

    #[test]
    fn watermarks_round_trip_through_join() {
        let mut master = hybrid_machine(0);
        let obj = ObjectId::new(MachineId::new(1), 0);
        let create = WireOp::Create {
            object: obj,
            type_name: "Slots".into(),
            init: guesstimate_core::Value::Map(Default::default()),
        };
        execute_wire(&create, &mut master.committed, &master.registry).unwrap();
        execute_wire(&create, &mut master.guess, &master.registry).unwrap();
        master.catalog.insert(obj, "Slots".into());
        master.handle_async_op(MachineId::new(1), 0, put_env(1, 0, obj, "a"), SimTime::ZERO);
        master.aseq_next = 5;
        let wm = master.async_watermarks();
        assert_eq!(wm, vec![(MachineId::new(0), 5), (MachineId::new(1), 1)]);

        let mut joiner = hybrid_machine(2);
        let own = joiner.install_async_watermarks(wm);
        assert_eq!(own, 0, "no entry for machine 2 in the master's map");
        // A replayed duplicate of sender 1's aseq 0 is now absorbed.
        joiner.handle_async_op(MachineId::new(1), 0, put_env(1, 0, obj, "a"), SimTime::ZERO);
        assert_eq!(joiner.stats.committed_async_foreign, 0);
    }

    #[test]
    fn window_trim_requires_a_resend_protected_flush() {
        let mut m = hybrid_machine(0);
        m.async_window = vec![(0, put_env(0, 0, ObjectId::new(m.id(), 0), "a"))];
        // No active round: nothing trims.
        m.trim_async_window();
        assert_eq!(m.async_window.len(), 1);
        // A flushed round whose serialized batch was empty: the piggyback
        // was best-effort, so the window must survive.
        m.participant.start_local_round(1, vec![m.id()]);
        let window = m.take_async_window();
        {
            let rs = m.participant.round.as_mut().unwrap();
            rs.flushed = true;
            rs.my_asyncs = window;
        }
        m.trim_async_window();
        assert_eq!(m.async_window.len(), 1, "zero-op flush fences best-effort");
        // A flush that carried real ops is resend-protected: trim.
        let flush = Arc::new(vec![put_env(0, 9, ObjectId::new(m.id(), 0), "z")]);
        m.participant.round.as_mut().unwrap().my_flush = flush;
        m.trim_async_window();
        assert!(m.async_window.is_empty());
    }
}
