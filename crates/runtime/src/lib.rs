//! # guesstimate-runtime
//!
//! The GUESSTIMATE runtime (Rajan, Rajamani, Yaduvanshi, PLDI 2010): every
//! machine keeps a **committed** replica `sc` of the shared state —
//! guaranteed identical across machines — and a **guesstimated** replica
//! `sg = [P](sc)` on which operations execute immediately, without blocking.
//! A master-driven, 3-stage synchronization protocol periodically gathers
//! every machine's pending operations, commits them everywhere in a single
//! agreed lexicographic order, runs completion routines on the issuing
//! machines, and re-establishes the guesstimate invariant. Each operation
//! executes **at most three times**: at issue, (possibly) at one replay, and
//! at commit (§4 "Bounded re-executions").
//!
//! The runtime is event-driven: [`Machine`] implements
//! [`guesstimate_net::Actor`] and runs identically under the deterministic
//! virtual-time mesh (`SimNet`, used by every experiment) and the
//! wall-clock threaded mesh (`ThreadedNet`, used by interactive examples).
//!
//! ## Example
//!
//! ```
//! use guesstimate_core::{args, GState, OpRegistry, RestoreError, SharedOp, Value};
//! use guesstimate_net::{LatencyModel, NetConfig, SimTime};
//! use guesstimate_runtime::{run_until_cohort, sim_cluster, MachineConfig};
//!
//! #[derive(Clone, Default)]
//! struct Score(i64);
//! impl GState for Score {
//!     const TYPE_NAME: &'static str = "Score";
//!     fn snapshot(&self) -> Value { Value::from(self.0) }
//!     fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
//!         self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
//!         Ok(())
//!     }
//! }
//!
//! let mut registry = OpRegistry::new();
//! registry.register_type::<Score>();
//! registry.register_method::<Score>("bump", |s, a| {
//!     let Some(d) = a.i64(0) else { return false };
//!     s.0 += d;
//!     true
//! });
//!
//! let mut net = sim_cluster(
//!     3,
//!     registry,
//!     MachineConfig::default().with_sync_period(SimTime::from_millis(100)),
//!     NetConfig::lan(1).with_latency(LatencyModel::constant_ms(5)),
//! );
//! assert!(run_until_cohort(&mut net, SimTime::from_secs(5)));
//!
//! let master = guesstimate_core::MachineId::new(0);
//! let obj = net.actor_mut(master).unwrap().create_instance(Score(0));
//! net.run_until(net.now() + SimTime::from_secs(1));
//!
//! // Machine 2 bumps the score; the effect is visible locally at once and
//! // committed everywhere within a couple of sync rounds.
//! let m2 = guesstimate_core::MachineId::new(2);
//! net.actor_mut(m2)
//!     .unwrap()
//!     .issue(SharedOp::primitive(obj, "bump", args![3]))
//!     .unwrap();
//! net.run_until(net.now() + SimTime::from_secs(2));
//! assert_eq!(
//!     net.actor(master).unwrap().read::<Score, _>(obj, |s| s.0),
//!     Some(3)
//! );
//! ```

#![warn(missing_docs)]

mod blocking;
mod cluster;
pub mod commute;
mod config;
mod exec;
mod hybrid;
mod machine;
mod message;
pub mod multigroup;
mod protocol;
pub mod roles;
pub mod shard;
mod stats;
#[doc(hidden)]
pub mod testutil;

pub use blocking::{issue_blocking, BlockingOutcome};
pub use cluster::{
    run_until_cohort, sim_cluster, sim_cluster_instrumented, sim_cluster_traced, threaded_cluster,
    threaded_cluster_instrumented,
};
pub use config::MachineConfig;
pub use exec::WitnessViolation;
pub use machine::{Machine, RemoteUpdateHook, StateSummary};
pub use message::{Msg, ObjectInit, WireEnvelope, WireOp};
pub use multigroup::{
    multi_sim_cluster, multi_threaded_cluster, run_multi_until_joined, GMsg, GroupId, GroupRoute,
    GroupTable, IssueOutcome, MultiClusterSpec, MultiMachine,
};
pub use shard::{ShardRouter, ShardViolation};
pub use stats::{MachineStats, SyncSample};
