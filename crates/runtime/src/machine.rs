//! Per-machine state and the paper's API surface.
//!
//! A [`Machine`] holds the 5-tuple of §3 — local state (owned by the
//! application through completion closures), the completed sequence `C`, the
//! committed store `sc`, the pending list `P` and the guesstimated store
//! `sg` — plus one instance of each protocol role from [`crate::roles`].
//! The *protocol* (how machines talk) lives in [`crate::protocol`], which
//! composes the role state machines; the commit-side machinery (applying a
//! consolidated round, rebuilding `sg = [P](sc)`, restarts, join
//! initialization) lives in [`crate::exec`]. This module implements the
//! local API: issuing (rule R2), reads, and the object catalog.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use guesstimate_core::{
    CompletionFn, ExecError, GState, MachineId, ObjectId, ObjectStore, OpId, OpRegistry, SharedOp,
    Value,
};
use guesstimate_net::{NoopTracer, SimTime, TraceEvent, TraceRecord, Tracer};
use guesstimate_telemetry::Telemetry;

use crate::config::MachineConfig;
use crate::exec::execute_wire;
use crate::hybrid::AsyncIn;
use crate::message::{WireEnvelope, WireOp};
use crate::roles::election::ElectionRole;
use crate::roles::master::MasterRole;
use crate::roles::membership::MembershipRole;
use crate::roles::participant::ParticipantRole;
use crate::stats::MachineStats;

/// A GUESSTIMATE machine: replicated state plus synchronizer.
///
/// `Machine` implements [`guesstimate_net::Actor`], so it runs under both
/// the deterministic simulated mesh and the threaded mesh. Application code
/// interacts with it through the methods below, which mirror the paper's
/// API:
///
/// | Paper (C#)                   | Here                                  |
/// |------------------------------|---------------------------------------|
/// | `CreateInstance(type)`       | [`Machine::create_instance`]          |
/// | `AvailableObjects()`         | [`Machine::available_objects`]        |
/// | `GetType(uniqueID)`          | [`Machine::object_type`]              |
/// | `JoinInstance(uniqueID)`     | [`Machine::join_instance`]            |
/// | `CreateOperation(obj, m, a)` | [`SharedOp::primitive`]               |
/// | `CreateAtomic(ops)`          | [`SharedOp::atomic`]                  |
/// | `CreateOrElse(a, b)`         | [`SharedOp::or_else`]                 |
/// | `IssueOperation(op, c)`      | [`Machine::issue_with_completion`]    |
/// | `BeginRead`/`EndRead`        | [`Machine::read`] (closure-scoped)    |
///
/// # Examples
///
/// See the `guesstimate-runtime` crate-level example.
pub struct Machine {
    pub(crate) id: MachineId,
    pub(crate) registry: Arc<OpRegistry>,
    pub(crate) cfg: MachineConfig,

    // --- The §3 machine state ---
    pub(crate) committed: ObjectStore,          // sc
    pub(crate) guess: ObjectStore,              // sg
    pub(crate) pending: VecDeque<WireEnvelope>, // P
    pub(crate) completed: Vec<OpId>,            // C (identities)
    pub(crate) completions: HashMap<OpId, CompletionFn>,

    // --- Object catalog (AvailableObjects) ---
    pub(crate) catalog: BTreeMap<ObjectId, String>,

    // --- Issue bookkeeping ---
    pub(crate) op_seq: u64,
    pub(crate) obj_seq: u64,
    pub(crate) exec_counts: HashMap<OpId, u32>,
    pub(crate) issue_times: HashMap<OpId, SimTime>,

    // --- Hybrid commit path (MachineConfig::async_commit) ---
    /// Next async sequence number to stamp on an async-committed op.
    /// Monotone across restarts — never reset, so receivers' watermarks
    /// stay valid when this machine rejoins.
    pub(crate) aseq_next: u64,
    /// Async ops committed here since the last flush; piggybacked on the
    /// next `Msg::Ops` as the round-boundary fence, then cleared.
    pub(crate) async_window: Vec<(u64, WireEnvelope)>,
    /// Per-sender inbound async state: watermark + reorder buffer.
    pub(crate) async_in: BTreeMap<MachineId, AsyncIn>,
    /// Memoized [`crate::commute::universal_commuters`] per type name.
    pub(crate) universal_cache: HashMap<String, BTreeSet<String>>,
    /// The serialized-only subsequence of `completed`, in round order.
    /// Under the hybrid path the full `completed` list interleaves async
    /// commits in per-machine arrival order, so round-total-order oracle
    /// checks (prefix agreement) consult this list instead.
    pub(crate) completed_serialized: Vec<OpId>,
    /// Committed-but-unresolved [`crate::message::WireOp::CrossMarker`]
    /// envelopes, in this group's commit order. Only populated in
    /// multi-group mode; drained by the [`crate::multigroup::MultiMachine`]
    /// wrapper after every dispatched event.
    pub(crate) cross_commits: Vec<WireEnvelope>,

    // --- Protocol roles (sans-IO state machines; see crate::roles) ---
    pub(crate) is_master: bool,
    pub(crate) master: MasterRole,
    pub(crate) participant: ParticipantRole,
    pub(crate) membership: MembershipRole,
    pub(crate) election: ElectionRole,

    pub(crate) history: Vec<WireEnvelope>,
    pub(crate) remote_hooks: Vec<RemoteUpdateHook>,
    /// Witness-containment escapes recorded at apply sites under
    /// [`MachineConfig::paranoid_checks`]; see
    /// [`crate::exec::WitnessViolation`].
    pub(crate) witness_log: Vec<crate::exec::WitnessViolation>,
    /// Shard-containment escapes recorded at commit sites when a
    /// [`MachineConfig::shard_plan`] is installed under
    /// [`MachineConfig::paranoid_checks`]; see
    /// [`crate::shard::ShardViolation`].
    pub(crate) shard_log: Vec<crate::shard::ShardViolation>,
    pub(crate) stats: MachineStats,
    pub(crate) tracer: Arc<dyn Tracer>,
    pub(crate) telemetry: Telemetry,
}

/// Callback invoked after a synchronization commits *foreign* operations
/// touching an object (see [`Machine::on_remote_update`]).
pub type RemoteUpdateHook = Box<dyn FnMut(ObjectId) + Send>;

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("id", &self.id)
            .field("master", &self.is_master)
            .field("objects", &self.catalog.len())
            .field("pending", &self.pending.len())
            .field("completed", &self.completed.len())
            .finish()
    }
}

impl Machine {
    /// Creates the master machine.
    ///
    /// The master participates like any other machine and additionally
    /// drives synchronization, membership and recovery. The paper's runtime
    /// designates exactly one master; master failure is not tolerated (§9).
    pub fn new_master(id: MachineId, registry: Arc<OpRegistry>, cfg: MachineConfig) -> Self {
        Machine::new_inner(id, registry, cfg, true)
    }

    /// Creates a non-master member; it will request to join on start.
    pub fn new_member(id: MachineId, registry: Arc<OpRegistry>, cfg: MachineConfig) -> Self {
        Machine::new_inner(id, registry, cfg, false)
    }

    fn new_inner(
        id: MachineId,
        registry: Arc<OpRegistry>,
        cfg: MachineConfig,
        is_master: bool,
    ) -> Self {
        Machine {
            id,
            registry,
            cfg,
            committed: ObjectStore::new(),
            guess: ObjectStore::new(),
            pending: VecDeque::new(),
            completed: Vec::new(),
            completions: HashMap::new(),
            catalog: BTreeMap::new(),
            op_seq: 0,
            obj_seq: 0,
            exec_counts: HashMap::new(),
            issue_times: HashMap::new(),
            aseq_next: 0,
            async_window: Vec::new(),
            async_in: BTreeMap::new(),
            universal_cache: HashMap::new(),
            completed_serialized: Vec::new(),
            cross_commits: Vec::new(),
            is_master,
            master: MasterRole::new(id),
            participant: ParticipantRole::new(id),
            membership: MembershipRole::new(id, is_master),
            election: ElectionRole::new(id),
            history: Vec::new(),
            remote_hooks: Vec::new(),
            witness_log: Vec::new(),
            shard_log: Vec::new(),
            stats: MachineStats::default(),
            tracer: Arc::new(NoopTracer),
            telemetry: Telemetry::noop(),
        }
    }

    /// Installs a trace sink; subsequent protocol transitions emit
    /// [`TraceEvent`]s to it. The default sink discards everything.
    ///
    /// One sink (behind an `Arc`) may be shared by every machine in a
    /// cluster; see [`crate::cluster::sim_cluster_traced`].
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// Installs a telemetry handle; subsequent op-lifecycle transitions
    /// (issue, flush, commit, completion, restart loss) and round-health
    /// samples are recorded through it. The default handle is the no-op,
    /// which costs one branch per hook.
    ///
    /// One handle (clones share instruments) is typically installed into
    /// every machine of a cluster; see
    /// [`crate::cluster::sim_cluster_instrumented`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The machine's telemetry handle (no-op unless installed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Emits one trace event attributed to this machine at `at`.
    #[inline]
    pub(crate) fn trace(&self, at: SimTime, event: TraceEvent) {
        self.tracer.record(TraceRecord {
            at,
            source: self.id,
            event,
        });
    }

    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// True if this machine is the designated master.
    pub fn is_master(&self) -> bool {
        self.is_master
    }

    /// The machine's counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Number of operations currently pending (the length of `P`).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of committed operations (the length of `C`).
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// The completed-operation identities `C`, in commit order.
    ///
    /// Oracle surface for the schedule model checker (`guesstimate-mc`):
    /// the paper's agreement invariant says any two machines' completed
    /// sequences are prefix-ordered, and equal sequences imply equal
    /// committed states.
    pub fn completed_ops(&self) -> &[OpId] {
        &self.completed
    }

    /// The serialized-only subsequence of the completed operations, in the
    /// master's round-total order.
    ///
    /// Identical to [`Machine::completed_ops`] unless the hybrid commit
    /// path ([`crate::MachineConfig::async_commit`]) is enabled, in which
    /// case async commits — which land in per-machine arrival order — are
    /// excluded. The model checker's prefix-agreement oracle compares this
    /// sequence across machines.
    pub fn completed_serialized(&self) -> &[OpId] {
        &self.completed_serialized
    }

    /// Deterministic digest of the committed state `sc`.
    pub fn committed_digest(&self) -> u64 {
        self.committed.digest()
    }

    /// Deterministic digest of the guesstimated state `sg`.
    pub fn guess_digest(&self) -> u64 {
        self.guess.digest()
    }

    /// True once the machine has been admitted to the system (masters start
    /// admitted; members are admitted after the join handshake).
    pub fn is_joined(&self) -> bool {
        self.membership.is_joined()
    }

    /// True once the machine has participated in a synchronization round.
    pub fn in_cohort(&self) -> bool {
        self.membership.in_cohort()
    }

    /// Current members, as known by the master (empty on non-masters).
    pub fn members(&self) -> Vec<MachineId> {
        self.membership.members().iter().copied().collect()
    }

    /// How many early rounds the participant role is currently buffering
    /// (round messages that arrived before their `BeginSync`).
    pub fn buffered_rounds(&self) -> usize {
        self.participant.buffered_rounds()
    }

    /// The recorded committed-operation history (empty unless
    /// [`crate::MachineConfig::record_history`] is enabled).
    pub fn history(&self) -> &[WireEnvelope] {
        &self.history
    }

    /// Registers a callback that fires after each synchronization, once per
    /// shared object that a *foreign* (remote) committed operation touched.
    ///
    /// §9 of the paper lists exactly this as a missing facility:
    /// "Completion operations provide one way to update local state but
    /// these do not handle updates from remote operations. A mechanism to
    /// register a callback function for remote updates could prove useful."
    /// The Sudoku application's grid-refresh problem (§6) is the motivating
    /// use: repaint a square whenever another player's move lands.
    ///
    /// Callbacks run after the committed→guesstimated copy and the
    /// completion routines, so reads performed from them (via
    /// [`Machine::read`] on a captured handle) observe post-commit state.
    /// Hooks survive recovery restarts (they are UI wiring, not replicated
    /// state).
    pub fn on_remote_update(&mut self, hook: RemoteUpdateHook) {
        self.remote_hooks.push(hook);
    }

    /// Checks the §3 invariant `[P](sc) = sg`: replays the pending list
    /// over a copy of the committed store and compares digests with the
    /// guesstimated store. Integration tests call this at arbitrary points
    /// of a run to check that the implementation maintains the formal
    /// model's invariant.
    pub fn check_guess_invariant(&self) -> bool {
        let mut replay = self.committed.clone();
        for env in &self.pending {
            let _ = execute_wire(&env.op, &mut replay, &self.registry);
        }
        replay.digest() == self.guess.digest()
    }

    /// Debug-asserts [`Machine::check_guess_invariant`] when
    /// [`MachineConfig::paranoid_checks`] is enabled.
    ///
    /// The protocol driver calls this after every `on_start` / `on_message`
    /// / `on_timer` step, so an enabled machine validates the §3 invariant
    /// at every point a scheduler could observe it. Compiled out of release
    /// builds (`debug_assert!`).
    #[inline]
    pub(crate) fn paranoid_check(&self, site: &str) {
        if self.cfg.paranoid_checks {
            debug_assert!(
                self.check_guess_invariant(),
                "paranoid_checks: [P](sc) != sg on {:?} after {site}",
                self.id
            );
        }
    }

    /// Witness-containment escapes recorded at this machine's apply sites
    /// (issue, commit, replay, async paths) under
    /// [`MachineConfig::paranoid_checks`].
    ///
    /// Empty unless a method accessed state outside its declared
    /// [`guesstimate_core::EffectSpec`] footprint. With
    /// [`MachineConfig::witness_assert`] disabled, escapes accumulate here
    /// (bounded) instead of `debug_assert!`ing — the model checker's
    /// witness oracle reads this log after every step.
    pub fn witness_violations(&self) -> &[crate::exec::WitnessViolation] {
        &self.witness_log
    }

    /// The shard-containment escapes recorded on this machine.
    ///
    /// Empty unless a [`MachineConfig::shard_plan`] is installed, paranoid
    /// checks are on, and a committed operation's declared footprint
    /// escaped its routed shard. With [`MachineConfig::witness_assert`]
    /// disabled, escapes accumulate here (bounded) instead of
    /// `debug_assert!`ing — the model checker's shard oracle reads this
    /// log after every step.
    pub fn shard_violations(&self) -> &[crate::shard::ShardViolation] {
        &self.shard_log
    }

    pub(crate) fn next_op_id(&mut self) -> OpId {
        let id = OpId::new(self.id, self.op_seq);
        self.op_seq += 1;
        id
    }

    // ------------------------------------------------------------------
    // The paper's API
    // ------------------------------------------------------------------

    /// Creates a new shared object with the given initial state
    /// (`Guesstimate.CreateInstance`).
    ///
    /// The object is visible immediately in this machine's guesstimated
    /// state; other machines materialize it when the creation commits.
    ///
    /// # Panics
    ///
    /// Panics if `T` was not registered with the shared [`OpRegistry`] —
    /// every machine must be able to construct every shared type.
    pub fn create_instance<T: GState>(&mut self, init: T) -> ObjectId {
        assert!(
            self.registry.has_type(T::TYPE_NAME),
            "create_instance: type {:?} is not registered",
            T::TYPE_NAME
        );
        let object = ObjectId::new(self.id, self.obj_seq);
        self.obj_seq += 1;
        let snap = GState::snapshot(&init);
        self.catalog.insert(object, T::TYPE_NAME.to_owned());
        self.guess.insert(object, Box::new(init));
        let op_id = self.next_op_id();
        self.pending.push_back(WireEnvelope {
            id: op_id,
            op: WireOp::Create {
                object,
                type_name: T::TYPE_NAME.to_owned(),
                init: snap,
            },
        });
        self.exec_counts.insert(op_id, 1);
        self.stats.issued += 1;
        self.telemetry.op_issued(op_id, None);
        self.note_pending_depth();
        object
    }

    /// Like [`Machine::create_instance`] but with a caller-chosen
    /// [`ObjectId`] — multi-group mode fans one logical creation out to
    /// every hosted group's machine under a *shared* id, so the copies
    /// stay mergeable (see [`crate::multigroup::MultiMachine`]).
    ///
    /// # Panics
    ///
    /// Panics if `T` is unregistered or the id is already cataloged here.
    pub(crate) fn create_instance_as<T: GState>(&mut self, object: ObjectId, init: T) {
        assert!(
            self.registry.has_type(T::TYPE_NAME),
            "create_instance_as: type {:?} is not registered",
            T::TYPE_NAME
        );
        assert!(
            !self.catalog.contains_key(&object),
            "create_instance_as: object {object:?} already exists"
        );
        let snap = GState::snapshot(&init);
        self.catalog.insert(object, T::TYPE_NAME.to_owned());
        self.guess.insert(object, Box::new(init));
        let op_id = self.next_op_id();
        self.pending.push_back(WireEnvelope {
            id: op_id,
            op: WireOp::Create {
                object,
                type_name: T::TYPE_NAME.to_owned(),
                init: snap,
            },
        });
        self.exec_counts.insert(op_id, 1);
        self.stats.issued += 1;
        self.telemetry.op_issued(op_id, None);
        self.note_pending_depth();
    }

    /// Appends a [`WireOp::CrossMarker`] to the pending list (multi-group
    /// coordinator only). Markers are store no-ops, so there is no R2
    /// issue-time execution; they flow through flush and commit like any
    /// pending operation and surface in
    /// [`Machine::take_cross_commits`] once committed.
    pub(crate) fn issue_cross_marker(
        &mut self,
        xid: u64,
        origin: MachineId,
        oseq: u64,
        groups: Vec<u32>,
        op: SharedOp,
    ) -> OpId {
        let op_id = self.next_op_id();
        self.pending.push_back(WireEnvelope {
            id: op_id,
            op: WireOp::CrossMarker {
                xid,
                origin,
                oseq,
                groups,
                op,
            },
        });
        self.exec_counts.insert(op_id, 1);
        self.stats.issued += 1;
        self.telemetry.op_issued(op_id, None);
        self.note_pending_depth();
        op_id
    }

    /// Drains the committed-but-unresolved cross markers (commit order).
    pub(crate) fn take_cross_commits(&mut self) -> Vec<WireEnvelope> {
        std::mem::take(&mut self.cross_commits)
    }

    /// Canonical snapshot of one object's **committed** state, or `None`
    /// if the object has not materialized here (multi-group merge input).
    pub(crate) fn committed_object_snapshot(&self, id: ObjectId) -> Option<Value> {
        self.committed.get(id).map(|o| o.snapshot())
    }

    /// Canonical snapshot of one object's **guesstimated** state, or
    /// `None` if absent (multi-group merged-read input).
    pub(crate) fn guess_object_snapshot(&self, id: ObjectId) -> Option<Value> {
        self.guess.get(id).map(|o| o.snapshot())
    }

    /// Executes a cross-routed payload against this group's committed
    /// store at its marker's interleaving point (multi-group coordinated
    /// round). Every involved group runs the identical deterministic
    /// payload on the identical merged pre-state, so the boolean result
    /// agrees across groups and across nodes.
    pub(crate) fn execute_cross_payload(&mut self, op: &SharedOp) -> bool {
        crate::exec::execute_shared_checked(
            op,
            &mut self.committed,
            &self.registry,
            &self.cfg,
            self.id,
            "cross-resolve",
            &mut self.witness_log,
        )
        .map(|o| o.as_bool())
        .unwrap_or(false)
    }

    /// Overwrites one committed object's state from a canonical snapshot
    /// (multi-group coordinated-round write-back). The caller must follow
    /// up with [`Machine::rebuild_guess_from_committed`] to restore the
    /// `sg = [P](sc)` invariant.
    pub(crate) fn overwrite_committed_object(&mut self, id: ObjectId, v: &Value) {
        if let Some(obj) = self.committed.get_mut(id) {
            obj.restore(v)
                .expect("cross write-back: merged snapshot must match the object's type");
        }
    }

    /// Re-establishes `sg = [P](sc)` from scratch after an out-of-band
    /// committed-store write (the cross coordinated-round write-back):
    /// copy `sc → sg`, then replay the pending list in order.
    ///
    /// Replays here are extension-level re-executions attributable to the
    /// cross round, *outside* the paper's ≤3-executions-per-op budget; they
    /// are counted in [`crate::MachineStats::replays`] but deliberately do
    /// not bump the per-op `exec_counts` consumed by that bound.
    pub(crate) fn rebuild_guess_from_committed(&mut self) {
        self.guess.copy_from(&self.committed);
        let still_pending: Vec<WireEnvelope> = self.pending.iter().cloned().collect();
        for env in &still_pending {
            let _ = crate::exec::execute_wire_checked(
                &env.op,
                &mut self.guess,
                &self.registry,
                &self.cfg,
                self.id,
                "cross-rebuild",
                &mut self.witness_log,
            );
            self.stats.replays += 1;
        }
    }

    /// All objects this machine knows about: `(id, type name)` pairs
    /// (`Guesstimate.AvailableObjects`).
    pub fn available_objects(&self) -> Vec<(ObjectId, String)> {
        self.catalog
            .iter()
            .map(|(id, t)| (*id, t.clone()))
            .collect()
    }

    /// The registered type name of an object (`Guesstimate.GetType`).
    pub fn object_type(&self, id: ObjectId) -> Option<&str> {
        self.catalog.get(&id).map(String::as_str)
    }

    /// Registers interest in an object created elsewhere
    /// (`Guesstimate.JoinInstance`), returning its type name.
    ///
    /// The runtime replicates every object's committed state on every
    /// machine (see DESIGN.md), so joining is a catalog lookup; it returns
    /// `None` when the object has not (yet) been announced here.
    pub fn join_instance(&self, id: ObjectId) -> Option<&str> {
        self.object_type(id)
    }

    /// Issues a shared operation without a completion routine.
    ///
    /// See [`Machine::issue_with_completion`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    pub fn issue(&mut self, op: SharedOp) -> Result<bool, ExecError> {
        self.issue_inner(op, None, None)
    }

    /// Issues a shared operation with a completion routine
    /// (`Guesstimate.IssueOperation`).
    ///
    /// This is rule **R2** of the operational semantics: the operation runs
    /// immediately on the guesstimated state; if it succeeds it is appended
    /// to the pending list (to be committed on all machines by a later
    /// synchronization) and `Ok(true)` is returned. If it fails on the
    /// guesstimated state it is dropped — the completion routine is *not*
    /// retained — and `Ok(false)` is returned, giving the user instant
    /// feedback to alter and resubmit.
    ///
    /// The completion routine runs at commit time on this machine with the
    /// commit-time boolean (which may differ from the issue-time result — a
    /// *conflict*).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    pub fn issue_with_completion(
        &mut self,
        op: SharedOp,
        completion: CompletionFn,
    ) -> Result<bool, ExecError> {
        self.issue_inner(op, Some(completion), None)
    }

    /// Like [`Machine::issue`], additionally stamping the operation with
    /// its issue time so the runtime can record its issue-to-commit latency
    /// in [`crate::MachineStats::commit_latencies`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    pub fn issue_at(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        now: SimTime,
    ) -> Result<bool, ExecError> {
        self.issue_inner(op, completion, Some(now))
    }

    pub(crate) fn issue_inner(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        issued_at: Option<SimTime>,
    ) -> Result<bool, ExecError> {
        let outcome = crate::exec::execute_shared_checked(
            &op,
            &mut self.guess,
            &self.registry,
            &self.cfg,
            self.id,
            "issue",
            &mut self.witness_log,
        )?;
        if !outcome.is_success() {
            self.stats.issue_failures += 1;
            return Ok(false);
        }
        let op_id = self.next_op_id();
        self.pending.push_back(WireEnvelope {
            id: op_id,
            op: WireOp::Shared(op),
        });
        self.exec_counts.insert(op_id, 1);
        if let Some(c) = completion {
            self.completions.insert(op_id, c);
        }
        if let Some(t) = issued_at {
            self.issue_times.insert(op_id, t);
        }
        self.stats.issued += 1;
        self.telemetry.op_issued(op_id, issued_at);
        self.note_pending_depth();
        Ok(true)
    }

    /// Updates the pending-list high-water mark after a push.
    fn note_pending_depth(&mut self) {
        let depth = self.pending.len() as u64;
        if depth > self.stats.max_pending_depth {
            self.stats.max_pending_depth = depth;
        }
    }

    /// Reads a shared object's guesstimated state, isolated from concurrent
    /// synchronizer writes (`BeginRead`/`EndRead`).
    ///
    /// The closure runs while the machine is exclusively held (both drivers
    /// serialize access to the actor), which is exactly the isolation the
    /// paper's read window provides. Returns `None` if the object is absent
    /// or of a different type.
    pub fn read<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.guess.get_as::<T>(id).map(f)
    }

    /// Reads a shared object's **committed** state (diagnostics; not part of
    /// the paper's API — applications see only the guesstimated state).
    pub fn read_committed<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.committed.get_as::<T>(id).map(f)
    }

    /// A compact snapshot of this machine's role/protocol state, captured
    /// for flight-recorder postmortem bundles (see `guesstimate-obs`).
    pub fn state_summary(&self) -> StateSummary {
        StateSummary {
            id: self.id,
            is_master: self.is_master,
            joined: self.membership.is_joined(),
            in_cohort: self.membership.in_cohort(),
            active_round: self.participant.active_round(),
            pending: self.pending.len() as u64,
            completed: self.completed.len() as u64,
            completed_serialized: self.completed_serialized.len() as u64,
            committed_digest: self.committed.digest(),
            guess_digest: self.guess.digest(),
            guess_invariant_holds: self.check_guess_invariant(),
            witness_violations: self.witness_log.len() as u64,
            shard_violations: self.shard_log.len() as u64,
            restarts: self.stats.restarts,
        }
    }
}

/// A compact, allocation-free snapshot of one machine's protocol state,
/// produced by [`Machine::state_summary`] for postmortem bundles: enough
/// to see each machine's role, progress, and store digests at the moment
/// a violation fired, without serializing the stores themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateSummary {
    /// The machine.
    pub id: MachineId,
    /// Whether it currently acts as master.
    pub is_master: bool,
    /// Whether it has been admitted to the system.
    pub joined: bool,
    /// Whether it has participated in a synchronization round.
    pub in_cohort: bool,
    /// The round the participant role is currently in, if any.
    pub active_round: Option<u64>,
    /// Length of the pending list `P`.
    pub pending: u64,
    /// Length of the completed sequence `C`.
    pub completed: u64,
    /// Length of the serialized-only completed subsequence.
    pub completed_serialized: u64,
    /// Digest of the committed store `sc`.
    pub committed_digest: u64,
    /// Digest of the guesstimated store `sg`.
    pub guess_digest: u64,
    /// Whether `[P](sc) = sg` held at capture time.
    pub guess_invariant_holds: bool,
    /// Witness-containment escapes recorded so far.
    pub witness_violations: u64,
    /// Shard-containment escapes recorded so far.
    pub shard_violations: u64,
    /// Restarts this machine has performed.
    pub restarts: u64,
}

#[cfg(test)]
#[path = "machine_tests.rs"]
mod tests;
