//! Per-machine state and the paper's API surface.
//!
//! A [`Machine`] holds the 5-tuple of §3 — local state (owned by the
//! application through completion closures), the completed sequence `C`, the
//! committed store `sc`, the pending list `P` and the guesstimated store
//! `sg` — plus the synchronizer bookkeeping of §4. The *protocol* (how
//! machines talk) lives in [`crate::protocol`]; this module implements
//! everything local: issuing (rule R2), committing a consolidated round,
//! rebuilding `sg = [P](sc)`, restarts, and join initialization.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use guesstimate_core::{
    execute, CompletionFn, CompletionQueue, ExecError, Footprint, GState, MachineId, ObjectId,
    ObjectStore, OpId, OpRegistry, SharedOp,
};
use guesstimate_net::{NoopTracer, SimTime, TraceEvent, TraceRecord, Tracer};
use guesstimate_telemetry::Telemetry;

use crate::commute;
use crate::config::MachineConfig;
use crate::message::{Msg, ObjectInit, WireEnvelope, WireOp};
use crate::protocol::{MasterRound, RoundState};
use crate::stats::MachineStats;

/// Join-handshake progress tracked by the master per joining machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JoinPhase {
    /// `JoinRequest` received; `JoinInfo` not yet sent.
    Requested,
    /// `JoinInfo` sent when the completed history had this length; the
    /// machine is admitted only if the history has not advanced since.
    InfoSent(u64),
}

/// A GUESSTIMATE machine: replicated state plus synchronizer.
///
/// `Machine` implements [`guesstimate_net::Actor`], so it runs under both
/// the deterministic simulated mesh and the threaded mesh. Application code
/// interacts with it through the methods below, which mirror the paper's
/// API:
///
/// | Paper (C#)                   | Here                                  |
/// |------------------------------|---------------------------------------|
/// | `CreateInstance(type)`       | [`Machine::create_instance`]          |
/// | `AvailableObjects()`         | [`Machine::available_objects`]        |
/// | `GetType(uniqueID)`          | [`Machine::object_type`]              |
/// | `JoinInstance(uniqueID)`     | [`Machine::join_instance`]            |
/// | `CreateOperation(obj, m, a)` | [`SharedOp::primitive`]               |
/// | `CreateAtomic(ops)`          | [`SharedOp::atomic`]                  |
/// | `CreateOrElse(a, b)`         | [`SharedOp::or_else`]                 |
/// | `IssueOperation(op, c)`      | [`Machine::issue_with_completion`]    |
/// | `BeginRead`/`EndRead`        | [`Machine::read`] (closure-scoped)    |
///
/// # Examples
///
/// See the `guesstimate-runtime` crate-level example.
pub struct Machine {
    pub(crate) id: MachineId,
    pub(crate) registry: Arc<OpRegistry>,
    pub(crate) cfg: MachineConfig,

    // --- The §3 machine state ---
    pub(crate) committed: ObjectStore,          // sc
    pub(crate) guess: ObjectStore,              // sg
    pub(crate) pending: VecDeque<WireEnvelope>, // P
    pub(crate) completed: Vec<OpId>,            // C (identities)
    pub(crate) completions: HashMap<OpId, CompletionFn>,

    // --- Object catalog (AvailableObjects) ---
    pub(crate) catalog: BTreeMap<ObjectId, String>,

    // --- Issue bookkeeping ---
    pub(crate) op_seq: u64,
    pub(crate) obj_seq: u64,
    pub(crate) exec_counts: HashMap<OpId, u32>,
    pub(crate) issue_times: HashMap<OpId, SimTime>,

    // --- Role and membership ---
    pub(crate) is_master: bool,
    pub(crate) members: BTreeSet<MachineId>,
    pub(crate) pending_joins: BTreeMap<MachineId, JoinPhase>,
    pub(crate) joined_system: bool,
    pub(crate) in_cohort: bool,
    pub(crate) last_round_applied: Option<u64>,

    // --- Round state ---
    pub(crate) round: Option<RoundState>,
    pub(crate) master_round: Option<MasterRound>,
    pub(crate) next_round: u64,
    pub(crate) last_master_activity: SimTime,
    pub(crate) election: Option<BTreeMap<MachineId, u64>>,
    pub(crate) election_gen: u64,
    pub(crate) buffered: BTreeMap<u64, Vec<(MachineId, Msg)>>,

    pub(crate) history: Vec<WireEnvelope>,
    pub(crate) remote_hooks: Vec<RemoteUpdateHook>,
    pub(crate) stats: MachineStats,
    pub(crate) tracer: Arc<dyn Tracer>,
    pub(crate) telemetry: Telemetry,
}

/// Callback invoked after a synchronization commits *foreign* operations
/// touching an object (see [`Machine::on_remote_update`]).
pub type RemoteUpdateHook = Box<dyn FnMut(ObjectId) + Send>;

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("id", &self.id)
            .field("master", &self.is_master)
            .field("objects", &self.catalog.len())
            .field("pending", &self.pending.len())
            .field("completed", &self.completed.len())
            .finish()
    }
}

impl Machine {
    /// Creates the master machine.
    ///
    /// The master participates like any other machine and additionally
    /// drives synchronization, membership and recovery. The paper's runtime
    /// designates exactly one master; master failure is not tolerated (§9).
    pub fn new_master(id: MachineId, registry: Arc<OpRegistry>, cfg: MachineConfig) -> Self {
        let mut m = Machine::new_inner(id, registry, cfg, true);
        m.members.insert(id);
        m.joined_system = true;
        m.in_cohort = true;
        m
    }

    /// Creates a non-master member; it will request to join on start.
    pub fn new_member(id: MachineId, registry: Arc<OpRegistry>, cfg: MachineConfig) -> Self {
        Machine::new_inner(id, registry, cfg, false)
    }

    fn new_inner(
        id: MachineId,
        registry: Arc<OpRegistry>,
        cfg: MachineConfig,
        is_master: bool,
    ) -> Self {
        Machine {
            id,
            registry,
            cfg,
            committed: ObjectStore::new(),
            guess: ObjectStore::new(),
            pending: VecDeque::new(),
            completed: Vec::new(),
            completions: HashMap::new(),
            catalog: BTreeMap::new(),
            op_seq: 0,
            obj_seq: 0,
            exec_counts: HashMap::new(),
            issue_times: HashMap::new(),
            is_master,
            members: BTreeSet::new(),
            pending_joins: BTreeMap::new(),
            joined_system: false,
            in_cohort: false,
            last_round_applied: None,
            round: None,
            master_round: None,
            next_round: 1,
            last_master_activity: SimTime::ZERO,
            election: None,
            election_gen: 0,
            buffered: BTreeMap::new(),
            history: Vec::new(),
            remote_hooks: Vec::new(),
            stats: MachineStats::default(),
            tracer: Arc::new(NoopTracer),
            telemetry: Telemetry::noop(),
        }
    }

    /// Installs a trace sink; subsequent protocol transitions emit
    /// [`TraceEvent`]s to it. The default sink discards everything.
    ///
    /// One sink (behind an `Arc`) may be shared by every machine in a
    /// cluster; see [`crate::cluster::sim_cluster_traced`].
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// Installs a telemetry handle; subsequent op-lifecycle transitions
    /// (issue, flush, commit, completion, restart loss) and round-health
    /// samples are recorded through it. The default handle is the no-op,
    /// which costs one branch per hook.
    ///
    /// One handle (clones share instruments) is typically installed into
    /// every machine of a cluster; see
    /// [`crate::cluster::sim_cluster_instrumented`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The machine's telemetry handle (no-op unless installed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Emits one trace event attributed to this machine at `at`.
    #[inline]
    pub(crate) fn trace(&self, at: SimTime, event: TraceEvent) {
        self.tracer.record(TraceRecord {
            at,
            source: self.id,
            event,
        });
    }

    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// True if this machine is the designated master.
    pub fn is_master(&self) -> bool {
        self.is_master
    }

    /// The machine's counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Number of operations currently pending (the length of `P`).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of committed operations (the length of `C`).
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// The completed-operation identities `C`, in commit order.
    ///
    /// Oracle surface for the schedule model checker (`guesstimate-mc`):
    /// the paper's agreement invariant says any two machines' completed
    /// sequences are prefix-ordered, and equal sequences imply equal
    /// committed states.
    pub fn completed_ops(&self) -> &[OpId] {
        &self.completed
    }

    /// Deterministic digest of the committed state `sc`.
    pub fn committed_digest(&self) -> u64 {
        self.committed.digest()
    }

    /// Deterministic digest of the guesstimated state `sg`.
    pub fn guess_digest(&self) -> u64 {
        self.guess.digest()
    }

    /// True once the machine has been admitted to the system (masters start
    /// admitted; members are admitted after the join handshake).
    pub fn is_joined(&self) -> bool {
        self.joined_system
    }

    /// True once the machine has participated in a synchronization round.
    pub fn in_cohort(&self) -> bool {
        self.in_cohort
    }

    /// Current members, as known by the master (empty on non-masters).
    pub fn members(&self) -> Vec<MachineId> {
        self.members.iter().copied().collect()
    }

    /// The recorded committed-operation history (empty unless
    /// [`crate::MachineConfig::record_history`] is enabled).
    pub fn history(&self) -> &[WireEnvelope] {
        &self.history
    }

    /// Registers a callback that fires after each synchronization, once per
    /// shared object that a *foreign* (remote) committed operation touched.
    ///
    /// §9 of the paper lists exactly this as a missing facility:
    /// "Completion operations provide one way to update local state but
    /// these do not handle updates from remote operations. A mechanism to
    /// register a callback function for remote updates could prove useful."
    /// The Sudoku application's grid-refresh problem (§6) is the motivating
    /// use: repaint a square whenever another player's move lands.
    ///
    /// Callbacks run after the committed→guesstimated copy and the
    /// completion routines, so reads performed from them (via
    /// [`Machine::read`] on a captured handle) observe post-commit state.
    /// Hooks survive recovery restarts (they are UI wiring, not replicated
    /// state).
    pub fn on_remote_update(&mut self, hook: RemoteUpdateHook) {
        self.remote_hooks.push(hook);
    }

    /// Checks the §3 invariant `[P](sc) = sg`: replays the pending list
    /// over a copy of the committed store and compares digests with the
    /// guesstimated store. Integration tests call this at arbitrary points
    /// of a run to check that the implementation maintains the formal
    /// model's invariant.
    pub fn check_guess_invariant(&self) -> bool {
        let mut replay = self.committed.clone();
        for env in &self.pending {
            let _ = execute_wire(&env.op, &mut replay, &self.registry);
        }
        replay.digest() == self.guess.digest()
    }

    /// Debug-asserts [`Machine::check_guess_invariant`] when
    /// [`MachineConfig::paranoid_checks`] is enabled.
    ///
    /// The protocol driver calls this after every `on_start` / `on_message`
    /// / `on_timer` step, so an enabled machine validates the §3 invariant
    /// at every point a scheduler could observe it. Compiled out of release
    /// builds (`debug_assert!`).
    #[inline]
    pub(crate) fn paranoid_check(&self, site: &str) {
        if self.cfg.paranoid_checks {
            debug_assert!(
                self.check_guess_invariant(),
                "paranoid_checks: [P](sc) != sg on {:?} after {site}",
                self.id
            );
        }
    }

    fn next_op_id(&mut self) -> OpId {
        let id = OpId::new(self.id, self.op_seq);
        self.op_seq += 1;
        id
    }

    // ------------------------------------------------------------------
    // The paper's API
    // ------------------------------------------------------------------

    /// Creates a new shared object with the given initial state
    /// (`Guesstimate.CreateInstance`).
    ///
    /// The object is visible immediately in this machine's guesstimated
    /// state; other machines materialize it when the creation commits.
    ///
    /// # Panics
    ///
    /// Panics if `T` was not registered with the shared [`OpRegistry`] —
    /// every machine must be able to construct every shared type.
    pub fn create_instance<T: GState>(&mut self, init: T) -> ObjectId {
        assert!(
            self.registry.has_type(T::TYPE_NAME),
            "create_instance: type {:?} is not registered",
            T::TYPE_NAME
        );
        let object = ObjectId::new(self.id, self.obj_seq);
        self.obj_seq += 1;
        let snap = GState::snapshot(&init);
        self.catalog.insert(object, T::TYPE_NAME.to_owned());
        self.guess.insert(object, Box::new(init));
        let op_id = self.next_op_id();
        self.pending.push_back(WireEnvelope {
            id: op_id,
            op: WireOp::Create {
                object,
                type_name: T::TYPE_NAME.to_owned(),
                init: snap,
            },
        });
        self.exec_counts.insert(op_id, 1);
        self.stats.issued += 1;
        self.telemetry.op_issued(op_id, None);
        self.note_pending_depth();
        object
    }

    /// All objects this machine knows about: `(id, type name)` pairs
    /// (`Guesstimate.AvailableObjects`).
    pub fn available_objects(&self) -> Vec<(ObjectId, String)> {
        self.catalog
            .iter()
            .map(|(id, t)| (*id, t.clone()))
            .collect()
    }

    /// The registered type name of an object (`Guesstimate.GetType`).
    pub fn object_type(&self, id: ObjectId) -> Option<&str> {
        self.catalog.get(&id).map(String::as_str)
    }

    /// Registers interest in an object created elsewhere
    /// (`Guesstimate.JoinInstance`), returning its type name.
    ///
    /// The runtime replicates every object's committed state on every
    /// machine (see DESIGN.md), so joining is a catalog lookup; it returns
    /// `None` when the object has not (yet) been announced here.
    pub fn join_instance(&self, id: ObjectId) -> Option<&str> {
        self.object_type(id)
    }

    /// Issues a shared operation without a completion routine.
    ///
    /// See [`Machine::issue_with_completion`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    pub fn issue(&mut self, op: SharedOp) -> Result<bool, ExecError> {
        self.issue_inner(op, None, None)
    }

    /// Issues a shared operation with a completion routine
    /// (`Guesstimate.IssueOperation`).
    ///
    /// This is rule **R2** of the operational semantics: the operation runs
    /// immediately on the guesstimated state; if it succeeds it is appended
    /// to the pending list (to be committed on all machines by a later
    /// synchronization) and `Ok(true)` is returned. If it fails on the
    /// guesstimated state it is dropped — the completion routine is *not*
    /// retained — and `Ok(false)` is returned, giving the user instant
    /// feedback to alter and resubmit.
    ///
    /// The completion routine runs at commit time on this machine with the
    /// commit-time boolean (which may differ from the issue-time result — a
    /// *conflict*).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    pub fn issue_with_completion(
        &mut self,
        op: SharedOp,
        completion: CompletionFn,
    ) -> Result<bool, ExecError> {
        self.issue_inner(op, Some(completion), None)
    }

    /// Like [`Machine::issue`], additionally stamping the operation with
    /// its issue time so the runtime can record its issue-to-commit latency
    /// in [`crate::MachineStats::commit_latencies`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    pub fn issue_at(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        now: SimTime,
    ) -> Result<bool, ExecError> {
        self.issue_inner(op, completion, Some(now))
    }

    fn issue_inner(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        issued_at: Option<SimTime>,
    ) -> Result<bool, ExecError> {
        let outcome = execute(&op, &mut self.guess, &self.registry)?;
        if !outcome.is_success() {
            self.stats.issue_failures += 1;
            return Ok(false);
        }
        let op_id = self.next_op_id();
        self.pending.push_back(WireEnvelope {
            id: op_id,
            op: WireOp::Shared(op),
        });
        self.exec_counts.insert(op_id, 1);
        if let Some(c) = completion {
            self.completions.insert(op_id, c);
        }
        if let Some(t) = issued_at {
            self.issue_times.insert(op_id, t);
        }
        self.stats.issued += 1;
        self.telemetry.op_issued(op_id, issued_at);
        self.note_pending_depth();
        Ok(true)
    }

    /// Updates the pending-list high-water mark after a push.
    fn note_pending_depth(&mut self) {
        let depth = self.pending.len() as u64;
        if depth > self.stats.max_pending_depth {
            self.stats.max_pending_depth = depth;
        }
    }

    /// Reads a shared object's guesstimated state, isolated from concurrent
    /// synchronizer writes (`BeginRead`/`EndRead`).
    ///
    /// The closure runs while the machine is exclusively held (both drivers
    /// serialize access to the actor), which is exactly the isolation the
    /// paper's read window provides. Returns `None` if the object is absent
    /// or of a different type.
    pub fn read<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.guess.get_as::<T>(id).map(f)
    }

    /// Reads a shared object's **committed** state (diagnostics; not part of
    /// the paper's API — applications see only the guesstimated state).
    pub fn read_committed<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.committed.get_as::<T>(id).map(f)
    }

    // ------------------------------------------------------------------
    // Commit-side machinery (used by the protocol module)
    // ------------------------------------------------------------------

    /// Applies one round's consolidated, ordered operation list to the
    /// committed state, then re-establishes `sg = [P](sc)`: copy `sc → sg`,
    /// run queued completion routines, replay remaining pending operations.
    ///
    /// With [`MachineConfig::commute_skip`] enabled, the rebuild is elided
    /// whenever every foreign commit provably commutes with the whole
    /// pending list (see [`Machine::can_skip_replay`]); the guesstimated
    /// store is then patched in place instead.
    ///
    /// Returns the number of operations committed.
    pub(crate) fn apply_committed_round(
        &mut self,
        ordered: Vec<WireEnvelope>,
        round: u64,
        now: SimTime,
    ) -> u64 {
        // The commutation judgment must see the pending list *before* the
        // commit loop below pops own operations off its front.
        let skip = self.cfg.commute_skip && self.can_skip_replay(&ordered);
        let mut queue = CompletionQueue::new();
        let mut remote_touched: BTreeSet<ObjectId> = BTreeSet::new();
        let n = ordered.len() as u64;
        for env in &ordered {
            if env.id.machine() != self.id && !self.remote_hooks.is_empty() {
                match &env.op {
                    WireOp::Create { object, .. } => {
                        remote_touched.insert(*object);
                    }
                    WireOp::Shared(op) => {
                        remote_touched.extend(op.objects_touched());
                    }
                }
            }
            if let WireOp::Create {
                object, type_name, ..
            } = &env.op
            {
                self.catalog.insert(*object, type_name.clone());
            }
            let result = execute_wire(&env.op, &mut self.committed, &self.registry)
                .expect("commit: registries must agree on every machine");
            self.completed.push(env.id);
            if self.cfg.record_history {
                self.history.push(env.clone());
            }
            if env.id.machine() == self.id {
                let count = self.exec_counts.remove(&env.id).unwrap_or(0) + 1;
                self.stats.record_exec_count(count);
                self.stats.committed_own += 1;
                self.telemetry.op_committed(env.id, round, count, now);
                if !result {
                    // Succeeded at issue (only successful ops are enqueued),
                    // failed at commit: a conflict (Figure 7).
                    self.stats.conflicts += 1;
                }
                match self.pending.front() {
                    Some(front) if front.id == env.id => {
                        self.pending.pop_front();
                    }
                    _ => debug_assert!(false, "own op committed out of pending order"),
                }
                if let Some(c) = self.completions.remove(&env.id) {
                    queue.push(env.id, result, c);
                    self.telemetry.op_completed(env.id, now);
                }
                if let Some(t) = self.issue_times.remove(&env.id) {
                    self.stats.commit_latencies.push(now.saturating_since(t));
                }
            } else {
                self.stats.committed_foreign += 1;
            }
        }
        if skip {
            // Every foreign commit commutes past the whole pending list, so
            // `sg = [P](sc)` survives the round up to appending the foreign
            // ops: own committed ops already acted first in `sg` (they sat
            // at the front of `P`), and the still-pending tail need not
            // re-execute. Skipped replays do not count as executions, so
            // `exec_counts` is deliberately left alone.
            for env in &ordered {
                if env.id.machine() != self.id {
                    let _ = execute_wire(&env.op, &mut self.guess, &self.registry);
                }
            }
            let skipped = self.pending.len() as u64;
            self.stats.replays_skipped += skipped;
            self.stats.completions_run += queue.run_all() as u64;
            self.trace(
                now,
                TraceEvent::ReplaySkipped {
                    round,
                    pending: skipped,
                },
            );
        } else {
            // §4 steps (i)-(iii): copy committed onto guesstimated, run the
            // pending completion routines, replay the still-pending operations.
            self.guess.copy_from(&self.committed);
            self.stats.completions_run += queue.run_all() as u64;
            let still_pending: Vec<WireEnvelope> = self.pending.iter().cloned().collect();
            for env in &still_pending {
                let _ = execute_wire(&env.op, &mut self.guess, &self.registry);
                self.stats.replays += 1;
                *self.exec_counts.entry(env.id).or_insert(0) += 1;
            }
        }
        self.stats.rounds_applied += 1;
        for object in remote_touched {
            for hook in &mut self.remote_hooks {
                hook(object);
            }
        }
        n
    }

    /// Decides whether this round's rebuild of `sg = [P](sc)` may be
    /// skipped: every foreign committed operation must provably commute
    /// with every operation in the pending list `P` — own ops about to
    /// commit included, since skipping implicitly reorders each foreign op
    /// past all of them. A round that commits no foreign operation always
    /// qualifies (own commits act first in both stores, so `sg` is already
    /// `[P'](sc')`).
    ///
    /// Proofs, strongest-first per pair: disjoint touched-object sets;
    /// the analysis-validated [`MachineConfig::commute_matrix`]; and
    /// argument-precise footprint disjointness from the methods' declared
    /// [`guesstimate_core::EffectSpec`]s (see [`crate::commute`]). Any pair
    /// left unproven — including any operation whose method lacks a
    /// declared effect — forces the full rebuild.
    fn can_skip_replay(&self, ordered: &[WireEnvelope]) -> bool {
        if self.pending.is_empty() {
            return false; // nothing to skip; the rebuild is a plain copy
        }
        // Objects created this round are not in the catalog yet.
        let mut created: BTreeMap<ObjectId, String> = BTreeMap::new();
        for env in ordered {
            if let WireOp::Create {
                object, type_name, ..
            } = &env.op
            {
                created.insert(*object, type_name.clone());
            }
        }
        let type_of = |id: ObjectId| {
            created
                .get(&id)
                .cloned()
                .or_else(|| self.catalog.get(&id).cloned())
        };
        let pending_objs: Vec<(&WireEnvelope, BTreeSet<ObjectId>)> = self
            .pending
            .iter()
            .map(|env| (env, commute::wire_objects(&env.op)))
            .collect();
        for f in ordered.iter().filter(|e| e.id.machine() != self.id) {
            let f_objs = commute::wire_objects(&f.op);
            let mut f_fps: Option<BTreeMap<ObjectId, Footprint>> = None;
            for (p, p_objs) in &pending_objs {
                if f_objs.is_disjoint(p_objs) {
                    continue; // per-object state: disjoint objects commute
                }
                if commute::matrix_commutes(&self.cfg.commute_matrix, &type_of, &f.op, &p.op) {
                    continue;
                }
                if f_fps.is_none() {
                    match commute::wire_footprints(&self.registry, &type_of, &f.op) {
                        Some(fp) => f_fps = Some(fp),
                        None => return false,
                    }
                }
                let ffp = f_fps.as_ref().expect("computed above");
                let Some(pfp) = commute::wire_footprints(&self.registry, &type_of, &p.op) else {
                    return false;
                };
                let all_disjoint =
                    f_objs
                        .intersection(p_objs)
                        .all(|id| match (ffp.get(id), pfp.get(id)) {
                            (Some(a), Some(b)) => a.disjoint(b),
                            _ => false,
                        });
                if !all_disjoint {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the catalog snapshot + completed history shipped to a joining
    /// machine (the master's side of "sends the new device both the list of
    /// available objects and the list of completed operations").
    pub(crate) fn build_join_info(&self) -> (Vec<ObjectInit>, Vec<OpId>) {
        let catalog = self
            .committed
            .iter()
            .map(|(id, obj)| ObjectInit {
                id,
                type_name: obj.type_name().to_owned(),
                state: obj.snapshot(),
            })
            .collect();
        (catalog, self.completed.clone())
    }

    /// Initializes committed and guesstimated state from a `JoinInfo`.
    ///
    /// Pending operations issued before admission are preserved and
    /// replayed onto the fresh guesstimated state; they commit in this
    /// machine's first round.
    pub(crate) fn init_from_join_info(&mut self, catalog: Vec<ObjectInit>, completed: Vec<OpId>) {
        self.committed = ObjectStore::new();
        self.catalog.clear();
        for oi in catalog {
            let mut obj = self
                .registry
                .construct(&oi.type_name)
                .expect("join: type must be registered on every machine");
            obj.restore(&oi.state)
                .expect("join: snapshot must match registered type");
            self.committed.insert(oi.id, obj);
            self.catalog.insert(oi.id, oi.type_name);
        }
        self.completed = completed;
        self.guess.copy_from(&self.committed);
        let still_pending: Vec<WireEnvelope> = self.pending.iter().cloned().collect();
        for env in &still_pending {
            if let WireOp::Create {
                object, type_name, ..
            } = &env.op
            {
                self.catalog.insert(*object, type_name.clone());
            }
            let _ = execute_wire(&env.op, &mut self.guess, &self.registry);
            self.stats.replays += 1;
            *self.exec_counts.entry(env.id).or_insert(0) += 1;
        }
        self.joined_system = true;
        // Round bookkeeping restarts with the new membership epoch: the
        // first BeginSync after (re-)admission re-anchors the numbering.
        self.last_round_applied = None;
        self.buffered.clear();
        self.round = None;
    }

    /// Resets all replicated state, as the paper's restart signal does:
    /// "the machine shuts down the current instance of the application and
    /// restarts the application. Upon restart the machine re-enters the
    /// system in a consistent state." Pending operations and their
    /// completion routines are lost (and counted).
    pub(crate) fn reset_for_restart(&mut self) {
        self.stats.restarts += 1;
        self.telemetry
            .machine_restarted(self.id, self.pending.len() as u64);
        self.stats.ops_lost_to_restart += self.pending.len() as u64;
        self.stats.completions_dropped += self.completions.len() as u64;
        self.pending.clear();
        self.completions.clear();
        self.exec_counts.clear();
        self.issue_times.clear();
        self.committed = ObjectStore::new();
        self.guess = ObjectStore::new();
        self.catalog.clear();
        self.completed.clear();
        self.joined_system = false;
        self.in_cohort = false;
        self.last_round_applied = None;
        self.round = None;
        self.buffered.clear();
    }
}

/// Executes a wire operation against a store.
///
/// `Create` materializes the object (idempotently overwriting any stale
/// instance) and always succeeds; `Shared` defers to the core engine.
pub(crate) fn execute_wire(
    op: &WireOp,
    store: &mut ObjectStore,
    registry: &OpRegistry,
) -> Result<bool, ExecError> {
    match op {
        WireOp::Create {
            object,
            type_name,
            init,
        } => {
            let mut obj = registry.construct(type_name)?;
            obj.restore(init)
                .expect("create: snapshot must match registered type");
            store.insert(*object, obj);
            Ok(true)
        }
        WireOp::Shared(op) => Ok(execute(op, store, registry)?.as_bool()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{counter_registry, Counter};
    use guesstimate_core::args;

    fn machine() -> Machine {
        Machine::new_master(
            MachineId::new(0),
            Arc::new(counter_registry()),
            MachineConfig::default(),
        )
    }

    #[test]
    fn create_instance_is_visible_in_guess_not_committed() {
        let mut m = machine();
        let id = m.create_instance(Counter { n: 5 });
        assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(5));
        assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), None);
        assert_eq!(m.pending_len(), 1);
        assert_eq!(m.object_type(id), Some("Counter"));
        assert_eq!(m.join_instance(id), Some("Counter"));
        assert_eq!(m.available_objects().len(), 1);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn create_instance_of_unregistered_type_panics() {
        #[derive(Clone, Default)]
        struct Ghost;
        impl GState for Ghost {
            const TYPE_NAME: &'static str = "Ghost";
            fn snapshot(&self) -> guesstimate_core::Value {
                guesstimate_core::Value::Unit
            }
            fn restore(
                &mut self,
                _: &guesstimate_core::Value,
            ) -> Result<(), guesstimate_core::RestoreError> {
                Ok(())
            }
        }
        machine().create_instance(Ghost);
    }

    #[test]
    fn issue_succeeds_on_guess_and_queues() {
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        let ok = m.issue(SharedOp::primitive(id, "add", args![3])).unwrap();
        assert!(ok);
        assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(3));
        assert_eq!(m.pending_len(), 2);
        assert_eq!(m.stats().issued, 2);
    }

    #[test]
    fn issue_failure_drops_op_and_counts() {
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        // Precondition: counter never negative.
        let ok = m.issue(SharedOp::primitive(id, "add", args![-5])).unwrap();
        assert!(!ok);
        assert_eq!(m.pending_len(), 1, "failed op not enqueued");
        assert_eq!(m.stats().issue_failures, 1);
        assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(0));
    }

    #[test]
    fn issue_on_unknown_object_is_error() {
        let mut m = machine();
        let bogus = ObjectId::new(MachineId::new(9), 9);
        assert!(m
            .issue(SharedOp::primitive(bogus, "add", args![1]))
            .is_err());
    }

    #[test]
    fn apply_committed_round_commits_own_ops_and_pops_pending() {
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        m.issue(SharedOp::primitive(id, "add", args![3])).unwrap();
        let batch: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
        let n = m.apply_committed_round(batch, 0, guesstimate_net::SimTime::ZERO);
        assert_eq!(n, 2);
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.completed_len(), 2);
        assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), Some(3));
        assert_eq!(m.guess_digest(), m.committed_digest());
        assert_eq!(m.stats().committed_own, 2);
        assert_eq!(m.stats().conflicts, 0);
        // Each op executed twice: issue + commit.
        assert_eq!(m.stats().exec_histogram[2], 2);
        assert_eq!(m.stats().max_exec_count, 2);
    }

    #[test]
    fn completion_runs_with_commit_result() {
        use std::sync::atomic::{AtomicI32, Ordering};
        let seen = Arc::new(AtomicI32::new(-1));
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        let s = seen.clone();
        m.issue_with_completion(
            SharedOp::primitive(id, "add", args![1]),
            Box::new(move |b| s.store(b as i32, Ordering::SeqCst)),
        )
        .unwrap();
        let batch: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
        m.apply_committed_round(batch, 0, guesstimate_net::SimTime::ZERO);
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert_eq!(m.stats().completions_run, 1);
    }

    #[test]
    fn conflict_detected_when_foreign_op_invalidates_own() {
        // Machine 0 issues add(5) with precondition n+delta <= 10; a foreign
        // op that commits first pushes n to 8, so the own op fails at commit.
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        // Commit creation first so the foreign op can execute.
        let create: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
        m.apply_committed_round(create, 0, guesstimate_net::SimTime::ZERO);

        m.issue(SharedOp::primitive(id, "add_capped", args![5, 10]))
            .unwrap();
        assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(5));

        let foreign = WireEnvelope {
            id: OpId::new(MachineId::new(1), 0),
            op: WireOp::Shared(SharedOp::primitive(id, "add", args![8])),
        };
        let own = m.pending.front().cloned().unwrap();
        // Foreign machine id 1 > 0? No: lexicographic order puts m0's op
        // first... we want the foreign op to commit BEFORE ours, so give it
        // machine id... m0 < m1, so our op sorts first and would succeed.
        // Apply in explicit order instead: the protocol sorts; here we hand
        // an already-ordered list with the foreign op first, modelling a
        // foreign machine with a smaller id.
        let n = m.apply_committed_round(vec![foreign, own], 0, guesstimate_net::SimTime::ZERO);
        assert_eq!(n, 2);
        assert_eq!(m.stats().conflicts, 1);
        // Committed state has only the foreign add.
        assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), Some(8));
        assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(8));
    }

    #[test]
    fn replay_of_still_pending_ops_rebuilds_guess() {
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        m.issue(SharedOp::primitive(id, "add", args![1])).unwrap();
        // Simulate a round that commits only the creation (as if add was
        // issued after our flush): commit the first pending op only.
        let create = vec![m.pending.front().cloned().unwrap()];
        m.apply_committed_round(create, 0, guesstimate_net::SimTime::ZERO);
        // add(1) is still pending and was replayed onto the fresh guess.
        assert_eq!(m.pending_len(), 1);
        assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(1));
        assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), Some(0));
        assert_eq!(m.stats().replays, 1);
        // Now commit it: 3 executions total (issue, replay, commit).
        let rest: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
        m.apply_committed_round(rest, 0, guesstimate_net::SimTime::ZERO);
        assert_eq!(m.stats().exec_histogram[3], 1);
        assert!(m.stats().max_exec_count <= 3);
    }

    #[test]
    fn join_info_roundtrip_replicates_state() {
        let mut master = machine();
        let id = master.create_instance(Counter { n: 7 });
        let batch: Vec<WireEnvelope> = master.pending.iter().cloned().collect();
        master.apply_committed_round(batch, 0, guesstimate_net::SimTime::ZERO);

        let (catalog, completed) = master.build_join_info();
        let mut member = Machine::new_member(
            MachineId::new(1),
            Arc::new(counter_registry()),
            MachineConfig::default(),
        );
        member.init_from_join_info(catalog, completed);
        assert!(member.is_joined());
        assert_eq!(member.committed_digest(), master.committed_digest());
        assert_eq!(member.read::<Counter, _>(id, |c| c.n), Some(7));
        assert_eq!(member.completed_len(), 1);
    }

    // --- Commute-aware replay skipping ---

    use crate::testutil::{slots_registry, Slots};

    /// A `Slots` machine with `commute_skip` on and its creation committed.
    fn skip_machine(cfg: MachineConfig) -> (Machine, ObjectId) {
        let mut m = Machine::new_master(
            MachineId::new(0),
            Arc::new(slots_registry()),
            cfg.with_commute_skip(true),
        );
        let id = m.create_instance(Slots::default());
        let create: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
        m.apply_committed_round(create, 0, guesstimate_net::SimTime::ZERO);
        (m, id)
    }

    fn foreign_put(id: ObjectId, seq: u64, key: &str, v: i64) -> WireEnvelope {
        WireEnvelope {
            id: OpId::new(MachineId::new(1), seq),
            op: WireOp::Shared(SharedOp::primitive(id, "put", args![key, v])),
        }
    }

    #[test]
    fn foreign_free_round_skips_replay() {
        let (mut m, id) = skip_machine(MachineConfig::default());
        m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
            .unwrap();
        m.issue(SharedOp::primitive(id, "put", args!["b", 2]))
            .unwrap();
        // Commit only the first pending op: the round has no foreign ops, so
        // the rebuild is always skippable.
        let first = vec![m.pending.front().cloned().unwrap()];
        m.apply_committed_round(first, 1, guesstimate_net::SimTime::ZERO);
        assert_eq!(m.stats().replays, 0);
        assert_eq!(m.stats().replays_skipped, 1);
        assert_eq!(m.read::<Slots, _>(id, |s| s.m.len()), Some(2));
        // The skipped replay is not an execution: when the op commits next
        // round, its lifetime count is issue + commit = 2, not 3.
        let rest: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
        m.apply_committed_round(rest, 2, guesstimate_net::SimTime::ZERO);
        assert_eq!(m.stats().exec_histogram[2], 3); // create + both puts
        assert_eq!(m.guess_digest(), m.committed_digest());
    }

    #[test]
    fn disjoint_foreign_op_skips_and_patches_guess() {
        let (mut m, id) = skip_machine(MachineConfig::default());
        m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
            .unwrap();
        let n = m.apply_committed_round(
            vec![foreign_put(id, 0, "b", 2)],
            1,
            guesstimate_net::SimTime::ZERO,
        );
        assert_eq!(n, 1);
        assert_eq!(m.stats().replays, 0);
        assert_eq!(m.stats().replays_skipped, 1);
        // Guess = committed (b=2) + still-pending local put (a=1).
        assert_eq!(
            m.read::<Slots, _>(id, |s| s.m.get("a").copied()),
            Some(Some(1))
        );
        assert_eq!(
            m.read::<Slots, _>(id, |s| s.m.get("b").copied()),
            Some(Some(2))
        );
        assert_eq!(
            m.read_committed::<Slots, _>(id, |s| s.m.get("a").copied()),
            Some(None)
        );
    }

    #[test]
    fn overlapping_foreign_op_forces_rebuild() {
        let (mut m, id) = skip_machine(MachineConfig::default());
        m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
            .unwrap();
        m.apply_committed_round(
            vec![foreign_put(id, 0, "a", 9)],
            1,
            guesstimate_net::SimTime::ZERO,
        );
        assert_eq!(m.stats().replays_skipped, 0);
        assert_eq!(m.stats().replays, 1);
        // Local pending put replayed on top of the conflicting foreign one.
        assert_eq!(
            m.read::<Slots, _>(id, |s| s.m.get("a").copied()),
            Some(Some(1))
        );
    }

    #[test]
    fn undeclared_effect_forces_rebuild_unless_matrix_proves_it() {
        // raw_put has no declared effect: same-object pairs cannot be judged…
        let (mut m, id) = skip_machine(MachineConfig::default());
        m.issue(SharedOp::primitive(id, "raw_put", args!["a", 1]))
            .unwrap();
        let foreign = WireEnvelope {
            id: OpId::new(MachineId::new(1), 0),
            op: WireOp::Shared(SharedOp::primitive(id, "raw_put", args!["b", 2])),
        };
        m.apply_committed_round(vec![foreign.clone()], 1, guesstimate_net::SimTime::ZERO);
        assert_eq!(m.stats().replays, 1);
        assert_eq!(m.stats().replays_skipped, 0);

        // …unless an analysis-validated matrix vouches for the method pair.
        let mut matrix = guesstimate_core::CommuteMatrix::new();
        matrix.insert("Slots", "raw_put", "raw_put");
        let (mut m, id) = skip_machine(MachineConfig::default().with_commute_matrix(matrix));
        m.issue(SharedOp::primitive(id, "raw_put", args!["a", 1]))
            .unwrap();
        let foreign = WireEnvelope {
            id: OpId::new(MachineId::new(1), 0),
            op: WireOp::Shared(SharedOp::primitive(id, "raw_put", args!["b", 2])),
        };
        m.apply_committed_round(vec![foreign], 1, guesstimate_net::SimTime::ZERO);
        assert_eq!(m.stats().replays, 0);
        assert_eq!(m.stats().replays_skipped, 1);
        assert_eq!(m.read::<Slots, _>(id, |s| s.m.len()), Some(2));
    }

    #[test]
    fn skip_emits_round_scoped_trace_event() {
        let tracer = Arc::new(guesstimate_net::RecordingTracer::new());
        let (mut m, id) = skip_machine(MachineConfig::default());
        m.set_tracer(tracer.clone());
        m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
            .unwrap();
        m.apply_committed_round(
            vec![foreign_put(id, 0, "b", 2)],
            7,
            guesstimate_net::SimTime::ZERO,
        );
        let skips: Vec<_> = tracer
            .snapshot()
            .into_iter()
            .filter(|r| matches!(r.event, TraceEvent::ReplaySkipped { .. }))
            .collect();
        assert_eq!(skips.len(), 1);
        assert_eq!(skips[0].event.round(), Some(7));
        assert_eq!(
            skips[0].event,
            TraceEvent::ReplaySkipped {
                round: 7,
                pending: 1
            }
        );
    }

    #[test]
    fn join_preserves_pre_join_pending_ops() {
        let mut member = Machine::new_member(
            MachineId::new(1),
            Arc::new(counter_registry()),
            MachineConfig::default(),
        );
        let own = member.create_instance(Counter { n: 1 });
        member.init_from_join_info(vec![], vec![]);
        assert_eq!(member.pending_len(), 1, "pre-join create still pending");
        // The object survives on the guesstimated state via replay.
        assert_eq!(member.read::<Counter, _>(own, |c| c.n), Some(1));
        assert_eq!(member.read_committed::<Counter, _>(own, |c| c.n), None);
    }

    #[test]
    fn restart_drops_pending_and_counts() {
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        m.issue_with_completion(SharedOp::primitive(id, "add", args![1]), Box::new(|_| {}))
            .unwrap();
        m.reset_for_restart();
        assert_eq!(m.pending_len(), 0);
        assert_eq!(m.completed_len(), 0);
        assert_eq!(m.stats().restarts, 1);
        assert_eq!(m.stats().ops_lost_to_restart, 2);
        assert_eq!(m.stats().completions_dropped, 1);
        assert!(!m.is_joined());
        assert!(m.available_objects().is_empty());
    }

    #[test]
    fn op_seq_survives_restart() {
        // OpIds must never be reused across a restart, or the completed
        // history would contain duplicate identities.
        let mut m = machine();
        let id = m.create_instance(Counter { n: 0 });
        m.issue(SharedOp::primitive(id, "add", args![1])).unwrap();
        let seq_before = m.op_seq;
        m.reset_for_restart();
        assert_eq!(m.op_seq, seq_before);
    }

    #[test]
    fn debug_impl_is_nonempty() {
        assert!(format!("{:?}", machine()).contains("Machine"));
    }
}
