//! Unit tests for the local [`Machine`] API and the commit-side machinery
//! in [`crate::exec`] (applied rounds, replay skipping, join info,
//! restarts). Declared by `machine.rs` via `#[path]` so `super::*` still
//! refers to that module.

use super::*;
use crate::testutil::{counter_registry, Counter};
use guesstimate_core::args;

fn machine() -> Machine {
    Machine::new_master(
        MachineId::new(0),
        Arc::new(counter_registry()),
        MachineConfig::default(),
    )
}

#[test]
fn create_instance_is_visible_in_guess_not_committed() {
    let mut m = machine();
    let id = m.create_instance(Counter { n: 5 });
    assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(5));
    assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), None);
    assert_eq!(m.pending_len(), 1);
    assert_eq!(m.object_type(id), Some("Counter"));
    assert_eq!(m.join_instance(id), Some("Counter"));
    assert_eq!(m.available_objects().len(), 1);
}

#[test]
#[should_panic(expected = "not registered")]
fn create_instance_of_unregistered_type_panics() {
    #[derive(Clone, Default)]
    struct Ghost;
    impl GState for Ghost {
        const TYPE_NAME: &'static str = "Ghost";
        fn snapshot(&self) -> guesstimate_core::Value {
            guesstimate_core::Value::Unit
        }
        fn restore(
            &mut self,
            _: &guesstimate_core::Value,
        ) -> Result<(), guesstimate_core::RestoreError> {
            Ok(())
        }
    }
    machine().create_instance(Ghost);
}

#[test]
fn issue_succeeds_on_guess_and_queues() {
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    let ok = m.issue(SharedOp::primitive(id, "add", args![3])).unwrap();
    assert!(ok);
    assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(3));
    assert_eq!(m.pending_len(), 2);
    assert_eq!(m.stats().issued, 2);
}

#[test]
fn issue_failure_drops_op_and_counts() {
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    // Precondition: counter never negative.
    let ok = m.issue(SharedOp::primitive(id, "add", args![-5])).unwrap();
    assert!(!ok);
    assert_eq!(m.pending_len(), 1, "failed op not enqueued");
    assert_eq!(m.stats().issue_failures, 1);
    assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(0));
}

#[test]
fn issue_on_unknown_object_is_error() {
    let mut m = machine();
    let bogus = ObjectId::new(MachineId::new(9), 9);
    assert!(m
        .issue(SharedOp::primitive(bogus, "add", args![1]))
        .is_err());
}

#[test]
fn apply_committed_round_commits_own_ops_and_pops_pending() {
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    m.issue(SharedOp::primitive(id, "add", args![3])).unwrap();
    let batch: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
    let n = m.apply_committed_round(batch, 0, guesstimate_net::SimTime::ZERO);
    assert_eq!(n, 2);
    assert_eq!(m.pending_len(), 0);
    assert_eq!(m.completed_len(), 2);
    assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), Some(3));
    assert_eq!(m.guess_digest(), m.committed_digest());
    assert_eq!(m.stats().committed_own, 2);
    assert_eq!(m.stats().conflicts, 0);
    // Each op executed twice: issue + commit.
    assert_eq!(m.stats().exec_histogram[2], 2);
    assert_eq!(m.stats().max_exec_count, 2);
}

#[test]
fn completion_runs_with_commit_result() {
    use std::sync::atomic::{AtomicI32, Ordering};
    let seen = Arc::new(AtomicI32::new(-1));
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    let s = seen.clone();
    m.issue_with_completion(
        SharedOp::primitive(id, "add", args![1]),
        Box::new(move |b| s.store(b as i32, Ordering::SeqCst)),
    )
    .unwrap();
    let batch: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
    m.apply_committed_round(batch, 0, guesstimate_net::SimTime::ZERO);
    assert_eq!(seen.load(Ordering::SeqCst), 1);
    assert_eq!(m.stats().completions_run, 1);
}

#[test]
fn conflict_detected_when_foreign_op_invalidates_own() {
    // Machine 0 issues add(5) with precondition n+delta <= 10; a foreign
    // op that commits first pushes n to 8, so the own op fails at commit.
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    // Commit creation first so the foreign op can execute.
    let create: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
    m.apply_committed_round(create, 0, guesstimate_net::SimTime::ZERO);

    m.issue(SharedOp::primitive(id, "add_capped", args![5, 10]))
        .unwrap();
    assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(5));

    let foreign = WireEnvelope {
        id: OpId::new(MachineId::new(1), 0),
        op: WireOp::Shared(SharedOp::primitive(id, "add", args![8])),
    };
    let own = m.pending.front().cloned().unwrap();
    // Foreign machine id 1 > 0? No: lexicographic order puts m0's op
    // first... we want the foreign op to commit BEFORE ours, so give it
    // machine id... m0 < m1, so our op sorts first and would succeed.
    // Apply in explicit order instead: the protocol sorts; here we hand
    // an already-ordered list with the foreign op first, modelling a
    // foreign machine with a smaller id.
    let n = m.apply_committed_round(vec![foreign, own], 0, guesstimate_net::SimTime::ZERO);
    assert_eq!(n, 2);
    assert_eq!(m.stats().conflicts, 1);
    // Committed state has only the foreign add.
    assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), Some(8));
    assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(8));
}

#[test]
fn replay_of_still_pending_ops_rebuilds_guess() {
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    m.issue(SharedOp::primitive(id, "add", args![1])).unwrap();
    // Simulate a round that commits only the creation (as if add was
    // issued after our flush): commit the first pending op only.
    let create = vec![m.pending.front().cloned().unwrap()];
    m.apply_committed_round(create, 0, guesstimate_net::SimTime::ZERO);
    // add(1) is still pending and was replayed onto the fresh guess.
    assert_eq!(m.pending_len(), 1);
    assert_eq!(m.read::<Counter, _>(id, |c| c.n), Some(1));
    assert_eq!(m.read_committed::<Counter, _>(id, |c| c.n), Some(0));
    assert_eq!(m.stats().replays, 1);
    // Now commit it: 3 executions total (issue, replay, commit).
    let rest: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
    m.apply_committed_round(rest, 0, guesstimate_net::SimTime::ZERO);
    assert_eq!(m.stats().exec_histogram[3], 1);
    assert!(m.stats().max_exec_count <= 3);
}

#[test]
fn join_info_roundtrip_replicates_state() {
    let mut master = machine();
    let id = master.create_instance(Counter { n: 7 });
    let batch: Vec<WireEnvelope> = master.pending.iter().cloned().collect();
    master.apply_committed_round(batch, 0, guesstimate_net::SimTime::ZERO);

    let (catalog, completed, completed_serialized, watermarks) = master.build_join_info();
    let mut member = Machine::new_member(
        MachineId::new(1),
        Arc::new(counter_registry()),
        MachineConfig::default(),
    );
    member.init_from_join_info(
        catalog,
        completed,
        completed_serialized,
        watermarks,
        SimTime::ZERO,
    );
    assert!(member.is_joined());
    assert_eq!(member.committed_digest(), master.committed_digest());
    assert_eq!(member.read::<Counter, _>(id, |c| c.n), Some(7));
    assert_eq!(member.completed_len(), 1);
}

// --- Commute-aware replay skipping ---

use crate::testutil::{slots_registry, Slots};

/// A `Slots` machine with `commute_skip` on and its creation committed.
fn skip_machine(cfg: MachineConfig) -> (Machine, ObjectId) {
    let mut m = Machine::new_master(
        MachineId::new(0),
        Arc::new(slots_registry()),
        cfg.with_commute_skip(true),
    );
    let id = m.create_instance(Slots::default());
    let create: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
    m.apply_committed_round(create, 0, guesstimate_net::SimTime::ZERO);
    (m, id)
}

fn foreign_put(id: ObjectId, seq: u64, key: &str, v: i64) -> WireEnvelope {
    WireEnvelope {
        id: OpId::new(MachineId::new(1), seq),
        op: WireOp::Shared(SharedOp::primitive(id, "put", args![key, v])),
    }
}

#[test]
fn foreign_free_round_skips_replay() {
    let (mut m, id) = skip_machine(MachineConfig::default());
    m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
        .unwrap();
    m.issue(SharedOp::primitive(id, "put", args!["b", 2]))
        .unwrap();
    // Commit only the first pending op: the round has no foreign ops, so
    // the rebuild is always skippable.
    let first = vec![m.pending.front().cloned().unwrap()];
    m.apply_committed_round(first, 1, guesstimate_net::SimTime::ZERO);
    assert_eq!(m.stats().replays, 0);
    assert_eq!(m.stats().replays_skipped, 1);
    assert_eq!(m.read::<Slots, _>(id, |s| s.m.len()), Some(2));
    // The skipped replay is not an execution: when the op commits next
    // round, its lifetime count is issue + commit = 2, not 3.
    let rest: Vec<WireEnvelope> = m.pending.iter().cloned().collect();
    m.apply_committed_round(rest, 2, guesstimate_net::SimTime::ZERO);
    assert_eq!(m.stats().exec_histogram[2], 3); // create + both puts
    assert_eq!(m.guess_digest(), m.committed_digest());
}

#[test]
fn disjoint_foreign_op_skips_and_patches_guess() {
    let (mut m, id) = skip_machine(MachineConfig::default());
    m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
        .unwrap();
    let n = m.apply_committed_round(
        vec![foreign_put(id, 0, "b", 2)],
        1,
        guesstimate_net::SimTime::ZERO,
    );
    assert_eq!(n, 1);
    assert_eq!(m.stats().replays, 0);
    assert_eq!(m.stats().replays_skipped, 1);
    // Guess = committed (b=2) + still-pending local put (a=1).
    assert_eq!(
        m.read::<Slots, _>(id, |s| s.m.get("a").copied()),
        Some(Some(1))
    );
    assert_eq!(
        m.read::<Slots, _>(id, |s| s.m.get("b").copied()),
        Some(Some(2))
    );
    assert_eq!(
        m.read_committed::<Slots, _>(id, |s| s.m.get("a").copied()),
        Some(None)
    );
}

#[test]
fn overlapping_foreign_op_forces_rebuild() {
    let (mut m, id) = skip_machine(MachineConfig::default());
    m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
        .unwrap();
    m.apply_committed_round(
        vec![foreign_put(id, 0, "a", 9)],
        1,
        guesstimate_net::SimTime::ZERO,
    );
    assert_eq!(m.stats().replays_skipped, 0);
    assert_eq!(m.stats().replays, 1);
    // Local pending put replayed on top of the conflicting foreign one.
    assert_eq!(
        m.read::<Slots, _>(id, |s| s.m.get("a").copied()),
        Some(Some(1))
    );
}

#[test]
fn undeclared_effect_forces_rebuild_unless_matrix_proves_it() {
    // raw_put has no declared effect: same-object pairs cannot be judged…
    let (mut m, id) = skip_machine(MachineConfig::default());
    m.issue(SharedOp::primitive(id, "raw_put", args!["a", 1]))
        .unwrap();
    let foreign = WireEnvelope {
        id: OpId::new(MachineId::new(1), 0),
        op: WireOp::Shared(SharedOp::primitive(id, "raw_put", args!["b", 2])),
    };
    m.apply_committed_round(vec![foreign.clone()], 1, guesstimate_net::SimTime::ZERO);
    assert_eq!(m.stats().replays, 1);
    assert_eq!(m.stats().replays_skipped, 0);

    // …unless an analysis-validated matrix vouches for the method pair.
    let mut matrix = guesstimate_core::CommuteMatrix::new();
    matrix.insert("Slots", "raw_put", "raw_put");
    let (mut m, id) = skip_machine(MachineConfig::default().with_commute_matrix(matrix));
    m.issue(SharedOp::primitive(id, "raw_put", args!["a", 1]))
        .unwrap();
    let foreign = WireEnvelope {
        id: OpId::new(MachineId::new(1), 0),
        op: WireOp::Shared(SharedOp::primitive(id, "raw_put", args!["b", 2])),
    };
    m.apply_committed_round(vec![foreign], 1, guesstimate_net::SimTime::ZERO);
    assert_eq!(m.stats().replays, 0);
    assert_eq!(m.stats().replays_skipped, 1);
    assert_eq!(m.read::<Slots, _>(id, |s| s.m.len()), Some(2));
}

#[test]
fn skip_emits_round_scoped_trace_event() {
    let tracer = Arc::new(guesstimate_net::RecordingTracer::new());
    let (mut m, id) = skip_machine(MachineConfig::default());
    m.set_tracer(tracer.clone());
    m.issue(SharedOp::primitive(id, "put", args!["a", 1]))
        .unwrap();
    m.apply_committed_round(
        vec![foreign_put(id, 0, "b", 2)],
        7,
        guesstimate_net::SimTime::ZERO,
    );
    let skips: Vec<_> = tracer
        .snapshot()
        .into_iter()
        .filter(|r| matches!(r.event, TraceEvent::ReplaySkipped { .. }))
        .collect();
    assert_eq!(skips.len(), 1);
    assert_eq!(skips[0].event.round(), Some(7));
    assert_eq!(
        skips[0].event,
        TraceEvent::ReplaySkipped {
            round: 7,
            pending: 1
        }
    );
}

#[test]
fn join_preserves_pre_join_pending_ops() {
    let mut member = Machine::new_member(
        MachineId::new(1),
        Arc::new(counter_registry()),
        MachineConfig::default(),
    );
    let own = member.create_instance(Counter { n: 1 });
    member.init_from_join_info(vec![], vec![], vec![], vec![], SimTime::ZERO);
    assert_eq!(member.pending_len(), 1, "pre-join create still pending");
    // The object survives on the guesstimated state via replay.
    assert_eq!(member.read::<Counter, _>(own, |c| c.n), Some(1));
    assert_eq!(member.read_committed::<Counter, _>(own, |c| c.n), None);
}

#[test]
fn restart_drops_pending_and_counts() {
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    m.issue_with_completion(SharedOp::primitive(id, "add", args![1]), Box::new(|_| {}))
        .unwrap();
    m.reset_for_restart();
    assert_eq!(m.pending_len(), 0);
    assert_eq!(m.completed_len(), 0);
    assert_eq!(m.stats().restarts, 1);
    assert_eq!(m.stats().ops_lost_to_restart, 2);
    assert_eq!(m.stats().completions_dropped, 1);
    assert!(!m.is_joined());
    assert!(m.available_objects().is_empty());
}

#[test]
fn op_seq_survives_restart() {
    // OpIds must never be reused across a restart, or the completed
    // history would contain duplicate identities.
    let mut m = machine();
    let id = m.create_instance(Counter { n: 0 });
    m.issue(SharedOp::primitive(id, "add", args![1])).unwrap();
    let seq_before = m.op_seq;
    m.reset_for_restart();
    assert_eq!(m.op_seq, seq_before);
}

#[test]
fn debug_impl_is_nonempty() {
    assert!(format!("{:?}", machine()).contains("Machine"));
}

// ---- witness containment at apply sites ------------------------------------

/// `slots_registry` plus a `copy(src, dst)` method whose declared footprint
/// under-declares: it reads `src` but only admits to touching `dst`. The
/// live witness check must catch this at issue time.
fn leaky_slots_registry() -> OpRegistry {
    use guesstimate_core::{EffectSpec, Footprint};
    let mut r = slots_registry();
    r.register_with_effects::<Slots>(
        "copy",
        EffectSpec::new(|a| {
            let Some(dst) = a.str(1) else {
                return Footprint::new();
            };
            Footprint::new().reads([dst]).writes([dst])
        }),
        |s: &mut Slots, a| {
            let (Some(src), Some(dst)) = (a.str(0), a.str(1)) else {
                return false;
            };
            let Some(v) = s.m.get(src).copied() else {
                return false;
            };
            s.m.insert(dst.to_owned(), v);
            true
        },
    );
    r
}

fn witness_machine(assert_on: bool) -> (Machine, ObjectId) {
    let cfg = MachineConfig::default()
        .with_paranoid_checks(true)
        .with_witness_reads(true)
        .with_witness_assert(assert_on);
    let mut m = Machine::new_master(MachineId::new(0), Arc::new(leaky_slots_registry()), cfg);
    let id = m.create_instance(Slots {
        m: [("src".to_owned(), 7), ("dst".to_owned(), 0)].into(),
    });
    (m, id)
}

#[test]
fn undeclared_read_is_recorded_when_witness_assert_is_off() {
    let (mut m, id) = witness_machine(false);
    assert!(m.witness_violations().is_empty());
    let ok = m
        .issue(SharedOp::primitive(id, "copy", args!["src", "dst"]))
        .unwrap();
    assert!(ok, "the op itself succeeds; only its declaration is wrong");
    let v = m
        .witness_violations()
        .first()
        .expect("escape recorded, not asserted");
    assert_eq!(v.site, "issue");
    assert!(
        v.detail.contains("src"),
        "detail names the leaked path: {}",
        v.detail
    );
    // An honestly-declared method adds nothing.
    m.issue(SharedOp::primitive(id, "put", args!["dst", 3]))
        .unwrap();
    assert_eq!(m.witness_violations().len(), 1);
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "witness escape")]
fn undeclared_read_asserts_by_default() {
    let (mut m, id) = witness_machine(true);
    let _ = m.issue(SharedOp::primitive(id, "copy", args!["src", "dst"]));
}
