//! Wire messages of the GUESSTIMATE synchronizer.
//!
//! §4 of the paper: synchronization proceeds in three stages over two meshes.
//! *AddUpdatesToMesh* flushes each machine's pending operations as
//! `(machineID, operationnumber, operation)` triples on the **Operations**
//! channel, with turn-passing confirmations on the **Signals** channel;
//! *ApplyUpdatesFromMesh* applies the consolidated list and acknowledges;
//! *FlagCompletion* closes the round. Membership (enter/leave) and fault
//! recovery (resend/restart) also ride the Signals channel.

use guesstimate_core::{MachineId, ObjectId, OpId, SharedOp, Value};

/// An operation as it travels between machines.
///
/// Besides application-level [`SharedOp`]s, the op stream carries object
/// *creation*: `Guesstimate.CreateInstance` registers a new shared object
/// with the runtime, and every machine must materialize it in committed
/// order (creation is itself an operation with an issue identity, so all
/// later operations on the object sort after it).
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Materialize a new shared object with the given initial state.
    Create {
        /// The new object's id.
        object: ObjectId,
        /// Registered type name (must be known to every machine's registry).
        type_name: String,
        /// Canonical snapshot of the initial state.
        init: Value,
    },
    /// An application-level shared operation.
    Shared(SharedOp),
}

impl WireOp {
    /// The creation fields `(object, type_name, init)`, or `None` if this is
    /// not a [`WireOp::Create`].
    pub fn as_create(&self) -> Option<(ObjectId, &str, &Value)> {
        match self {
            WireOp::Create {
                object,
                type_name,
                init,
            } => Some((*object, type_name, init)),
            WireOp::Shared(_) => None,
        }
    }

    /// The shared operation, or `None` if this is not a [`WireOp::Shared`].
    pub fn as_shared(&self) -> Option<&SharedOp> {
        match self {
            WireOp::Shared(op) => Some(op),
            WireOp::Create { .. } => None,
        }
    }
}

/// An operation tagged with its issue identity — one element of a machine's
/// pending list `P`, and the unit flushed during *AddUpdatesToMesh*.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEnvelope {
    /// `(machineID, operationnumber)`.
    pub id: OpId,
    /// The operation.
    pub op: WireOp,
}

/// One object's identity, type and state, as shipped to a joining machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInit {
    /// The object's id.
    pub id: ObjectId,
    /// Registered type name.
    pub type_name: String,
    /// Canonical snapshot of the committed state.
    pub state: Value,
}

/// A synchronizer message.
///
/// Broadcast messages are seen by every mesh member; the runtime also uses
/// unicast for recovery nudges and join handshakes. All handlers are
/// idempotent, so duplicated deliveries (a fault mode of the mesh) are
/// harmless.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---- Stage 1: AddUpdatesToMesh ----
    /// Master → all: a synchronization round begins; `order` fixes the
    /// serial flush turns (master first).
    BeginSync {
        /// Round number (monotonically increasing).
        round: u64,
        /// Flush order; also the round's participant set.
        order: Vec<MachineId>,
    },
    /// Flushing machine → all: its pending-list batch for this round.
    Ops {
        /// Round number.
        round: u64,
        /// The flushing machine.
        machine: MachineId,
        /// Its pending operations, in issue order.
        ops: Vec<WireEnvelope>,
    },
    /// Flushing machine → all: confirmation that its flush is complete
    /// (`count` operations); passes the turn to the next machine in order.
    FlushDone {
        /// Round number.
        round: u64,
        /// The machine that finished flushing.
        machine: MachineId,
        /// Number of operations it flushed.
        count: u64,
    },

    // ---- Stage 2: ApplyUpdatesFromMesh ----
    /// Master → all: every participant flushed; apply the consolidated
    /// pending list. `counts` is the authoritative per-machine op count
    /// (machines removed by recovery are absent).
    BeginApply {
        /// Round number.
        round: u64,
        /// Authoritative `(machine, op count)` pairs for the round.
        counts: Vec<(MachineId, u64)>,
    },
    /// Participant → source machine: some of your round-`round` operations
    /// never arrived here; please resend your batch.
    OpsRequest {
        /// Round number.
        round: u64,
    },
    /// Participant → master: applied everything, committed state updated.
    Ack {
        /// Round number.
        round: u64,
        /// The acknowledging machine.
        machine: MachineId,
    },

    // ---- Stage 3: FlagCompletion ----
    /// Master → all: the round is complete.
    SyncComplete {
        /// Round number.
        round: u64,
    },

    // ---- Recovery ----
    /// Master → all: these machines were removed from the current round
    /// (stalled); do not wait for their flush and discard their ops.
    RoundUpdate {
        /// Round number.
        round: u64,
        /// Machines removed from the round.
        removed: Vec<MachineId>,
    },
    /// Master → machine: you are out of sync; shut down and re-enter.
    Restart,
    /// Member → all: the master has been silent past the failover
    /// threshold; I stand for election with this much committed progress.
    MasterCandidate {
        /// The candidate.
        machine: MachineId,
        /// The candidate's last applied round (election rank, ties broken
        /// by smaller machine id).
        last_round: u64,
    },
    /// Master → all: I am alive (quells in-progress elections; also sent
    /// by a freshly promoted master to announce itself).
    MasterHeartbeat,

    // ---- Membership ----
    /// New machine → all (master handles): request to enter the system.
    JoinRequest {
        /// The joining machine.
        machine: MachineId,
    },
    /// Master → joining machine: the list of available objects (with
    /// committed state) and the completed-operation history.
    JoinInfo {
        /// Every shared object's identity, type and committed state.
        catalog: Vec<ObjectInit>,
        /// Ids of all committed operations (the sequence `C`).
        completed: Vec<OpId>,
    },
    /// Joining machine → master: initialized; include me from the next
    /// synchronization onward.
    JoinReady {
        /// The now-initialized machine.
        machine: MachineId,
    },
    /// Departing machine → all: remove me from future synchronizations.
    Leave {
        /// The departing machine.
        machine: MachineId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::args;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = Msg::BeginSync {
            round: 3,
            order: vec![MachineId::new(0), MachineId::new(1)],
        };
        assert_eq!(m, m.clone());
        let o = Msg::Ops {
            round: 3,
            machine: MachineId::new(1),
            ops: vec![WireEnvelope {
                id: OpId::new(MachineId::new(1), 0),
                op: WireOp::Shared(SharedOp::primitive(
                    ObjectId::new(MachineId::new(0), 0),
                    "f",
                    args![1],
                )),
            }],
        };
        assert_eq!(o, o.clone());
        assert_ne!(m, o);
    }

    #[test]
    fn wire_create_roundtrips_fields() {
        let w = WireOp::Create {
            object: ObjectId::new(MachineId::new(2), 5),
            type_name: "Sudoku".into(),
            init: Value::from(1),
        };
        let (object, type_name, init) = w.as_create().expect("is a Create");
        assert_eq!(object.creator(), MachineId::new(2));
        assert_eq!(type_name, "Sudoku");
        assert_eq!(init, &Value::from(1));
        assert!(w.as_shared().is_none());
    }

    #[test]
    fn wire_shared_accessor_mirrors_create_accessor() {
        let op = SharedOp::primitive(ObjectId::new(MachineId::new(0), 0), "f", args![1]);
        let w = WireOp::Shared(op.clone());
        assert_eq!(w.as_shared(), Some(&op));
        assert!(w.as_create().is_none());
    }
}
