//! Wire messages of the GUESSTIMATE synchronizer.
//!
//! §4 of the paper: synchronization proceeds in three stages over two meshes.
//! *AddUpdatesToMesh* flushes each machine's pending operations as
//! `(machineID, operationnumber, operation)` triples on the **Operations**
//! channel, with turn-passing confirmations on the **Signals** channel;
//! *ApplyUpdatesFromMesh* applies the consolidated list and acknowledges;
//! *FlagCompletion* closes the round. Membership (enter/leave) and fault
//! recovery (resend/restart) also ride the Signals channel.

use std::sync::Arc;

use guesstimate_core::{MachineId, ObjectId, OpId, SharedOp, Value};

// Structural wire-size model used for byte accounting in
// [`guesstimate_net::NetMetrics`]: ids are fixed-width, every enum
// discriminant costs one tag byte, every variable-length sequence costs
// a length prefix. There is no real serializer (messages travel as Rust
// values in-process), so these sizes are a deterministic estimate of
// what a compact binary encoding would ship, not a measured payload.
const TAG: u64 = 1;
const LEN: u64 = 4;
const MACHINE_ID: u64 = 4;
const OP_ID: u64 = 12; // MachineId + u64 sequence number
const OBJECT_ID: u64 = 12; // creator MachineId + u64 sequence number
const ROUND: u64 = 8;

fn value_size(v: &Value) -> u64 {
    TAG + match v {
        Value::Unit => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Str(s) => LEN + s.len() as u64,
        Value::Bytes(b) => LEN + b.len() as u64,
        Value::List(l) => LEN + l.iter().map(value_size).sum::<u64>(),
        Value::Map(m) => {
            LEN + m
                .iter()
                .map(|(k, v)| LEN + k.len() as u64 + value_size(v))
                .sum::<u64>()
        }
    }
}

fn shared_op_size(op: &SharedOp) -> u64 {
    TAG + match op {
        SharedOp::Primitive { method, args, .. } => {
            OBJECT_ID + LEN + method.len() as u64 + LEN + args.iter().map(value_size).sum::<u64>()
        }
        SharedOp::Atomic(ops) => LEN + ops.iter().map(shared_op_size).sum::<u64>(),
        SharedOp::OrElse(a, b) => shared_op_size(a) + shared_op_size(b),
    }
}

/// An operation as it travels between machines.
///
/// Besides application-level [`SharedOp`]s, the op stream carries object
/// *creation*: `Guesstimate.CreateInstance` registers a new shared object
/// with the runtime, and every machine must materialize it in committed
/// order (creation is itself an operation with an issue identity, so all
/// later operations on the object sort after it).
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Materialize a new shared object with the given initial state.
    Create {
        /// The new object's id.
        object: ObjectId,
        /// Registered type name (must be known to every machine's registry).
        type_name: String,
        /// Canonical snapshot of the initial state.
        init: Value,
    },
    /// An application-level shared operation.
    Shared(SharedOp),
    /// A cross-group coordination marker (multi-group mode only; see
    /// [`crate::multigroup`]).
    ///
    /// A `Cross`-routed operation cannot be serialized by any single sync
    /// group, so the coordinator issues one marker carrying the payload into
    /// *every* involved group's round. Committing a marker is a no-op on the
    /// group's store; it only fixes the deterministic interleaving point at
    /// which the wrapper later executes the payload against the merged
    /// per-group state (and it fences the group: the wrapper buffers the
    /// group's events from marker commit until the coordinated round
    /// resolves).
    CrossMarker {
        /// Coordinator-assigned global sequence number: markers commit in
        /// `xid` order within every involved group.
        xid: u64,
        /// The *node* (outer machine id) that submitted the operation; its
        /// wrapper runs the completion when the marker resolves.
        origin: MachineId,
        /// The submitter's local cross-submission sequence number (keys the
        /// completion callback on the origin node).
        oseq: u64,
        /// The involved sync groups: the coordinator issues one identical
        /// marker into each, and a node resolves the round once every
        /// hosted involved group has committed its copy.
        groups: Vec<u32>,
        /// The cross-routed payload, executed once per involved group
        /// against the merged state at resolution.
        op: SharedOp,
    },
}

impl WireOp {
    /// The creation fields `(object, type_name, init)`, or `None` if this is
    /// not a [`WireOp::Create`].
    pub fn as_create(&self) -> Option<(ObjectId, &str, &Value)> {
        match self {
            WireOp::Create {
                object,
                type_name,
                init,
            } => Some((*object, type_name, init)),
            WireOp::Shared(_) | WireOp::CrossMarker { .. } => None,
        }
    }

    /// The shared operation, or `None` if this is not a [`WireOp::Shared`].
    pub fn as_shared(&self) -> Option<&SharedOp> {
        match self {
            WireOp::Shared(op) => Some(op),
            WireOp::Create { .. } | WireOp::CrossMarker { .. } => None,
        }
    }

    /// Estimated encoded size in bytes (see the module's wire-size model).
    pub fn wire_size(&self) -> u64 {
        TAG + match self {
            WireOp::Create {
                type_name, init, ..
            } => OBJECT_ID + LEN + type_name.len() as u64 + value_size(init),
            WireOp::Shared(op) => shared_op_size(op),
            WireOp::CrossMarker { op, groups, .. } => {
                8 + MACHINE_ID + 8 + LEN + 4 * groups.len() as u64 + shared_op_size(op)
            }
        }
    }
}

/// An operation tagged with its issue identity — one element of a machine's
/// pending list `P`, and the unit flushed during *AddUpdatesToMesh*.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEnvelope {
    /// `(machineID, operationnumber)`.
    pub id: OpId,
    /// The operation.
    pub op: WireOp,
}

impl WireEnvelope {
    /// Estimated encoded size in bytes (see the module's wire-size model).
    pub fn wire_size(&self) -> u64 {
        OP_ID + self.op.wire_size()
    }
}

/// One object's identity, type and state, as shipped to a joining machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInit {
    /// The object's id.
    pub id: ObjectId,
    /// Registered type name.
    pub type_name: String,
    /// Canonical snapshot of the committed state.
    pub state: Value,
}

impl ObjectInit {
    /// Estimated encoded size in bytes (see the module's wire-size model).
    pub fn wire_size(&self) -> u64 {
        OBJECT_ID + LEN + self.type_name.len() as u64 + value_size(&self.state)
    }
}

/// A synchronizer message.
///
/// Broadcast messages are seen by every mesh member; the runtime also uses
/// unicast for recovery nudges and join handshakes. All handlers are
/// idempotent, so duplicated deliveries (a fault mode of the mesh) are
/// harmless.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---- Stage 1: AddUpdatesToMesh ----
    /// Master → all: a synchronization round begins; `order` fixes the
    /// serial flush turns (master first).
    BeginSync {
        /// Round number (monotonically increasing).
        round: u64,
        /// Flush order; also the round's participant set.
        order: Vec<MachineId>,
    },
    /// Flushing machine → all: its pending-list batch for this round.
    Ops {
        /// Round number.
        round: u64,
        /// The flushing machine.
        machine: MachineId,
        /// Its pending operations, in issue order. Shared behind an
        /// [`Arc`] so the broadcast fan-out and recovery resends reuse one
        /// allocation instead of deep-copying envelopes per recipient.
        ops: Arc<Vec<WireEnvelope>>,
        /// Async-committed operations this machine issued since its
        /// previous flush, as `(async sequence, envelope)` pairs (the
        /// round-boundary fence of the hybrid commit path: the flush
        /// piggybacks them so round reliability — counts, `OpsRequest`
        /// resends — repairs any lost [`Msg::AsyncOp`] broadcast before
        /// the round applies). Empty when
        /// [`crate::MachineConfig::async_commit`] is off.
        asyncs: Arc<Vec<(u64, WireEnvelope)>>,
    },
    /// Flushing machine → all: confirmation that its flush is complete
    /// (`count` operations); passes the turn to the next machine in order.
    FlushDone {
        /// Round number.
        round: u64,
        /// The machine that finished flushing.
        machine: MachineId,
        /// Number of operations it flushed.
        count: u64,
    },

    // ---- Stage 2: ApplyUpdatesFromMesh ----
    /// Master → all: every participant flushed; apply the consolidated
    /// pending list. `counts` is the authoritative per-machine op count
    /// (machines removed by recovery are absent).
    BeginApply {
        /// Round number.
        round: u64,
        /// Authoritative `(machine, op count)` pairs for the round.
        counts: Vec<(MachineId, u64)>,
    },
    /// Participant → source machine: some of your round-`round` operations
    /// never arrived here; please resend your batch.
    OpsRequest {
        /// Round number.
        round: u64,
    },
    /// Participant → master: applied everything, committed state updated.
    Ack {
        /// Round number.
        round: u64,
        /// The acknowledging machine.
        machine: MachineId,
    },

    // ---- Stage 3: FlagCompletion ----
    /// Master → all: the round is complete.
    SyncComplete {
        /// Round number.
        round: u64,
    },

    // ---- Hybrid commit path (commute-first async commits) ----
    /// Issuer → all: a universally-commuting operation, already committed
    /// on the issuer, to be applied at each receiver in arrival order
    /// (per-sender FIFO by `aseq`). Not part of any round; see
    /// `docs/PROTOCOL.md` "Commute-first async commits".
    AsyncOp {
        /// Per-sender async sequence number (contiguous from 0); receivers
        /// use it for per-sender FIFO ordering and duplicate suppression.
        aseq: u64,
        /// The committed operation with its issue identity.
        env: WireEnvelope,
    },

    // ---- Recovery ----
    /// Master → all: these machines were removed from the current round
    /// (stalled); do not wait for their flush and discard their ops.
    RoundUpdate {
        /// Round number.
        round: u64,
        /// Machines removed from the round.
        removed: Vec<MachineId>,
    },
    /// Master → machine: you are out of sync; shut down and re-enter.
    Restart,
    /// Member → all: the master has been silent past the failover
    /// threshold; I stand for election with this much committed progress.
    MasterCandidate {
        /// The candidate.
        machine: MachineId,
        /// The candidate's last applied round (election rank, ties broken
        /// by smaller machine id).
        last_round: u64,
    },
    /// Master → all: I am alive (quells in-progress elections; also sent
    /// by a freshly promoted master to announce itself).
    MasterHeartbeat,

    // ---- Membership ----
    /// New machine → all (master handles): request to enter the system.
    JoinRequest {
        /// The joining machine.
        machine: MachineId,
    },
    /// Master → joining machine: the list of available objects (with
    /// committed state) and the completed-operation history.
    JoinInfo {
        /// Every shared object's identity, type and committed state.
        catalog: Vec<ObjectInit>,
        /// Ids of all committed operations (the sequence `C`).
        completed: Vec<OpId>,
        /// The serialized-only subsequence of `completed`, in round order
        /// (equal to `completed` unless the hybrid commit path is on).
        /// The joiner anchors its own serialized sequence here so the
        /// prefix-agreement oracle holds across joins.
        completed_serialized: Vec<OpId>,
        /// Per-sender async watermarks on the master (`next expected
        /// aseq`); the joiner starts its receive state here so async ops
        /// already folded into the shipped catalog are not applied twice.
        async_watermarks: Vec<(MachineId, u64)>,
    },
    /// Joining machine → master: initialized; include me from the next
    /// synchronization onward.
    JoinReady {
        /// The now-initialized machine.
        machine: MachineId,
    },
    /// Departing machine → all: remove me from future synchronizations.
    Leave {
        /// The departing machine.
        machine: MachineId,
    },
}

impl Msg {
    /// Estimated encoded size in bytes (see the module's wire-size model).
    ///
    /// This feeds [`guesstimate_net::Actor::msg_size`] so the drivers can
    /// account `bytes_sent`/`bytes_delivered` structurally: an `Ops`
    /// batch is charged for every envelope it carries, a `JoinInfo` for
    /// the whole catalog and history it ships.
    pub fn wire_size(&self) -> u64 {
        TAG + match self {
            Msg::BeginSync { order, .. } => ROUND + LEN + order.len() as u64 * MACHINE_ID,
            Msg::Ops { ops, asyncs, .. } => {
                ROUND
                    + MACHINE_ID
                    + LEN
                    + ops.iter().map(WireEnvelope::wire_size).sum::<u64>()
                    + LEN
                    + asyncs.iter().map(|(_, e)| 8 + e.wire_size()).sum::<u64>()
            }
            Msg::FlushDone { .. } => ROUND + MACHINE_ID + 8,
            Msg::BeginApply { counts, .. } => ROUND + LEN + counts.len() as u64 * (MACHINE_ID + 8),
            Msg::OpsRequest { .. } | Msg::SyncComplete { .. } => ROUND,
            Msg::AsyncOp { env, .. } => 8 + env.wire_size(),
            Msg::Ack { .. } => ROUND + MACHINE_ID,
            Msg::RoundUpdate { removed, .. } => ROUND + LEN + removed.len() as u64 * MACHINE_ID,
            Msg::Restart | Msg::MasterHeartbeat => 0,
            Msg::MasterCandidate { .. } => MACHINE_ID + ROUND,
            Msg::JoinRequest { machine: _ } | Msg::JoinReady { machine: _ } => MACHINE_ID,
            Msg::JoinInfo {
                catalog,
                completed,
                completed_serialized,
                async_watermarks,
            } => {
                LEN + catalog.iter().map(ObjectInit::wire_size).sum::<u64>()
                    + LEN
                    + completed.len() as u64 * OP_ID
                    + LEN
                    + completed_serialized.len() as u64 * OP_ID
                    + LEN
                    + async_watermarks.len() as u64 * (MACHINE_ID + 8)
            }
            Msg::Leave { machine: _ } => MACHINE_ID,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::args;

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = Msg::BeginSync {
            round: 3,
            order: vec![MachineId::new(0), MachineId::new(1)],
        };
        assert_eq!(m, m.clone());
        let o = Msg::Ops {
            round: 3,
            machine: MachineId::new(1),
            ops: Arc::new(vec![WireEnvelope {
                id: OpId::new(MachineId::new(1), 0),
                op: WireOp::Shared(SharedOp::primitive(
                    ObjectId::new(MachineId::new(0), 0),
                    "f",
                    args![1],
                )),
            }]),
            asyncs: Arc::new(vec![]),
        };
        assert_eq!(o, o.clone());
        assert_ne!(m, o);
    }

    #[test]
    fn wire_create_roundtrips_fields() {
        let w = WireOp::Create {
            object: ObjectId::new(MachineId::new(2), 5),
            type_name: "Sudoku".into(),
            init: Value::from(1),
        };
        let (object, type_name, init) = w.as_create().expect("is a Create");
        assert_eq!(object.creator(), MachineId::new(2));
        assert_eq!(type_name, "Sudoku");
        assert_eq!(init, &Value::from(1));
        assert!(w.as_shared().is_none());
    }

    #[test]
    fn wire_size_scales_with_batch_contents() {
        let env = |seq| WireEnvelope {
            id: OpId::new(MachineId::new(1), seq),
            op: WireOp::Shared(SharedOp::primitive(
                ObjectId::new(MachineId::new(0), 0),
                "add",
                args![1],
            )),
        };
        let empty = Msg::Ops {
            round: 1,
            machine: MachineId::new(1),
            ops: Arc::new(vec![]),
            asyncs: Arc::new(vec![]),
        };
        let one = Msg::Ops {
            round: 1,
            machine: MachineId::new(1),
            ops: Arc::new(vec![env(0)]),
            asyncs: Arc::new(vec![]),
        };
        let two = Msg::Ops {
            round: 1,
            machine: MachineId::new(1),
            ops: Arc::new(vec![env(0), env(1)]),
            asyncs: Arc::new(vec![]),
        };
        assert!(empty.wire_size() < one.wire_size());
        assert_eq!(
            two.wire_size() - one.wire_size(),
            one.wire_size() - empty.wire_size(),
            "each identical envelope adds the same number of bytes"
        );
        // A longer method name costs exactly its extra UTF-8 bytes.
        let short = WireOp::Shared(SharedOp::primitive(
            ObjectId::new(MachineId::new(0), 0),
            "f",
            args![],
        ));
        let long = WireOp::Shared(SharedOp::primitive(
            ObjectId::new(MachineId::new(0), 0),
            "frobnicate",
            args![],
        ));
        assert_eq!(
            long.wire_size() - short.wire_size(),
            "frobnicate".len() as u64 - 1
        );
    }

    #[test]
    fn wire_size_covers_every_message_variant() {
        let machine = MachineId::new(3);
        let msgs = vec![
            Msg::BeginSync {
                round: 1,
                order: vec![machine],
            },
            Msg::Ops {
                round: 1,
                machine,
                ops: Arc::new(vec![]),
                asyncs: Arc::new(vec![(
                    0,
                    WireEnvelope {
                        id: OpId::new(machine, 0),
                        op: WireOp::Shared(SharedOp::primitive(
                            ObjectId::new(machine, 0),
                            "f",
                            args![],
                        )),
                    },
                )]),
            },
            Msg::AsyncOp {
                aseq: 0,
                env: WireEnvelope {
                    id: OpId::new(machine, 1),
                    op: WireOp::Shared(SharedOp::primitive(
                        ObjectId::new(machine, 0),
                        "g",
                        args![1],
                    )),
                },
            },
            Msg::FlushDone {
                round: 1,
                machine,
                count: 0,
            },
            Msg::BeginApply {
                round: 1,
                counts: vec![(machine, 2)],
            },
            Msg::OpsRequest { round: 1 },
            Msg::Ack { round: 1, machine },
            Msg::SyncComplete { round: 1 },
            Msg::RoundUpdate {
                round: 1,
                removed: vec![machine],
            },
            Msg::Restart,
            Msg::MasterCandidate {
                machine,
                last_round: 0,
            },
            Msg::MasterHeartbeat,
            Msg::JoinRequest { machine },
            Msg::JoinInfo {
                catalog: vec![ObjectInit {
                    id: ObjectId::new(machine, 0),
                    type_name: "Counter".into(),
                    state: Value::from(0),
                }],
                completed: vec![OpId::new(machine, 0)],
                completed_serialized: vec![OpId::new(machine, 0)],
                async_watermarks: vec![(machine, 3)],
            },
            Msg::JoinReady { machine },
            Msg::Leave { machine },
        ];
        for m in msgs {
            assert!(m.wire_size() >= 1, "{m:?} has at least its tag byte");
        }
    }

    #[test]
    fn wire_shared_accessor_mirrors_create_accessor() {
        let op = SharedOp::primitive(ObjectId::new(MachineId::new(0), 0), "f", args![1]);
        let w = WireOp::Shared(op.clone());
        assert_eq!(w.as_shared(), Some(&op));
        assert!(w.as_create().is_none());
    }
}
