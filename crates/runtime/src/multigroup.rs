//! Multi-group synchronization: the §4 round protocol instantiated **once
//! per sync group** instead of once per cluster.
//!
//! PR 8's validated [`ShardPlan`]s prove which object components never
//! interfere; each `(type, component)` pair becomes a **sync group** with
//! its own complete protocol instance — per-group master, round counter,
//! flush batches, election watchdog and membership epoch. A node hosts one
//! full [`Machine`] per group it participates in, wrapped in a
//! [`MultiMachine`] actor that:
//!
//! * routes every issued operation through the [`ShardRouter`] to its
//!   group's round (the hybrid async-commit path included);
//! * namespaces wire messages with a [`GroupId`] tag ([`GMsg::Inner`]) and
//!   re-encodes timer tags so per-group timers never alias;
//! * translates between *node* ids (the outer mesh) and per-group
//!   *virtual* machine ids (`vid = ((group + 1) << 16) | node`), so the
//!   inner role machines run unmodified;
//! * serializes the rare `Cross`-routed operations through a
//!   **coordinated round** (below).
//!
//! # The coordinated cross-group round
//!
//! A `Cross`-routed operation has no single group that can serialize it.
//! The coordinator node sequences such operations one at a time: it
//! assigns a global `xid` and issues one identical
//! [`WireOp::CrossMarker`] carrying the payload into *every* involved
//! group's round. Markers are store no-ops; a marker's position in its
//! group's commit order is the **deterministic interleaving point** both
//! masters implicitly agreed on by serializing it. From the moment a
//! group commits its marker until the whole coordinated round resolves
//! locally, the wrapper *fences* that group — every inbound message and
//! timer is buffered, so no operation can slip past the agreed point on
//! one node but not another. Once every involved hosted group has
//! committed its marker, the wrapper merges the involved groups'
//! committed copies of the touched objects (each group contributes the
//! top-level fields its component owns), executes the payload once per
//! involved group on the identical merged pre-state, writes the result
//! back, rebuilds each group's guess, releases the fences and replays
//! the buffered events in arrival order.
//!
//! Two freedoms keep this deadlock-free: the coordinator keeps at most
//! one cross operation in flight (markers therefore commit in `xid`
//! order within every group), and it only issues markers after the
//! payload's objects have committed in every involved group locally (so
//! a marker can never be serialized ahead of its object's `Create`).
//!
//! # Soundness envelope
//!
//! Group state is replicated per group: group `g`'s copy of a foreign
//! component is stale-but-deterministic, and merged reads/writes always
//! attribute a component's fields to the group that owns it. Cross
//! operations require the involved types' hosting to be *cross-closed*:
//! every node hosting one involved group hosts them all (full-overlap
//! clusters trivially qualify; the partitioned bench topology issues no
//! cross operations).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use guesstimate_core::{
    paths::Seg, value_digest, CompletionFn, ExecError, GState, MachineId, ObjectId, OpRegistry,
    ShardId, ShardPlan, SharedOp, Value,
};
use guesstimate_net::{Action, Actor, Channel, Ctx, LatencyModel, NetConfig, SimNet, ThreadedNet};
use guesstimate_telemetry::Telemetry;

use crate::config::MachineConfig;
use crate::machine::Machine;
use crate::message::{Msg, WireOp};
use crate::shard::ShardRouter;

/// Index of a sync group: one per `(type, component)` pair of the
/// installed [`ShardPlan`], in deterministic plan order.
pub type GroupId = u32;

/// Bits of the virtual machine id that carry the node index.
const NODE_BITS: u32 = 16;
/// Bits of an outer timer tag reserved for the group field (top bits).
const TAG_GROUP_SHIFT: u32 = 59;

/// The virtual machine id of `node`'s protocol instance in `group`.
///
/// Group `g` occupies id slot `g + 1`, so virtual ids never collide with
/// raw node ids (slot 0) and each group's id space preserves the nodes'
/// relative order — the master-election and commit-order tie-breaks
/// inside a group behave exactly as in a single-group cluster.
pub fn vid(node: MachineId, group: GroupId) -> MachineId {
    debug_assert!(node.index() < (1 << NODE_BITS));
    MachineId::new(((group + 1) << NODE_BITS) | node.index())
}

/// The node index of a virtual machine id (inverse of [`vid`]).
pub fn node_of(v: MachineId) -> MachineId {
    MachineId::new(v.index() & ((1 << NODE_BITS) - 1))
}

/// Encodes a group-scoped timer tag: the inner `(kind, round)` tag keeps
/// its low 59 bits, the group lands in the top bits (group 0 encodes as
/// 1, so un-grouped tags are distinguishable).
fn outer_tag(group: GroupId, inner: u64) -> u64 {
    debug_assert!(inner < (1u64 << TAG_GROUP_SHIFT), "inner tag overflows");
    debug_assert!(u64::from(group) + 1 < (1 << (64 - TAG_GROUP_SHIFT)));
    inner | ((u64::from(group) + 1) << TAG_GROUP_SHIFT)
}

/// Decodes an outer timer tag into `(group, inner tag)`.
fn split_tag(tag: u64) -> Option<(GroupId, u64)> {
    let slot = tag >> TAG_GROUP_SHIFT;
    if slot == 0 {
        return None;
    }
    Some(((slot - 1) as GroupId, tag & ((1u64 << TAG_GROUP_SHIFT) - 1)))
}

/// One sync group: a component of a type, with its display label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// The owning type.
    pub type_name: String,
    /// Component index within the type's [`ShardPlan`] entry.
    pub component: u32,
    /// Render: `"Type:component"` — the telemetry group label.
    pub label: String,
}

/// The dense [`GroupId`] space derived from a [`ShardPlan`]: every
/// `(type, component)` pair of the plan, in plan (BTreeMap) order.
#[derive(Debug, Clone)]
pub struct GroupTable {
    plan: Arc<ShardPlan>,
    groups: Vec<GroupSpec>,
    by_key: BTreeMap<(String, u32), GroupId>,
}

impl GroupTable {
    /// Enumerates the plan's components into dense group ids.
    pub fn from_plan(plan: Arc<ShardPlan>) -> Self {
        let mut groups = Vec::new();
        let mut by_key = BTreeMap::new();
        for (type_name, tp) in &plan.types {
            for component in 0..tp.components.len() as u32 {
                let g = groups.len() as GroupId;
                groups.push(GroupSpec {
                    type_name: type_name.clone(),
                    component,
                    label: format!("{type_name}:{component}"),
                });
                by_key.insert((type_name.clone(), component), g);
            }
        }
        assert!(!groups.is_empty(), "shard plan has no components");
        GroupTable {
            plan,
            groups,
            by_key,
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &Arc<ShardPlan> {
        &self.plan
    }

    /// Number of sync groups.
    pub fn num_groups(&self) -> u32 {
        self.groups.len() as u32
    }

    /// The group's spec (panics on out-of-range ids).
    pub fn group(&self, g: GroupId) -> &GroupSpec {
        &self.groups[g as usize]
    }

    /// The group's telemetry label.
    pub fn label(&self, g: GroupId) -> &str {
        &self.groups[g as usize].label
    }

    /// All groups owned by one type, ascending.
    pub fn groups_of_type(&self, type_name: &str) -> Vec<GroupId> {
        self.by_key
            .range((type_name.to_owned(), 0)..=(type_name.to_owned(), u32::MAX))
            .map(|(_, g)| *g)
            .collect()
    }

    /// Routes a shared operation: its group, or the involved group set of
    /// a cross-routed operation (the union of the touched types' groups;
    /// every group if no type resolves).
    pub fn route(&self, op: &SharedOp, type_of: &dyn Fn(ObjectId) -> Option<String>) -> GroupRoute {
        let wire = WireOp::Shared(op.clone());
        let shard = ShardRouter::new(Arc::clone(&self.plan)).shard_of(&wire, &type_of);
        match shard {
            ShardId::Local {
                type_name,
                component,
                ..
            } => match self.by_key.get(&(type_name, component)) {
                Some(g) => GroupRoute::Local(*g),
                None => GroupRoute::Cross(self.involved_groups(op, type_of)),
            },
            ShardId::Cross => GroupRoute::Cross(self.involved_groups(op, type_of)),
        }
    }

    /// The involved group set of a cross-routed operation.
    fn involved_groups(
        &self,
        op: &SharedOp,
        type_of: &dyn Fn(ObjectId) -> Option<String>,
    ) -> Vec<GroupId> {
        let mut involved = BTreeSet::new();
        for obj in op.objects_touched() {
            if let Some(ty) = type_of(obj) {
                involved.extend(self.groups_of_type(&ty));
            }
        }
        if involved.is_empty() {
            (0..self.num_groups()).collect()
        } else {
            involved.into_iter().collect()
        }
    }

    /// The group owning a top-level snapshot field of `type_name`, used
    /// by merged reads and coordinated-round write-backs: the first
    /// component whose prefixes cover the field (a literal first segment
    /// equal to the field, or a key/wildcard first segment).
    fn owner_of_field(&self, type_name: &str, field: &str) -> Option<GroupId> {
        let tp = self.plan.types.get(type_name)?;
        for (c, comp) in tp.components.iter().enumerate() {
            for prefix in &comp.prefixes {
                let covers = match prefix.segs().first() {
                    None => true, // root prefix owns everything
                    Some(Seg::Lit(s)) => s == field,
                    Some(Seg::Key(_)) | Some(Seg::Any) => true,
                };
                if covers {
                    return self.by_key.get(&(type_name.to_owned(), c as u32)).copied();
                }
            }
        }
        None
    }
}

/// Where an issued operation goes in multi-group mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupRoute {
    /// Serialized by one group's round.
    Local(GroupId),
    /// Needs a coordinated round across the listed groups.
    Cross(Vec<GroupId>),
}

/// Outcome of [`MultiMachine::issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueOutcome {
    /// Routed to one group; the rule-R2 issue-time boolean.
    Local(bool),
    /// Cross-routed: submitted to the coordinator. The result arrives via
    /// the completion callback when the coordinated round resolves here.
    CrossPending,
}

/// The outer wire message: a group-tagged inner protocol message, or a
/// cross-routed submission traveling to the coordinator.
#[derive(Debug, Clone)]
pub enum GMsg {
    /// A §4 protocol message of one sync group.
    Inner {
        /// The group whose protocol instance this message belongs to.
        group: GroupId,
        /// The unmodified inner message.
        msg: Msg,
    },
    /// A cross-routed operation on its way to the coordinator node.
    CrossSubmit {
        /// Submitting node.
        origin: MachineId,
        /// Origin-local submission sequence number.
        oseq: u64,
        /// Involved groups, computed at the origin (it knows the types).
        groups: Vec<GroupId>,
        /// The payload.
        op: SharedOp,
    },
}

/// A buffered event of a fenced group, replayed in arrival order at
/// resolution.
#[derive(Debug, Clone)]
enum Buffered {
    Message {
        from: MachineId,
        channel: Channel,
        msg: Msg,
    },
    Timer {
        inner_tag: u64,
    },
}

/// One committed-but-unresolved cross marker.
#[derive(Debug, Clone)]
struct CrossCommit {
    xid: u64,
    origin: MachineId,
    oseq: u64,
    groups: Vec<GroupId>,
    op: SharedOp,
}

/// Coordinator-only sequencing state (lives on the coordinator node).
#[derive(Default)]
struct Coordinator {
    queue: VecDeque<(MachineId, u64, Vec<GroupId>, SharedOp)>,
    in_flight: Option<u64>,
    next_xid: u64,
}

/// One node of a multi-group cluster: a full [`Machine`] per hosted sync
/// group behind a single mesh [`Actor`]. See the module docs.
pub struct MultiMachine {
    node: MachineId,
    table: Arc<GroupTable>,
    machines: BTreeMap<GroupId, Machine>,
    /// Fenced groups' buffered events (presence in `cross_q` = fenced).
    buffered: BTreeMap<GroupId, VecDeque<Buffered>>,
    /// Per-group committed, unresolved markers in commit (= `xid`) order.
    cross_q: BTreeMap<GroupId, VecDeque<CrossCommit>>,
    coordinator_node: MachineId,
    coordinator: Option<Coordinator>,
    cross_completions: BTreeMap<u64, CompletionFn>,
    oseq_next: u64,
    obj_seq: u64,
    telemetry: Telemetry,
    /// Cross operations resolved here (each exactly once).
    cross_resolved: u64,
    /// Rolling digest over `(xid, result)` of resolved cross operations —
    /// the model checker's cross-round oracle surface.
    cross_digest: u64,
}

impl std::fmt::Debug for MultiMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiMachine")
            .field("node", &self.node)
            .field("groups", &self.machines.keys().collect::<Vec<_>>())
            .field("fenced", &self.frozen_groups())
            .finish()
    }
}

impl MultiMachine {
    /// Builds one node hosting `hosted` groups. `masters` names each
    /// group's master *node*; `coordinator_node` sequences cross
    /// operations cluster-wide (conventionally the lowest node).
    pub fn new(
        node: MachineId,
        table: Arc<GroupTable>,
        hosted: &[GroupId],
        masters: &BTreeMap<GroupId, MachineId>,
        coordinator_node: MachineId,
        registry: Arc<OpRegistry>,
        cfg: MachineConfig,
    ) -> Self {
        let mut machines = BTreeMap::new();
        for &g in hosted {
            assert!(g < table.num_groups(), "group {g} out of range");
            let id = vid(node, g);
            let master_node = *masters
                .get(&g)
                .unwrap_or_else(|| panic!("group {g} has no master"));
            let m = if master_node == node {
                Machine::new_master(id, Arc::clone(&registry), cfg.clone())
            } else {
                Machine::new_member(id, Arc::clone(&registry), cfg.clone())
            };
            machines.insert(g, m);
        }
        let coordinator = (node == coordinator_node).then(Coordinator::default);
        MultiMachine {
            node,
            table,
            machines,
            buffered: BTreeMap::new(),
            cross_q: BTreeMap::new(),
            coordinator_node,
            coordinator,
            cross_completions: BTreeMap::new(),
            oseq_next: 0,
            obj_seq: 0,
            telemetry: Telemetry::noop(),
            cross_resolved: 0,
            cross_digest: 0,
        }
    }

    /// Installs a telemetry handle; each hosted group's machine records
    /// through a group-labeled derivation of it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (g, m) in &mut self.machines {
            m.set_telemetry(telemetry.for_group(self.table.label(*g)));
        }
        self.telemetry = telemetry;
    }

    /// This node's outer mesh id.
    pub fn node(&self) -> MachineId {
        self.node
    }

    /// The group table this node was built from.
    pub fn table(&self) -> &Arc<GroupTable> {
        &self.table
    }

    /// Hosted group ids, ascending.
    pub fn group_ids(&self) -> Vec<GroupId> {
        self.machines.keys().copied().collect()
    }

    /// One hosted group's protocol instance.
    pub fn group(&self, g: GroupId) -> Option<&Machine> {
        self.machines.get(&g)
    }

    /// Mutable access to one hosted group's protocol instance (tests,
    /// fault injection). Does **not** run the post-dispatch pipeline; use
    /// [`MultiMachine::with_group`] for anything that emits actions.
    pub fn group_mut(&mut self, g: GroupId) -> Option<&mut Machine> {
        self.machines.get_mut(&g)
    }

    /// Groups currently fenced by an unresolved coordinated round.
    pub fn frozen_groups(&self) -> Vec<GroupId> {
        self.cross_q
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(g, _)| *g)
            .collect()
    }

    /// Cross operations resolved on this node.
    pub fn cross_resolved(&self) -> u64 {
        self.cross_resolved
    }

    /// Rolling `(xid, result)` digest of resolved cross operations; equal
    /// on every node that hosts the involved groups.
    pub fn cross_digest(&self) -> u64 {
        self.cross_digest
    }

    /// True once every hosted group's machine is admitted.
    pub fn all_joined(&self) -> bool {
        self.machines.values().all(|m| m.is_joined())
    }

    /// Total committed operations across hosted groups (serialized +
    /// async), the bench's aggregate-throughput surface.
    pub fn committed_total(&self) -> u64 {
        self.machines
            .values()
            .map(|m| m.completed_len() as u64)
            .sum()
    }

    fn fenced(&self, g: GroupId) -> bool {
        self.cross_q.get(&g).is_some_and(|q| !q.is_empty())
    }

    /// Resolves an object's type from any hosted group's catalog.
    fn type_of(&self, id: ObjectId) -> Option<String> {
        self.machines
            .values()
            .find_map(|m| m.object_type(id).map(str::to_owned))
    }

    /// Runs `f` against one hosted group's machine with a synthesized
    /// inner context, then translates the produced actions onto the outer
    /// mesh and runs the post-dispatch pipeline (cross-commit draining,
    /// fencing, resolution, buffered replay).
    pub fn with_group<R>(
        &mut self,
        g: GroupId,
        ctx: &mut Ctx<'_, GMsg>,
        f: impl FnOnce(&mut Machine, &mut Ctx<'_, Msg>) -> R,
    ) -> Option<R> {
        let now = ctx.now();
        let m = self.machines.get_mut(&g)?;
        let mut actions = Vec::new();
        let r = {
            let mut ictx = Ctx::new(now, m.id(), &mut actions);
            f(m, &mut ictx)
        };
        let commits = m.take_cross_commits();
        self.emit(g, actions, ctx);
        self.enqueue_cross_commits(g, commits);
        self.pump(ctx);
        Some(r)
    }

    // ------------------------------------------------------------------
    // The paper's API, lifted to multi-group
    // ------------------------------------------------------------------

    /// Creates a shared object under one logical id, fanned out to every
    /// hosted group (each group's copy commits through that group's own
    /// round; merged reads stitch the components back together).
    pub fn create_instance<T: GState>(&mut self, init: T, ctx: &mut Ctx<'_, GMsg>) -> ObjectId {
        let object = ObjectId::new(vid(self.node, self.table.num_groups()), self.obj_seq);
        self.obj_seq += 1;
        let groups = self.group_ids();
        for g in groups {
            self.with_group(g, ctx, |m, _| m.create_instance_as(object, init.clone()));
        }
        object
    }

    /// Issues a shared operation, routing it through the shard plan to
    /// its group's round — or to the coordinator for a cross-group
    /// coordinated round. The hybrid async-commit path applies within the
    /// target group exactly as in single-group mode.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects or unregistered methods.
    ///
    /// # Panics
    ///
    /// Panics if the operation routes to a group this node does not host
    /// (workloads must be partitioned along the hosting topology).
    pub fn issue(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        ctx: &mut Ctx<'_, GMsg>,
    ) -> Result<IssueOutcome, ExecError> {
        let type_of = |id: ObjectId| self.type_of(id);
        match self.table.route(&op, &type_of) {
            GroupRoute::Local(g) => {
                assert!(
                    self.machines.contains_key(&g),
                    "op routed to group {g} ({}) not hosted on node {}",
                    self.table.label(g),
                    self.node
                );
                let r = self
                    .with_group(g, ctx, |m, ictx| m.issue_hybrid(op, completion, ictx))
                    .expect("hosted group");
                r.map(IssueOutcome::Local)
            }
            GroupRoute::Cross(groups) => {
                let oseq = self.oseq_next;
                self.oseq_next += 1;
                if let Some(c) = completion {
                    self.cross_completions.insert(oseq, c);
                }
                let submit = GMsg::CrossSubmit {
                    origin: self.node,
                    oseq,
                    groups,
                    op,
                };
                if self.node == self.coordinator_node {
                    self.accept_cross(submit);
                    self.pump(ctx);
                } else {
                    ctx.send(self.coordinator_node, Channel::Signals, submit);
                }
                Ok(IssueOutcome::CrossPending)
            }
        }
    }

    /// Merged read of a shared object's guesstimated state: each of the
    /// type's hosted groups contributes the top-level fields its
    /// component owns. Objects of single-group types read directly.
    pub fn read<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let merged = self.merged_value(id, |m, id| m.guess_object_snapshot(id))?;
        let mut state = T::default();
        state.restore(&merged).ok()?;
        Some(f(&state))
    }

    /// Merged read of the committed state (diagnostics).
    pub fn read_committed<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let merged = self.merged_value(id, |m, id| m.committed_object_snapshot(id))?;
        let mut state = T::default();
        state.restore(&merged).ok()?;
        Some(f(&state))
    }

    /// Digest over the merged committed state of every known object — the
    /// cross-node convergence oracle surface (agrees across nodes hosting
    /// the same groups once quiescent).
    pub fn merged_committed_digest(&self) -> u64 {
        let mut objects = BTreeSet::new();
        for m in self.machines.values() {
            objects.extend(m.available_objects().into_iter().map(|(id, _)| id));
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in objects {
            if let Some(v) = self.merged_value(id, |m, id| m.committed_object_snapshot(id)) {
                h = h
                    .rotate_left(13)
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(value_digest(&v));
            }
        }
        h
    }

    /// Merges one object's per-group snapshots by component-field
    /// attribution: field `f` comes from the group whose component owns
    /// `f`, falling back to the lowest hosted group's copy.
    fn merged_value(
        &self,
        id: ObjectId,
        snap: impl Fn(&Machine, ObjectId) -> Option<Value>,
    ) -> Option<Value> {
        let type_name = self.type_of(id)?;
        let groups: Vec<GroupId> = self
            .table
            .groups_of_type(&type_name)
            .into_iter()
            .filter(|g| self.machines.contains_key(g))
            .collect();
        let snaps: Vec<(GroupId, Value)> = groups
            .iter()
            .filter_map(|g| snap(&self.machines[g], id).map(|v| (*g, v)))
            .collect();
        let (_, primary) = snaps.first()?;
        if snaps.len() == 1 {
            return Some(primary.clone());
        }
        let Value::Map(primary_map) = primary else {
            // Non-map snapshots only arise for single-component types.
            return Some(primary.clone());
        };
        let mut fields: BTreeSet<String> = primary_map.keys().cloned().collect();
        for (_, v) in &snaps {
            if let Value::Map(m) = v {
                fields.extend(m.keys().cloned());
            }
        }
        let mut merged = BTreeMap::new();
        for field in fields {
            let owner = self.table.owner_of_field(&type_name, &field);
            let source = owner
                .and_then(|g| snaps.iter().find(|(sg, _)| *sg == g))
                .map(|(_, v)| v)
                .unwrap_or(primary);
            if let Some(v) = source.field(&field) {
                merged.insert(field, v.clone());
            }
        }
        Some(Value::Map(merged))
    }

    // ------------------------------------------------------------------
    // Cross-group coordinated rounds
    // ------------------------------------------------------------------

    fn accept_cross(&mut self, submit: GMsg) {
        let GMsg::CrossSubmit {
            origin,
            oseq,
            groups,
            op,
        } = submit
        else {
            unreachable!("accept_cross takes CrossSubmit");
        };
        let coord = self
            .coordinator
            .as_mut()
            .expect("cross submission reached a non-coordinator node");
        coord.queue.push_back((origin, oseq, groups, op));
    }

    /// Coordinator: launch the next queued cross operation if none is in
    /// flight and its objects have committed in every involved group here
    /// (which orders every marker after its objects' `Create`s in every
    /// group's total order).
    fn service_cross_queue(&mut self) {
        let Some(coord) = self.coordinator.as_mut() else {
            return;
        };
        if coord.in_flight.is_some() {
            return;
        }
        let Some((_, _, groups, op)) = coord.queue.front() else {
            return;
        };
        let groups = groups.clone();
        let objects = op.objects_touched();
        for &g in &groups {
            let Some(m) = self.machines.get(&g) else {
                panic!(
                    "coordinator node {} does not host involved group {g}; \
                     cross operations require cross-closed hosting",
                    self.node
                );
            };
            if objects
                .iter()
                .any(|o| m.committed_object_snapshot(*o).is_none())
            {
                return; // objects not committed everywhere yet; retry later
            }
        }
        let coord = self.coordinator.as_mut().expect("checked above");
        let (origin, oseq, groups, op) = coord.queue.pop_front().expect("checked above");
        let xid = coord.next_xid;
        coord.next_xid += 1;
        coord.in_flight = Some(xid);
        for &g in &groups {
            let m = self.machines.get_mut(&g).expect("checked above");
            m.issue_cross_marker(xid, origin, oseq, groups.clone(), op.clone());
        }
    }

    fn enqueue_cross_commits(&mut self, g: GroupId, commits: Vec<crate::message::WireEnvelope>) {
        for env in commits {
            let WireOp::CrossMarker {
                xid,
                origin,
                oseq,
                groups,
                op,
            } = env.op
            else {
                debug_assert!(false, "non-marker in cross commits");
                continue;
            };
            self.cross_q.entry(g).or_default().push_back(CrossCommit {
                xid,
                origin,
                oseq,
                groups,
                op,
            });
        }
    }

    /// Resolves every currently-resolvable coordinated round; returns
    /// true if any resolved.
    fn try_resolve(&mut self) -> bool {
        let mut resolved_any = false;
        loop {
            // The minimum xid among queue fronts is the only candidate:
            // markers commit in xid order within every group.
            let candidate = self
                .cross_q
                .values()
                .filter_map(|q| q.front())
                .min_by_key(|c| c.xid)
                .cloned();
            let Some(c) = candidate else { break };
            let involved_hosted: Vec<GroupId> = c
                .groups
                .iter()
                .copied()
                .filter(|g| self.machines.contains_key(g))
                .collect();
            debug_assert!(
                involved_hosted.len() == c.groups.len() || involved_hosted.is_empty(),
                "cross operation {} spans groups with non-cross-closed hosting on node {}",
                c.xid,
                self.node
            );
            let ready = involved_hosted.iter().all(|g| {
                self.cross_q
                    .get(g)
                    .and_then(|q| q.front())
                    .is_some_and(|front| front.xid == c.xid)
            });
            if !ready {
                break;
            }
            for g in &involved_hosted {
                let q = self.cross_q.get_mut(g).expect("front checked");
                let popped = q.pop_front().expect("front checked");
                debug_assert_eq!(popped.xid, c.xid);
            }
            self.resolve(&c, &involved_hosted);
            resolved_any = true;
        }
        resolved_any
    }

    /// Executes one coordinated round at its agreed interleaving point:
    /// merge, execute per involved group, write back, rebuild guesses.
    fn resolve(&mut self, c: &CrossCommit, involved_hosted: &[GroupId]) {
        // Merge each touched object's committed copies and install the
        // merged pre-state into every involved group.
        for obj in c.op.objects_touched() {
            let Some(merged) = self.merged_value(obj, |m, id| m.committed_object_snapshot(id))
            else {
                continue;
            };
            for g in involved_hosted {
                let m = self.machines.get_mut(g).expect("hosted");
                m.overwrite_committed_object(obj, &merged);
            }
        }
        // Execute the payload once per involved group on the identical
        // merged pre-state: deterministic ops give identical post-states
        // and an identical boolean on every group and every node.
        let mut result = false;
        for g in involved_hosted {
            let m = self.machines.get_mut(g).expect("hosted");
            result = m.execute_cross_payload(&c.op);
            m.rebuild_guess_from_committed();
        }
        self.cross_resolved += 1;
        self.cross_digest = self
            .cross_digest
            .rotate_left(7)
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(c.xid.wrapping_mul(2) + u64::from(result));
        // The resolution is the cross payload's actual commit on this
        // node: account it exactly like a single-group Cross commit site.
        self.telemetry.shard_op("cross");
        self.telemetry.cross_route();
        if c.origin == self.node {
            if let Some(cb) = self.cross_completions.remove(&c.oseq) {
                cb(result);
            }
        }
        if let Some(coord) = self.coordinator.as_mut() {
            if coord.in_flight == Some(c.xid) {
                coord.in_flight = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Event plumbing
    // ------------------------------------------------------------------

    /// Translates one group's inner actions onto the outer mesh.
    fn emit(&mut self, g: GroupId, actions: Vec<Action<Msg>>, ctx: &mut Ctx<'_, GMsg>) {
        for a in actions {
            match a {
                Action::Broadcast(channel, msg) => {
                    ctx.broadcast(channel, GMsg::Inner { group: g, msg });
                }
                Action::Send(to, channel, msg) => {
                    ctx.send(node_of(to), channel, GMsg::Inner { group: g, msg });
                }
                Action::SetTimer { delay, tag } => {
                    ctx.set_timer(delay, outer_tag(g, tag));
                }
            }
        }
    }

    /// Dispatches one event into a group's machine (no fence check).
    fn raw_dispatch(&mut self, g: GroupId, ev: Buffered, ctx: &mut Ctx<'_, GMsg>) {
        let now = ctx.now();
        let Some(m) = self.machines.get_mut(&g) else {
            return;
        };
        let mut actions = Vec::new();
        {
            let mut ictx = Ctx::new(now, m.id(), &mut actions);
            match ev {
                Buffered::Message { from, channel, msg } => {
                    m.on_message(vid(from, g), channel, msg, &mut ictx);
                }
                Buffered::Timer { inner_tag } => m.on_timer(inner_tag, &mut ictx),
            }
        }
        let commits = m.take_cross_commits();
        self.emit(g, actions, ctx);
        self.enqueue_cross_commits(g, commits);
    }

    /// Delivers one external event, respecting the fence.
    fn deliver(&mut self, g: GroupId, ev: Buffered, ctx: &mut Ctx<'_, GMsg>) {
        if self.fenced(g) {
            self.buffered.entry(g).or_default().push_back(ev);
        } else {
            self.raw_dispatch(g, ev, ctx);
        }
        self.pump(ctx);
    }

    /// Fixpoint: resolve coordinated rounds, replay buffered events of
    /// released groups, and service the coordinator queue, until nothing
    /// changes.
    fn pump(&mut self, ctx: &mut Ctx<'_, GMsg>) {
        loop {
            if self.try_resolve() {
                continue;
            }
            self.service_cross_queue();
            // Replay one buffered event of any released group, oldest
            // first per group (ascending group order for determinism).
            let next = self
                .buffered
                .iter()
                .filter(|(g, q)| !q.is_empty() && !self.fenced(**g))
                .map(|(g, _)| *g)
                .next();
            match next {
                Some(g) => {
                    let ev = self
                        .buffered
                        .get_mut(&g)
                        .and_then(|q| q.pop_front())
                        .expect("non-empty checked");
                    self.raw_dispatch(g, ev, ctx);
                }
                None => break,
            }
        }
    }
}

impl Actor for MultiMachine {
    type Msg = GMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GMsg>) {
        let now = ctx.now();
        let groups = self.group_ids();
        for g in groups {
            let m = self.machines.get_mut(&g).expect("hosted");
            let mut actions = Vec::new();
            {
                let mut ictx = Ctx::new(now, m.id(), &mut actions);
                m.on_start(&mut ictx);
            }
            self.emit(g, actions, ctx);
        }
    }

    fn on_message(
        &mut self,
        from: MachineId,
        channel: Channel,
        msg: GMsg,
        ctx: &mut Ctx<'_, GMsg>,
    ) {
        match msg {
            GMsg::Inner { group, msg } => {
                if !self.machines.contains_key(&group) {
                    return; // not hosted here: cheap drop of mesh fan-out
                }
                self.deliver(group, Buffered::Message { from, channel, msg }, ctx);
            }
            submit @ GMsg::CrossSubmit { .. } => {
                self.accept_cross(submit);
                self.pump(ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, GMsg>) {
        let Some((group, inner_tag)) = split_tag(tag) else {
            return;
        };
        if !self.machines.contains_key(&group) {
            return;
        }
        self.deliver(group, Buffered::Timer { inner_tag }, ctx);
    }

    fn msg_size(msg: &GMsg) -> u64 {
        match msg {
            GMsg::Inner { msg, .. } => 4 + msg.wire_size(),
            GMsg::CrossSubmit { groups, op, .. } => {
                4 + 8 + 4 + 4 * groups.len() as u64 + WireOp::Shared(op.clone()).wire_size()
            }
        }
    }

    fn msg_kind(msg: &GMsg) -> &'static str {
        match msg {
            GMsg::Inner { msg, .. } => <Machine as Actor>::msg_kind(msg),
            GMsg::CrossSubmit { .. } => "cross_submit",
        }
    }
}

// ----------------------------------------------------------------------
// Cluster topology + constructors
// ----------------------------------------------------------------------

/// A multi-group cluster's static topology: who hosts what, who masters
/// each group, who coordinates cross operations.
#[derive(Debug, Clone)]
pub struct MultiClusterSpec {
    /// The group space.
    pub table: Arc<GroupTable>,
    /// `hosting[node]` = groups that node hosts.
    pub hosting: Vec<Vec<GroupId>>,
    /// Per-group master node.
    pub masters: BTreeMap<GroupId, MachineId>,
    /// The cross-operation sequencing node.
    pub coordinator: MachineId,
}

impl MultiClusterSpec {
    /// Every node hosts every group; every group's master is node 0 (the
    /// round protocol requires the master to be the lowest member of its
    /// group) and node 0 coordinates cross operations.
    pub fn full_overlap(n: u32, table: Arc<GroupTable>) -> Self {
        assert!(n > 0);
        let all: Vec<GroupId> = (0..table.num_groups()).collect();
        let masters = (0..table.num_groups())
            .map(|g| (g, MachineId::new(0)))
            .collect();
        MultiClusterSpec {
            table,
            hosting: (0..n).map(|_| all.clone()).collect(),
            masters,
            coordinator: MachineId::new(0),
        }
    }

    /// Partitioned hosting: node `i` hosts exactly group `i % G`, so `n`
    /// nodes split into `G` disjoint sub-clusters of `n / G` nodes — the
    /// shard-scaling bench topology (no cross-closed hosting: issue no
    /// cross operations on it). Group `g`'s master is node `g` (the
    /// lowest node hosting it).
    pub fn partitioned(n: u32, table: Arc<GroupTable>) -> Self {
        let num = table.num_groups();
        assert!(n >= num, "need at least one node per group");
        let masters = (0..num).map(|g| (g, MachineId::new(g))).collect();
        MultiClusterSpec {
            table,
            hosting: (0..n).map(|i| vec![i % num]).collect(),
            masters,
            coordinator: MachineId::new(0),
        }
    }

    /// Builds the node `i` wrapper.
    pub fn build_node(
        &self,
        i: u32,
        registry: &Arc<OpRegistry>,
        cfg: &MachineConfig,
    ) -> MultiMachine {
        MultiMachine::new(
            MachineId::new(i),
            Arc::clone(&self.table),
            &self.hosting[i as usize],
            &self.masters,
            self.coordinator,
            Arc::clone(registry),
            cfg.clone(),
        )
    }
}

/// A deterministic multi-group simulation cluster (instrumented).
pub fn multi_sim_cluster(
    spec: &MultiClusterSpec,
    registry: Arc<OpRegistry>,
    cfg: MachineConfig,
    netcfg: NetConfig,
    telemetry: Telemetry,
) -> SimNet<MultiMachine> {
    let mut net = SimNet::new(netcfg);
    for i in 0..spec.hosting.len() as u32 {
        let mut mm = spec.build_node(i, &registry, &cfg);
        mm.set_telemetry(telemetry.clone());
        net.add_machine(MachineId::new(i), mm);
    }
    net
}

/// A real-thread multi-group cluster on [`ThreadedNet`] (instrumented).
pub fn multi_threaded_cluster(
    spec: &MultiClusterSpec,
    registry: Arc<OpRegistry>,
    cfg: MachineConfig,
    latency: LatencyModel,
    seed: u64,
    telemetry: Telemetry,
) -> (
    ThreadedNet<MultiMachine>,
    Vec<guesstimate_net::ThreadedHandle<MultiMachine>>,
) {
    let net = ThreadedNet::new(latency, seed);
    let mut handles = Vec::new();
    for i in 0..spec.hosting.len() as u32 {
        let mut mm = spec.build_node(i, &registry, &cfg);
        mm.set_telemetry(telemetry.clone());
        handles.push(net.add_machine(MachineId::new(i), mm));
    }
    (net, handles)
}

/// Runs a simulated multi-group cluster until every hosted machine of
/// every node has joined its group, or panics at `deadline`.
pub fn run_multi_until_joined(net: &mut SimNet<MultiMachine>, deadline: guesstimate_net::SimTime) {
    while net.now() < deadline {
        let all = net
            .members()
            .iter()
            .all(|id| net.actor(*id).is_some_and(MultiMachine::all_joined));
        if all {
            return;
        }
        if net.step().is_none() {
            break;
        }
    }
    let all = net
        .members()
        .iter()
        .all(|id| net.actor(*id).is_some_and(MultiMachine::all_joined));
    assert!(all, "multi-group cluster failed to join by {deadline:?}");
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicI64, Ordering};

    use guesstimate_core::{
        args, ComponentPlan, GState, PathPattern, RestoreError, Routing, TypePlan,
    };
    use guesstimate_net::SimTime;

    use super::*;

    /// Two independent fields plus one method spanning both: the minimal
    /// two-component type.
    #[derive(Clone, Default, Debug, PartialEq)]
    struct Pair {
        a: i64,
        b: i64,
    }

    impl GState for Pair {
        const TYPE_NAME: &'static str = "Pair";
        fn snapshot(&self) -> Value {
            let mut m = BTreeMap::new();
            m.insert("a".to_owned(), Value::from(self.a));
            m.insert("b".to_owned(), Value::from(self.b));
            Value::Map(m)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            let Value::Map(m) = v else {
                return Err(RestoreError::shape("map"));
            };
            self.a = m.get("a").and_then(Value::as_i64).unwrap_or(0);
            self.b = m.get("b").and_then(Value::as_i64).unwrap_or(0);
            Ok(())
        }
    }

    fn pair_registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Pair>();
        r.register_method::<Pair>("bump_a", |p, a| {
            let Some(d) = a.i64(0) else { return false };
            p.a += d;
            true
        });
        r.register_method::<Pair>("bump_b", |p, a| {
            let Some(d) = a.i64(0) else { return false };
            p.b += d;
            true
        });
        r.register_method::<Pair>("mix", |p, a| {
            let Some(d) = a.i64(0) else { return false };
            p.a += d;
            p.b += p.a;
            true
        });
        r
    }

    fn pair_plan() -> Arc<ShardPlan> {
        let mut tp = TypePlan {
            components: vec![
                ComponentPlan {
                    prefixes: vec![PathPattern::parse("a").unwrap()],
                    keyed: false,
                },
                ComponentPlan {
                    prefixes: vec![PathPattern::parse("b").unwrap()],
                    keyed: false,
                },
            ],
            routes: BTreeMap::new(),
        };
        tp.routes.insert(
            "bump_a".to_owned(),
            Routing::Local {
                component: 0,
                key_arg: None,
            },
        );
        tp.routes.insert(
            "bump_b".to_owned(),
            Routing::Local {
                component: 1,
                key_arg: None,
            },
        );
        tp.routes.insert("mix".to_owned(), Routing::CrossShard);
        let mut plan = ShardPlan::new();
        plan.types.insert("Pair".to_owned(), tp);
        Arc::new(plan)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(50))
            .with_shard_plan(pair_plan())
    }

    fn cluster(n: u32) -> (SimNet<MultiMachine>, MultiClusterSpec) {
        let table = Arc::new(GroupTable::from_plan(pair_plan()));
        let spec = MultiClusterSpec::full_overlap(n, table);
        let net = multi_sim_cluster(
            &spec,
            Arc::new(pair_registry()),
            cfg(),
            NetConfig::lan(u64::from(n)),
            Telemetry::noop(),
        );
        (net, spec)
    }

    #[test]
    fn vid_and_tag_round_trip() {
        let n = MachineId::new(7);
        assert_eq!(node_of(vid(n, 0)), n);
        assert_eq!(node_of(vid(n, 5)), n);
        assert_ne!(vid(n, 0), vid(n, 1));
        let inner = crate::roles::tag::encode(crate::roles::tag::MASTER_TICK, 42);
        let outer = outer_tag(3, inner);
        assert_eq!(split_tag(outer), Some((3, inner)));
        assert_eq!(split_tag(inner), None);
    }

    #[test]
    fn table_enumerates_components_and_routes() {
        let table = GroupTable::from_plan(pair_plan());
        assert_eq!(table.num_groups(), 2);
        assert_eq!(table.label(0), "Pair:0");
        assert_eq!(table.label(1), "Pair:1");
        assert_eq!(table.groups_of_type("Pair"), vec![0, 1]);
        let obj = ObjectId::new(MachineId::new(99), 0);
        let type_of = |_: ObjectId| Some("Pair".to_owned());
        assert_eq!(
            table.route(&SharedOp::primitive(obj, "bump_a", args![1]), &type_of),
            GroupRoute::Local(0)
        );
        assert_eq!(
            table.route(&SharedOp::primitive(obj, "bump_b", args![1]), &type_of),
            GroupRoute::Local(1)
        );
        assert_eq!(
            table.route(&SharedOp::primitive(obj, "mix", args![1]), &type_of),
            GroupRoute::Cross(vec![0, 1])
        );
    }

    #[test]
    fn local_ops_commit_through_their_own_groups() {
        let (mut net, _) = cluster(3);
        run_multi_until_joined(&mut net, SimTime::from_secs(10));
        let n0 = MachineId::new(0);
        let mut obj = None;
        net.call(n0, |mm, ctx| {
            obj = Some(mm.create_instance(Pair::default(), ctx));
        });
        let obj = obj.unwrap();
        net.run_until(net.now() + SimTime::from_secs(2));

        net.call(MachineId::new(1), |mm, ctx| {
            let r = mm
                .issue(SharedOp::primitive(obj, "bump_a", args![1]), None, ctx)
                .unwrap();
            assert_eq!(r, IssueOutcome::Local(true));
        });
        net.call(MachineId::new(2), |mm, ctx| {
            let r = mm
                .issue(SharedOp::primitive(obj, "bump_b", args![2]), None, ctx)
                .unwrap();
            assert_eq!(r, IssueOutcome::Local(true));
        });
        net.run_until(net.now() + SimTime::from_secs(2));

        for i in 0..3 {
            let mm = net.actor(MachineId::new(i)).unwrap();
            assert_eq!(
                mm.read_committed::<Pair, _>(obj, |p| (p.a, p.b)),
                Some((1, 2)),
                "node {i}"
            );
            assert_eq!(mm.frozen_groups(), Vec::<GroupId>::new());
        }
        let d0 = net.actor(n0).unwrap().merged_committed_digest();
        for i in 1..3 {
            assert_eq!(
                net.actor(MachineId::new(i))
                    .unwrap()
                    .merged_committed_digest(),
                d0
            );
        }
    }

    #[test]
    fn cross_op_resolves_exactly_once_everywhere() {
        let (mut net, _) = cluster(3);
        run_multi_until_joined(&mut net, SimTime::from_secs(10));
        let n0 = MachineId::new(0);
        let mut obj = None;
        net.call(n0, |mm, ctx| {
            obj = Some(mm.create_instance(Pair::default(), ctx));
        });
        let obj = obj.unwrap();
        net.run_until(net.now() + SimTime::from_secs(2));

        // Seed the components through their own groups first.
        net.call(MachineId::new(1), |mm, ctx| {
            mm.issue(SharedOp::primitive(obj, "bump_a", args![10]), None, ctx)
                .unwrap();
            mm.issue(SharedOp::primitive(obj, "bump_b", args![100]), None, ctx)
                .unwrap();
        });
        net.run_until(net.now() + SimTime::from_secs(2));

        static MIX_RESULT: AtomicI64 = AtomicI64::new(-1);
        MIX_RESULT.store(-1, Ordering::SeqCst);
        net.call(MachineId::new(2), |mm, ctx| {
            let r = mm
                .issue(
                    SharedOp::primitive(obj, "mix", args![1]),
                    Some(Box::new(|ok| {
                        MIX_RESULT.store(i64::from(ok), Ordering::SeqCst);
                    })),
                    ctx,
                )
                .unwrap();
            assert_eq!(r, IssueOutcome::CrossPending);
        });
        net.run_until(net.now() + SimTime::from_secs(4));

        // mix(1) on merged (a=10, b=100): a=11, b=111.
        assert_eq!(MIX_RESULT.load(Ordering::SeqCst), 1, "completion ran");
        for i in 0..3 {
            let mm = net.actor(MachineId::new(i)).unwrap();
            assert_eq!(mm.cross_resolved(), 1, "node {i} resolved exactly once");
            assert_eq!(
                mm.read_committed::<Pair, _>(obj, |p| (p.a, p.b)),
                Some((11, 111)),
                "node {i}"
            );
            assert_eq!(mm.frozen_groups(), Vec::<GroupId>::new(), "node {i}");
        }
        let d0 = net.actor(n0).unwrap().cross_digest();
        for i in 1..3 {
            assert_eq!(net.actor(MachineId::new(i)).unwrap().cross_digest(), d0);
        }

        // The fence released: local traffic keeps committing afterwards.
        net.call(MachineId::new(1), |mm, ctx| {
            mm.issue(SharedOp::primitive(obj, "bump_a", args![1]), None, ctx)
                .unwrap();
        });
        net.run_until(net.now() + SimTime::from_secs(2));
        assert_eq!(
            net.actor(n0)
                .unwrap()
                .read_committed::<Pair, _>(obj, |p| p.a),
            Some(12)
        );
    }

    #[test]
    fn merged_guess_read_is_immediate_per_group() {
        let (mut net, _) = cluster(2);
        run_multi_until_joined(&mut net, SimTime::from_secs(10));
        let n0 = MachineId::new(0);
        let mut obj = None;
        net.call(n0, |mm, ctx| {
            obj = Some(mm.create_instance(Pair::default(), ctx));
        });
        let obj = obj.unwrap();
        net.run_until(net.now() + SimTime::from_secs(2));
        net.call(n0, |mm, ctx| {
            mm.issue(SharedOp::primitive(obj, "bump_a", args![5]), None, ctx)
                .unwrap();
            // Guesstimated effect is visible before the round commits.
            assert_eq!(mm.read::<Pair, _>(obj, |p| p.a), Some(5));
        });
    }
}
