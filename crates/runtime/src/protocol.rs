//! The synchronizer protocol: 3-stage master–slave synchronization,
//! membership, and fault recovery (§4 of the paper).
//!
//! One machine is the **master**; it periodically initiates a round:
//!
//! 1. **AddUpdatesToMesh** — machines flush their pending lists in a fixed
//!    serial order (master first), each batch broadcast on the Operations
//!    channel and confirmed with a `FlushDone` on the Signals channel that
//!    passes the turn.
//! 2. **ApplyUpdatesFromMesh** — when every participant has flushed, the
//!    master broadcasts `BeginApply` with the authoritative per-machine op
//!    counts; each machine waits for all expected operations, applies them
//!    to its committed state in lexicographic `(machineID, opnumber)` order,
//!    acknowledges, then copies committed onto guesstimated state, runs its
//!    pending completion routines and replays its still-pending operations.
//! 3. **FlagCompletion** — when all acknowledgments are in, the master
//!    broadcasts `SyncComplete` and may start the next round any time after.
//!
//! **Recovery** (§4 "Failures and fault tolerance"): if a stage stalls
//! longer than a threshold, the master first *resends* the signal the
//! stalled machine failed to respond to; if the machine still does not
//! respond it is removed from the round and sent a `Restart`, after which it
//! re-enters through the membership path. **Membership** (§4 "Entering and
//! leaving"): a new machine broadcasts a join request; between rounds the
//! master ships it the object catalog and completed history; once the
//! machine confirms, it participates from the next round onward.

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::{MachineId, OpId};
use guesstimate_net::{Actor, Channel, Ctx, SimTime, TraceEvent};

use crate::machine::{JoinPhase, Machine};
use crate::message::{Msg, WireEnvelope, WireOp};
use crate::stats::SyncSample;

const KIND_TICK: u64 = 0;
const KIND_STAGE1: u64 = 1;
const KIND_STAGE2: u64 = 2;
const KIND_JOIN_RETRY: u64 = 3;
const KIND_WATCHDOG: u64 = 4;
const KIND_ELECTION_END: u64 = 5;

fn tag(kind: u64, round: u64) -> u64 {
    kind | (round << 8)
}

fn tag_kind(tag: u64) -> u64 {
    tag & 0xFF
}

fn tag_round(tag: u64) -> u64 {
    tag >> 8
}

/// Which stage the master is driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    Flush,
    Apply,
}

/// Master-side bookkeeping for the round in progress.
#[derive(Debug)]
pub(crate) struct MasterRound {
    pub(crate) round: u64,
    pub(crate) started_at: SimTime,
    /// When the master broadcast `BeginApply`, ending stage 1. `None` while
    /// the round is still flushing; used to decompose the round duration
    /// into per-stage timings in the final [`crate::SyncSample`].
    pub(crate) apply_started_at: Option<SimTime>,
    pub(crate) stage: Stage,
    pub(crate) flush_counts: BTreeMap<MachineId, u64>,
    pub(crate) counts: Vec<(MachineId, u64)>,
    pub(crate) acks: BTreeSet<MachineId>,
    pub(crate) nudged_flush: BTreeSet<MachineId>,
    pub(crate) nudged_acks: BTreeSet<MachineId>,
    pub(crate) resends: u64,
    pub(crate) removals: u64,
    pub(crate) ops_committed: u64,
}

impl MasterRound {
    fn new(round: u64, started_at: SimTime) -> Self {
        MasterRound {
            round,
            started_at,
            apply_started_at: None,
            stage: Stage::Flush,
            flush_counts: BTreeMap::new(),
            counts: Vec::new(),
            acks: BTreeSet::new(),
            nudged_flush: BTreeSet::new(),
            nudged_acks: BTreeSet::new(),
            resends: 0,
            removals: 0,
            ops_committed: 0,
        }
    }
}

/// Participant-side state of the round in progress (the master keeps one
/// too — it participates like everyone else).
#[derive(Debug)]
pub(crate) struct RoundState {
    pub(crate) round: u64,
    pub(crate) order: Vec<MachineId>,
    pub(crate) removed: BTreeSet<MachineId>,
    pub(crate) flushed: bool,
    pub(crate) my_flush: Vec<WireEnvelope>,
    pub(crate) flush_done: BTreeMap<MachineId, u64>,
    pub(crate) received: BTreeMap<MachineId, BTreeMap<OpId, WireOp>>,
    pub(crate) counts: Option<BTreeMap<MachineId, u64>>,
    pub(crate) applied: bool,
    pub(crate) resend_requested: BTreeSet<MachineId>,
}

impl RoundState {
    fn new(round: u64, order: Vec<MachineId>) -> Self {
        RoundState {
            round,
            order,
            removed: BTreeSet::new(),
            flushed: false,
            my_flush: Vec::new(),
            flush_done: BTreeMap::new(),
            received: BTreeMap::new(),
            counts: None,
            applied: false,
            resend_requested: BTreeSet::new(),
        }
    }
}

fn msg_round(msg: &Msg) -> Option<u64> {
    match msg {
        Msg::BeginSync { round, .. }
        | Msg::Ops { round, .. }
        | Msg::FlushDone { round, .. }
        | Msg::BeginApply { round, .. }
        | Msg::OpsRequest { round }
        | Msg::Ack { round, .. }
        | Msg::SyncComplete { round }
        | Msg::RoundUpdate { round, .. } => Some(*round),
        _ => None,
    }
}

impl Actor for Machine {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master {
            ctx.set_timer(self.cfg.sync_period, tag(KIND_TICK, 0));
        } else {
            ctx.broadcast(Channel::Signals, Msg::JoinRequest { machine: self.id });
            ctx.set_timer(self.cfg.join_retry, tag(KIND_JOIN_RETRY, 0));
            self.last_master_activity = ctx.now();
            if let Some(timeout) = self.cfg.master_failover {
                ctx.set_timer(timeout, tag(KIND_WATCHDOG, 0));
            }
        }
        self.paranoid_check("on_start");
    }

    fn on_message(&mut self, from: MachineId, _channel: Channel, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        // Master-originated traffic feeds the failover watchdog; a master
        // hearing round traffic from a *lower-id* master yields (split-brain
        // healing after a failover race).
        match &msg {
            Msg::BeginSync { .. }
            | Msg::BeginApply { .. }
            | Msg::SyncComplete { .. }
            | Msg::RoundUpdate { .. }
            | Msg::JoinInfo { .. }
            | Msg::MasterHeartbeat => {
                if self.is_master {
                    if from < self.id {
                        self.demote_and_rejoin(ctx);
                    }
                } else {
                    self.note_master_activity(ctx.now());
                }
            }
            _ => {}
        }
        match msg {
            Msg::JoinRequest { machine } => self.handle_join_request(machine, ctx),
            Msg::JoinInfo { catalog, completed } => {
                self.handle_join_info(from, catalog, completed, ctx)
            }
            Msg::JoinReady { machine } => self.handle_join_ready(machine),
            Msg::Leave { machine } => self.handle_leave(machine),
            Msg::Restart => self.self_restart(ctx),
            Msg::BeginSync { round, order } => self.handle_begin_sync(round, order, ctx),
            Msg::MasterCandidate {
                machine,
                last_round,
            } => self.handle_master_candidate(machine, last_round, ctx),
            Msg::MasterHeartbeat => {}
            other => self.route_round_msg(from, other, ctx),
        }
        self.paranoid_check("on_message");
    }

    fn on_timer(&mut self, timer_tag: u64, ctx: &mut Ctx<'_, Msg>) {
        match tag_kind(timer_tag) {
            KIND_TICK => self.handle_tick(ctx),
            KIND_STAGE1 => self.handle_stage1_timeout(tag_round(timer_tag), ctx),
            KIND_STAGE2 => self.handle_stage2_timeout(tag_round(timer_tag), ctx),
            KIND_JOIN_RETRY => self.handle_join_retry(ctx),
            KIND_WATCHDOG => self.handle_watchdog(ctx),
            KIND_ELECTION_END => self.handle_election_end(tag_round(timer_tag), ctx),
            _ => {}
        }
        self.paranoid_check("on_timer");
    }

    fn msg_size(msg: &Msg) -> u64 {
        msg.wire_size()
    }
}

impl Machine {
    // ------------------------------------------------------------------
    // Round-message routing (with buffering for out-of-order arrival)
    // ------------------------------------------------------------------

    fn route_round_msg(&mut self, from: MachineId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Some(round) = msg_round(&msg) else { return };
        match &self.round {
            Some(rs) if rs.round == round => self.dispatch_round_msg(from, msg, ctx),
            Some(rs) if rs.round > round => {} // stale round: drop
            _ => {
                // No active round, or a future round: buffer until BeginSync
                // arrives (the Signals and Operations channels are
                // independently delayed, so reordering is normal).
                if round > self.last_round_applied.unwrap_or(0) {
                    self.buffered.entry(round).or_default().push((from, msg));
                    while self.buffered.len() > 8 {
                        self.buffered.pop_first();
                    }
                }
            }
        }
    }

    fn dispatch_round_msg(&mut self, from: MachineId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Ops { machine, ops, .. } => self.handle_ops(machine, ops, ctx),
            Msg::FlushDone { machine, count, .. } => self.note_flush_done(machine, count, ctx),
            Msg::BeginApply { round, counts } => self.handle_begin_apply(round, counts, ctx),
            Msg::OpsRequest { round } => self.handle_ops_request(round, from, ctx),
            Msg::Ack { machine, .. } => self.handle_ack(machine, ctx),
            Msg::SyncComplete { .. } => self.handle_sync_complete(ctx),
            Msg::RoundUpdate { removed, .. } => self.handle_round_update(removed, ctx),
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Stage 1: AddUpdatesToMesh
    // ------------------------------------------------------------------

    fn handle_begin_sync(&mut self, round: u64, order: Vec<MachineId>, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master || !self.joined_system {
            return;
        }
        let me_in = order.contains(&self.id);
        if let Some(rs) = &self.round {
            if rs.round == round {
                // Duplicate or recovery nudge: make our flush visible again.
                if me_in {
                    if rs.flushed {
                        self.rebroadcast_flush(ctx);
                    } else {
                        self.do_flush(ctx);
                    }
                }
                return;
            }
            if rs.round > round {
                return;
            }
            // A new round is starting while the previous one never finished
            // for us. If we applied it, we only missed the SyncComplete and
            // are still consistent; otherwise we have a committed-state gap.
            if rs.applied {
                self.stats.syncs_seen += 1;
                self.round = None;
            } else {
                self.self_restart(ctx);
                return;
            }
        }
        if !me_in {
            if self.in_cohort {
                // Evicted (our Restart signal was probably lost): resync.
                self.self_restart(ctx);
            }
            return;
        }
        if let Some(last) = self.last_round_applied {
            if round > last + 1 {
                // We missed at least one whole round: committed-state gap.
                self.self_restart(ctx);
                return;
            }
        } else {
            self.last_round_applied = Some(round.saturating_sub(1));
        }
        self.in_cohort = true;
        self.round = Some(RoundState::new(round, order));
        let buffered = self.buffered.remove(&round).unwrap_or_default();
        self.buffered.retain(|&r, _| r > round);
        if self.cfg.parallel_flush {
            self.do_flush(ctx);
        } else {
            self.maybe_flush_on_turn(ctx);
        }
        for (from, msg) in buffered {
            self.dispatch_round_msg(from, msg, ctx);
        }
    }

    /// Flushes the pending list: broadcast the batch on the Operations
    /// channel, then confirm (and pass the turn) on the Signals channel.
    fn do_flush(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(rs) = self.round.as_mut() else {
            return;
        };
        if rs.flushed {
            return;
        }
        rs.flushed = true;
        let batch: Vec<WireEnvelope> = self.pending.iter().cloned().collect();
        rs.my_flush = batch.clone();
        let count = batch.len() as u64;
        // Our own ops participate in the consolidated list directly.
        rs.received.insert(
            self.id,
            batch.iter().map(|e| (e.id, e.op.clone())).collect(),
        );
        let round = rs.round;
        self.telemetry.pending_depth(count);
        for e in &batch {
            self.telemetry.op_flushed(e.id, ctx.now());
        }
        if count > 0 {
            ctx.broadcast(
                Channel::Operations,
                Msg::Ops {
                    round,
                    machine: self.id,
                    ops: batch,
                },
            );
            self.trace(ctx.now(), TraceEvent::OpsBatchSent { round, ops: count });
        }
        ctx.broadcast(
            Channel::Signals,
            Msg::FlushDone {
                round,
                machine: self.id,
                count,
            },
        );
        self.note_flush_done(self.id, count, ctx);
    }

    /// Re-announces an already-performed flush (recovery nudge path).
    fn rebroadcast_flush(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(rs) = self.round.as_ref() else {
            return;
        };
        let round = rs.round;
        let count = rs.my_flush.len() as u64;
        if count > 0 {
            ctx.broadcast(
                Channel::Operations,
                Msg::Ops {
                    round,
                    machine: self.id,
                    ops: rs.my_flush.clone(),
                },
            );
            self.trace(ctx.now(), TraceEvent::OpsBatchSent { round, ops: count });
        }
        ctx.broadcast(
            Channel::Signals,
            Msg::FlushDone {
                round,
                machine: self.id,
                count,
            },
        );
    }

    fn note_flush_done(&mut self, machine: MachineId, count: u64, ctx: &mut Ctx<'_, Msg>) {
        let Some(rs) = self.round.as_mut() else {
            return;
        };
        rs.flush_done.insert(machine, count);
        if self.is_master {
            let (newly, round, stage_done, next_turn) = {
                let Some(mr) = self.master_round.as_mut() else {
                    return;
                };
                if mr.stage != Stage::Flush {
                    return;
                }
                let newly = mr.flush_counts.insert(machine, count).is_none();
                let pending = || {
                    rs.order
                        .iter()
                        .filter(|m| !rs.removed.contains(m) && !rs.flush_done.contains_key(m))
                };
                let stage_done = pending().next().is_none();
                // Under serial turn-taking the next unflushed machine in the
                // round order now holds the flush window.
                let next_turn = if self.cfg.parallel_flush {
                    None
                } else {
                    pending().next().copied()
                };
                (newly, mr.round, stage_done, next_turn)
            };
            if newly {
                let now = ctx.now();
                self.trace(
                    now,
                    TraceEvent::FlushWindowClosed {
                        round,
                        machine,
                        ops: count,
                    },
                );
                if let Some(next) = next_turn {
                    self.trace(
                        now,
                        TraceEvent::FlushWindowOpened {
                            round,
                            machine: next,
                        },
                    );
                }
            }
            if stage_done {
                self.start_apply_stage(ctx);
            }
        } else {
            self.maybe_flush_on_turn(ctx);
        }
    }

    /// Serial turn-taking: flush once every earlier machine in the round
    /// order has flushed (or been removed).
    fn maybe_flush_on_turn(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let ready = {
            let Some(rs) = self.round.as_ref() else {
                return;
            };
            if rs.flushed {
                return;
            }
            let Some(pos) = rs.order.iter().position(|&m| m == self.id) else {
                return;
            };
            rs.order[..pos]
                .iter()
                .all(|m| rs.flush_done.contains_key(m) || rs.removed.contains(m))
        };
        if ready {
            self.do_flush(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: ApplyUpdatesFromMesh
    // ------------------------------------------------------------------

    fn start_apply_stage(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let (round, counts) = {
            let rs = self.round.as_ref().expect("round active");
            let mr = self.master_round.as_mut().expect("master round active");
            mr.stage = Stage::Apply;
            mr.apply_started_at = Some(ctx.now());
            let counts: Vec<(MachineId, u64)> = rs
                .order
                .iter()
                .filter(|m| !rs.removed.contains(m))
                .map(|m| (*m, *mr.flush_counts.get(m).unwrap_or(&0)))
                .collect();
            mr.counts = counts.clone();
            (mr.round, counts)
        };
        ctx.broadcast(
            Channel::Signals,
            Msg::BeginApply {
                round,
                counts: counts.clone(),
            },
        );
        self.trace(
            ctx.now(),
            TraceEvent::BeginApply {
                round,
                ops_total: counts.iter().map(|(_, c)| *c).sum(),
            },
        );
        ctx.set_timer(self.cfg.stall_timeout, tag(KIND_STAGE2, round));
        self.handle_begin_apply(round, counts, ctx);
    }

    fn handle_begin_apply(
        &mut self,
        round: u64,
        counts: Vec<(MachineId, u64)>,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        let Some(rs) = self.round.as_mut() else {
            return;
        };
        if rs.applied {
            // Duplicate BeginApply (recovery): our Ack probably got lost.
            let master = rs.order[0];
            if master != self.id {
                ctx.send(
                    master,
                    Channel::Signals,
                    Msg::Ack {
                        round,
                        machine: self.id,
                    },
                );
            }
            return;
        }
        if rs.counts.is_some() {
            // Duplicate BeginApply while we are still waiting for operation
            // batches: the earlier OpsRequest (or its reply) was probably
            // lost — allow a fresh resend request per source.
            rs.resend_requested.clear();
        }
        rs.counts = Some(counts.into_iter().collect());
        self.try_apply(ctx);
    }

    /// Applies the round as soon as every expected operation has arrived;
    /// requests per-source resends for anything missing.
    fn try_apply(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let (round, missing) = {
            let Some(rs) = self.round.as_ref() else {
                return;
            };
            if rs.applied {
                return;
            }
            let Some(counts) = rs.counts.as_ref() else {
                return;
            };
            let missing: Vec<MachineId> = counts
                .iter()
                .filter(|(m, c)| (rs.received.get(m).map_or(0, |ops| ops.len() as u64)) < **c)
                .map(|(m, _)| *m)
                .collect();
            (rs.round, missing)
        };
        if !missing.is_empty() {
            let mut requested = Vec::new();
            {
                let rs = self.round.as_mut().expect("round active");
                for m in missing {
                    if m != self.id && rs.resend_requested.insert(m) {
                        requested.push(m);
                    }
                }
            }
            for m in requested {
                ctx.send(m, Channel::Operations, Msg::OpsRequest { round });
                self.trace(
                    ctx.now(),
                    TraceEvent::OpsResendRequested { round, source: m },
                );
            }
            return;
        }
        // Assemble the consolidated pending list in lexicographic
        // (machineID, operationnumber) order and commit it.
        let ordered: Vec<WireEnvelope> = {
            let rs = self.round.as_mut().expect("round active");
            let counts = rs.counts.as_ref().expect("counts known");
            let mut ordered = Vec::new();
            for (m, _) in counts.iter() {
                if let Some(ops) = rs.received.get(m) {
                    ordered.extend(ops.iter().map(|(id, op)| WireEnvelope {
                        id: *id,
                        op: op.clone(),
                    }));
                }
            }
            // counts is a BTreeMap (sorted by machine) and each inner map is
            // sorted by OpId, so `ordered` is already lexicographic; the
            // debug assertion guards the invariant.
            debug_assert!(ordered.windows(2).all(|w| w[0].id < w[1].id));
            rs.received.clear();
            ordered
        };
        let n = self.apply_committed_round(ordered, round, ctx.now());
        // After the replay the pending list is exactly the set of ops on
        // `sg` but not yet in `sc` — the guesstimate-health divergence.
        self.telemetry.divergence(self.pending.len() as u64);
        let (round, master) = {
            let rs = self.round.as_mut().expect("round active");
            rs.applied = true;
            (rs.round, rs.order[0])
        };
        self.last_round_applied = Some(round);
        if self.is_master {
            {
                let mr = self.master_round.as_mut().expect("master round");
                mr.ops_committed = n;
                mr.acks.insert(self.id);
            }
            self.trace(
                ctx.now(),
                TraceEvent::AckReceived {
                    round,
                    machine: self.id,
                },
            );
            self.check_round_completion(ctx);
        } else {
            ctx.send(
                master,
                Channel::Signals,
                Msg::Ack {
                    round,
                    machine: self.id,
                },
            );
        }
    }

    fn handle_ops(&mut self, machine: MachineId, ops: Vec<WireEnvelope>, ctx: &mut Ctx<'_, Msg>) {
        let (round, n) = {
            let Some(rs) = self.round.as_mut() else {
                return;
            };
            if rs.applied {
                return;
            }
            let n = ops.len() as u64;
            let entry = rs.received.entry(machine).or_default();
            for e in ops {
                entry.insert(e.id, e.op);
            }
            (rs.round, n)
        };
        self.trace(
            ctx.now(),
            TraceEvent::OpsBatchReceived {
                round,
                from: machine,
                ops: n,
            },
        );
        self.try_apply(ctx);
    }

    fn handle_ops_request(&mut self, round: u64, requester: MachineId, ctx: &mut Ctx<'_, Msg>) {
        let Some(rs) = self.round.as_ref() else {
            return;
        };
        if rs.round == round && rs.flushed {
            ctx.send(
                requester,
                Channel::Operations,
                Msg::Ops {
                    round,
                    machine: self.id,
                    ops: rs.my_flush.clone(),
                },
            );
        }
    }

    fn handle_round_update(&mut self, removed: Vec<MachineId>, ctx: &mut Ctx<'_, Msg>) {
        if removed.contains(&self.id) {
            // The master gave up on us this round; resync immediately
            // rather than waiting for the (possibly lost) Restart signal.
            self.self_restart(ctx);
            return;
        }
        {
            let Some(rs) = self.round.as_mut() else {
                return;
            };
            rs.removed.extend(removed.iter().copied());
        }
        self.maybe_flush_on_turn(ctx);
        self.try_apply(ctx);
    }

    // ------------------------------------------------------------------
    // Stage 3: FlagCompletion
    // ------------------------------------------------------------------

    fn handle_ack(&mut self, machine: MachineId, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master {
            return;
        }
        let newly = {
            let Some(mr) = self.master_round.as_mut() else {
                return;
            };
            if mr.acks.insert(machine) {
                Some(mr.round)
            } else {
                None
            }
        };
        if let Some(round) = newly {
            self.trace(ctx.now(), TraceEvent::AckReceived { round, machine });
        }
        self.check_round_completion(ctx);
    }

    fn check_round_completion(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let done = {
            let (Some(rs), Some(mr)) = (self.round.as_ref(), self.master_round.as_ref()) else {
                return;
            };
            mr.stage == Stage::Apply
                && rs
                    .order
                    .iter()
                    .filter(|m| !rs.removed.contains(m))
                    .all(|m| mr.acks.contains(m))
        };
        if done {
            self.finish_round(ctx);
        }
    }

    fn finish_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let rs = self.round.take().expect("round active");
        let mr = self.master_round.take().expect("master round active");
        ctx.broadcast(Channel::Signals, Msg::SyncComplete { round: mr.round });
        let now = ctx.now();
        let duration = now.saturating_since(mr.started_at);
        // Per-stage decomposition: stage 1 ran from BeginSync until
        // BeginApply went out, stage 2 from BeginApply until the last ack
        // (i.e. now), and stage 3 — a single broadcast with no round trip —
        // takes the remainder. The three parts sum to `duration` exactly.
        let flush_duration = mr
            .apply_started_at
            .map_or(duration, |t| t.saturating_since(mr.started_at));
        let apply_duration = mr
            .apply_started_at
            .map_or(SimTime::ZERO, |t| now.saturating_since(t));
        let completion_duration = duration.saturating_since(flush_duration + apply_duration);
        self.telemetry.round_finished(
            duration,
            flush_duration,
            apply_duration,
            completion_duration,
            mr.resends,
            mr.removals,
        );
        self.trace(
            now,
            TraceEvent::SyncComplete {
                round: mr.round,
                ops_committed: mr.ops_committed,
            },
        );
        self.stats.syncs_seen += 1;
        self.stats.sync_samples.push(SyncSample {
            round: mr.round,
            started_at: mr.started_at,
            duration,
            flush_duration,
            apply_duration,
            completion_duration,
            participants: rs.order.len(),
            ops_committed: mr.ops_committed,
            ops_flushed: mr.flush_counts.values().sum(),
            resends: mr.resends,
            removals: mr.removals,
        });
        self.service_joins(ctx);
        ctx.set_timer(self.cfg.sync_period, tag(KIND_TICK, 0));
    }

    fn handle_sync_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let (applied, round) = {
            let Some(rs) = self.round.as_ref() else {
                return;
            };
            (rs.applied, rs.round)
        };
        if applied {
            self.round = None;
            self.stats.syncs_seen += 1;
            self.trace(ctx.now(), TraceEvent::SyncCompleteReceived { round });
        } else {
            // The round completed globally but we never applied it: we have
            // a committed-state gap and must resync.
            self.self_restart(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Master: round initiation and stall recovery
    // ------------------------------------------------------------------

    fn handle_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master {
            return;
        }
        if self.round.is_some() {
            return; // stage timers drive the active round
        }
        self.service_joins(ctx);
        self.begin_round(ctx);
    }

    fn begin_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let round = self.next_round;
        self.next_round += 1;
        let order: Vec<MachineId> = self.members.iter().copied().collect();
        debug_assert_eq!(order.first(), Some(&self.id), "master flushes first");
        ctx.broadcast(
            Channel::Signals,
            Msg::BeginSync {
                round,
                order: order.clone(),
            },
        );
        let participants = order.len() as u32;
        self.master_round = Some(MasterRound::new(round, ctx.now()));
        self.round = Some(RoundState::new(round, order));
        self.last_round_applied.get_or_insert(round - 1);
        self.trace(
            ctx.now(),
            TraceEvent::RoundStarted {
                round,
                participants,
            },
        );
        if !self.cfg.parallel_flush {
            // Serial turn-taking: the master flushes first.
            self.trace(
                ctx.now(),
                TraceEvent::FlushWindowOpened {
                    round,
                    machine: self.id,
                },
            );
        }
        self.do_flush(ctx);
        ctx.set_timer(self.cfg.stall_timeout, tag(KIND_STAGE1, round));
    }

    fn handle_stage1_timeout(&mut self, round: u64, ctx: &mut Ctx<'_, Msg>) {
        let laggards = {
            let (Some(rs), Some(mr)) = (self.round.as_ref(), self.master_round.as_ref()) else {
                return;
            };
            if mr.round != round || mr.stage != Stage::Flush {
                return;
            }
            let unflushed = rs
                .order
                .iter()
                .filter(|m| !rs.removed.contains(m) && !rs.flush_done.contains_key(m))
                .copied();
            if self.cfg.parallel_flush {
                unflushed.collect::<Vec<_>>()
            } else {
                // Serial turns: only the machine whose turn it is can be
                // blocking the stage.
                unflushed.take(1).collect()
            }
        };
        if laggards.is_empty() {
            return;
        }
        let mut newly_removed = Vec::new();
        for m in laggards {
            let nudged = self
                .master_round
                .as_ref()
                .map(|mr| mr.nudged_flush.contains(&m))
                .unwrap_or(false);
            if nudged {
                self.remove_from_round(m, ctx);
                newly_removed.push(m);
            } else {
                let rs_order = self.round.as_ref().expect("round").order.clone();
                let mr = self.master_round.as_mut().expect("master round");
                mr.nudged_flush.insert(m);
                debug_assert!(mr.resends < u64::MAX, "resend counter saturated");
                mr.resends = mr.resends.saturating_add(1);
                ctx.send(
                    m,
                    Channel::Signals,
                    Msg::BeginSync {
                        round,
                        order: rs_order,
                    },
                );
                self.trace(
                    ctx.now(),
                    TraceEvent::Resend {
                        round,
                        machine: m,
                        stage: 1,
                    },
                );
            }
        }
        if !newly_removed.is_empty() {
            ctx.broadcast(
                Channel::Signals,
                Msg::RoundUpdate {
                    round,
                    removed: newly_removed,
                },
            );
            // Removal may have unblocked the stage.
            let stage_done = {
                let (Some(rs), Some(mr)) = (self.round.as_ref(), self.master_round.as_ref()) else {
                    return;
                };
                mr.stage == Stage::Flush
                    && rs
                        .order
                        .iter()
                        .filter(|m| !rs.removed.contains(m))
                        .all(|m| rs.flush_done.contains_key(m))
            };
            if stage_done {
                self.start_apply_stage(ctx);
                return;
            }
        }
        ctx.set_timer(self.cfg.stall_timeout, tag(KIND_STAGE1, round));
    }

    fn handle_stage2_timeout(&mut self, round: u64, ctx: &mut Ctx<'_, Msg>) {
        let missing = {
            let (Some(rs), Some(mr)) = (self.round.as_ref(), self.master_round.as_ref()) else {
                return;
            };
            if mr.round != round || mr.stage != Stage::Apply {
                return;
            }
            rs.order
                .iter()
                .filter(|m| !rs.removed.contains(m) && !mr.acks.contains(m))
                .copied()
                .collect::<Vec<_>>()
        };
        if missing.is_empty() {
            return;
        }
        // If the master itself is still waiting for operation batches, the
        // earlier resend requests were probably lost: retry them rather than
        // treating ourselves as a stalled participant.
        if missing.contains(&self.id) {
            if let Some(rs) = self.round.as_mut() {
                rs.resend_requested.clear();
            }
            self.try_apply(ctx);
        }
        let me = self.id;
        let mut removed_any = false;
        for m in missing.into_iter().filter(|&m| m != me) {
            let nudged = self
                .master_round
                .as_ref()
                .map(|mr| mr.nudged_acks.contains(&m))
                .unwrap_or(false);
            if nudged {
                self.remove_from_round(m, ctx);
                removed_any = true;
            } else {
                let mr = self.master_round.as_mut().expect("master round");
                mr.nudged_acks.insert(m);
                debug_assert!(mr.resends < u64::MAX, "resend counter saturated");
                mr.resends = mr.resends.saturating_add(1);
                let counts = mr.counts.clone();
                ctx.send(m, Channel::Signals, Msg::BeginApply { round, counts });
                self.trace(
                    ctx.now(),
                    TraceEvent::Resend {
                        round,
                        machine: m,
                        stage: 2,
                    },
                );
            }
        }
        if removed_any {
            self.check_round_completion(ctx);
        }
        if self.master_round.is_some() {
            ctx.set_timer(self.cfg.stall_timeout, tag(KIND_STAGE2, round));
        }
    }

    fn remove_from_round(&mut self, m: MachineId, ctx: &mut Ctx<'_, Msg>) {
        let mut round = 0;
        if let Some(rs) = self.round.as_mut() {
            rs.removed.insert(m);
            round = rs.round;
        }
        if let Some(mr) = self.master_round.as_mut() {
            debug_assert!(mr.removals < u64::MAX, "removal counter saturated");
            mr.removals = mr.removals.saturating_add(1);
            round = mr.round;
        }
        self.members.remove(&m);
        ctx.send(m, Channel::Signals, Msg::Restart);
        self.trace(ctx.now(), TraceEvent::Removed { round, machine: m });
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn handle_join_request(&mut self, machine: MachineId, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master || machine == self.id {
            return;
        }
        // A re-join from a current member means it restarted itself; its
        // membership is void until the handshake completes again.
        self.members.remove(&machine);
        self.pending_joins.insert(machine, JoinPhase::Requested);
        if self.round.is_none() {
            self.service_joins(ctx);
        }
    }

    /// Between rounds, ship `JoinInfo` to every machine whose handshake
    /// needs (re)starting. The epoch (completed-history length) recorded at
    /// send time guarantees a machine is only admitted if no operation
    /// committed since its snapshot was taken.
    fn service_joins(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master || self.round.is_some() {
            return;
        }
        let epoch = self.completed.len() as u64;
        let needs: Vec<MachineId> = self
            .pending_joins
            .iter()
            .filter(|(_, phase)| match phase {
                JoinPhase::Requested => true,
                JoinPhase::InfoSent(e) => *e != epoch,
            })
            .map(|(m, _)| *m)
            .collect();
        for m in needs {
            let (catalog, completed) = self.build_join_info();
            ctx.send(m, Channel::Signals, Msg::JoinInfo { catalog, completed });
            self.pending_joins.insert(m, JoinPhase::InfoSent(epoch));
        }
    }

    fn handle_join_info(
        &mut self,
        from: MachineId,
        catalog: Vec<crate::message::ObjectInit>,
        completed: Vec<OpId>,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        if self.is_master {
            return;
        }
        if !self.in_cohort {
            self.init_from_join_info(catalog, completed);
        }
        ctx.send(from, Channel::Signals, Msg::JoinReady { machine: self.id });
    }

    fn handle_join_ready(&mut self, machine: MachineId) {
        if !self.is_master {
            return;
        }
        let epoch = self.completed.len() as u64;
        match self.pending_joins.get(&machine) {
            Some(JoinPhase::InfoSent(e)) if *e == epoch && self.round.is_none() => {
                self.pending_joins.remove(&machine);
                self.members.insert(machine);
            }
            Some(_) => {
                // Snapshot went stale (a round committed in between) or a
                // round is active: redo the handshake at the next gap.
                self.pending_joins.insert(machine, JoinPhase::Requested);
            }
            None => {}
        }
    }

    fn handle_leave(&mut self, machine: MachineId) {
        if !self.is_master {
            return;
        }
        self.members.remove(&machine);
        self.pending_joins.remove(&machine);
    }

    /// Gracefully leaves the system (application API): intimates the master
    /// so it is excluded "from the next synchronization onward" (§4).
    ///
    /// Replicated state, pending operations and completion routines are
    /// retained, so a departed machine can keep working offline and later
    /// [`Machine::come_online`] — the §9 "Off-line updates" extension.
    pub fn leave(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.broadcast(Channel::Signals, Msg::Leave { machine: self.id });
        self.joined_system = false;
        self.in_cohort = false;
        self.round = None;
        self.buffered.clear();
    }

    /// §9 "Off-line updates": detaches from the system while continuing to
    /// operate. The machine keeps its last known committed and guesstimated
    /// state and may keep issuing operations — they accumulate on the
    /// pending list and execute optimistically against the (now frozen)
    /// guesstimate. Alias of [`Machine::leave`].
    ///
    /// The longer the machine stays offline, the larger "the scope for
    /// discrepancy and conflicts" (§9): operations issued offline are
    /// re-validated at commit time after rejoining, and completion routines
    /// report any that fail.
    pub fn go_offline(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.leave(ctx);
    }

    /// Re-enters the system after [`Machine::go_offline`]. The membership
    /// handshake re-initializes the committed state from the master's
    /// snapshot; operations issued while offline are *preserved*, replayed
    /// onto the fresh guesstimate, and committed in the machine's first
    /// round back.
    pub fn come_online(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.broadcast(Channel::Signals, Msg::JoinRequest { machine: self.id });
        ctx.set_timer(self.cfg.join_retry, tag(KIND_JOIN_RETRY, 0));
    }

    /// Join retries continue until the machine participates in a round
    /// (`in_cohort`), covering lost `JoinRequest`, `JoinInfo` and
    /// `JoinReady` messages alike.
    fn handle_join_retry(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master {
            return;
        }
        if !self.in_cohort {
            ctx.broadcast(Channel::Signals, Msg::JoinRequest { machine: self.id });
            ctx.set_timer(self.cfg.join_retry, tag(KIND_JOIN_RETRY, 0));
        }
    }

    // ------------------------------------------------------------------
    // Master failover (§9 extension; off by default)
    // ------------------------------------------------------------------

    fn note_master_activity(&mut self, now: SimTime) {
        self.last_master_activity = now;
        // A live master quells any election in progress.
        self.election = None;
    }

    fn handle_watchdog(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(timeout) = self.cfg.master_failover else {
            return;
        };
        if self.is_master {
            return;
        }
        let silence = ctx.now().saturating_since(self.last_master_activity);
        if silence >= timeout && self.in_cohort && self.election.is_none() {
            self.start_election(ctx);
        }
        ctx.set_timer(timeout, tag(KIND_WATCHDOG, 0));
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let last_round = self.last_round_applied.unwrap_or(0);
        let mut candidates = BTreeMap::new();
        candidates.insert(self.id, last_round);
        self.election = Some(candidates);
        self.election_gen += 1;
        self.trace(ctx.now(), TraceEvent::ElectionStarted { last_round });
        ctx.broadcast(
            Channel::Signals,
            Msg::MasterCandidate {
                machine: self.id,
                last_round,
            },
        );
        // The election window must comfortably cover a candidacy cascade
        // (a couple of one-way latencies); the stall timeout does.
        ctx.set_timer(
            self.cfg.stall_timeout,
            tag(KIND_ELECTION_END, self.election_gen),
        );
    }

    fn handle_master_candidate(
        &mut self,
        machine: MachineId,
        last_round: u64,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        if self.is_master {
            // The master is alive: quell the election.
            ctx.broadcast(Channel::Signals, Msg::MasterHeartbeat);
            return;
        }
        if self.cfg.master_failover.is_none() || !self.in_cohort {
            return;
        }
        if self.election.is_none() {
            // Join the cascade with our own candidacy.
            self.start_election(ctx);
        }
        if let Some(candidates) = self.election.as_mut() {
            candidates.insert(machine, last_round);
        }
    }

    fn handle_election_end(&mut self, gen: u64, ctx: &mut Ctx<'_, Msg>) {
        if gen != self.election_gen {
            return; // stale window
        }
        let Some(candidates) = self.election.take() else {
            return; // quelled by a heartbeat
        };
        // Winner: most committed progress, ties to the smallest id.
        let winner = candidates
            .iter()
            .max_by_key(|(id, lr)| (**lr, std::cmp::Reverse(**id)))
            .map(|(id, _)| *id)
            .expect("own candidacy present");
        if winner == self.id {
            self.promote(ctx);
        } else {
            // Defer to the winner: rejoin through the membership path
            // (pending operations are preserved, as in go_offline).
            self.joined_system = false;
            self.in_cohort = false;
            self.round = None;
            self.buffered.clear();
            self.come_online(ctx);
        }
    }

    fn promote(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.is_master = true;
        self.joined_system = true;
        self.in_cohort = true;
        self.members.clear();
        self.members.insert(self.id);
        self.pending_joins.clear();
        self.round = None;
        self.master_round = None;
        // Skip a round number in case the dead master's last round was
        // partially committed somewhere.
        self.next_round = self.last_round_applied.unwrap_or(0) + 2;
        self.stats.promotions += 1;
        self.trace(
            ctx.now(),
            TraceEvent::ElectionWon {
                round: self.next_round,
            },
        );
        ctx.broadcast(Channel::Signals, Msg::MasterHeartbeat);
        ctx.set_timer(self.cfg.sync_period, tag(KIND_TICK, 0));
    }

    /// A master that lost a split-brain race steps down and rejoins.
    fn demote_and_rejoin(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.is_master = false;
        self.master_round = None;
        self.members.clear();
        self.pending_joins.clear();
        self.joined_system = false;
        self.in_cohort = false;
        self.round = None;
        self.buffered.clear();
        self.last_master_activity = ctx.now();
        self.come_online(ctx);
        if let Some(timeout) = self.cfg.master_failover {
            ctx.set_timer(timeout, tag(KIND_WATCHDOG, 0));
        }
    }

    fn self_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master {
            return; // master failure/restart is not tolerated (§9)
        }
        self.reset_for_restart();
        self.trace(ctx.now(), TraceEvent::Restarted);
        ctx.broadcast(Channel::Signals, Msg::JoinRequest { machine: self.id });
        ctx.set_timer(self.cfg.join_retry, tag(KIND_JOIN_RETRY, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::testutil::{counter_registry, Counter};
    use guesstimate_core::{args, ObjectId, OpRegistry, SharedOp};
    use guesstimate_net::{FaultPlan, LatencyModel, NetConfig, SimNet, StallWindow};
    use std::sync::Arc;

    fn cluster(
        n: u32,
        seed: u64,
        latency: LatencyModel,
        faults: FaultPlan,
        cfg: MachineConfig,
    ) -> SimNet<Machine> {
        let registry = Arc::new(counter_registry());
        let netcfg = NetConfig::lan(seed)
            .with_latency(latency)
            .with_faults(faults);
        let mut net = SimNet::new(netcfg);
        net.add_machine(
            MachineId::new(0),
            Machine::new_master(MachineId::new(0), registry.clone(), cfg.clone()),
        );
        for i in 1..n {
            net.add_machine(
                MachineId::new(i),
                Machine::new_member(MachineId::new(i), registry.clone(), cfg.clone()),
            );
        }
        net
    }

    fn default_cfg() -> MachineConfig {
        // paranoid_checks: every protocol step re-validates `sg = [P](sc)`,
        // so these tests no longer need ad-hoc mid-run invariant calls.
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(500))
            .with_join_retry(SimTime::from_millis(300))
            .with_paranoid_checks(true)
    }

    fn fast_cluster(n: u32, seed: u64) -> SimNet<Machine> {
        cluster(
            n,
            seed,
            LatencyModel::constant_ms(10),
            FaultPlan::new(),
            default_cfg(),
        )
    }

    fn assert_converged(net: &SimNet<Machine>, ids: &[u32]) {
        let digests: Vec<u64> = ids
            .iter()
            .map(|&i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .committed_digest()
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "committed states diverged: {digests:?}"
        );
        for &i in ids {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert_eq!(m.pending_len(), 0, "machine {i} still has pending ops");
            assert_eq!(
                m.guess_digest(),
                m.committed_digest(),
                "machine {i}: sg != sc at quiescence"
            );
        }
    }

    #[test]
    fn two_machines_converge_on_counter() {
        let mut net = fast_cluster(2, 1);
        // Let membership settle and create the object on the master.
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Both machines see the object now; both add.
        for i in 0..2 {
            let m = net
                .actor_mut(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert_eq!(m.object_type(obj), Some("Counter"));
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![1]))
                .expect("issue: the target object is known to this machine"));
        }
        net.run_until(SimTime::from_secs(4));
        assert_converged(&net, &[0, 1]);
        for i in 0..2 {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert_eq!(m.read::<Counter, _>(obj, |c| c.n), Some(2));
        }
    }

    #[test]
    fn eight_machines_converge_under_load() {
        let mut net = fast_cluster(8, 7);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Every machine issues 5 increments at staggered times.
        for i in 0..8u32 {
            for k in 0..5u64 {
                net.schedule_call(
                    SimTime::from_millis(2_000 + 97 * k + 13 * i as u64),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        net.run_until(SimTime::from_secs(8));
        assert_converged(&net, &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(
            net.actor(MachineId::new(3))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(40)
        );
    }

    #[test]
    fn conflicting_ops_commit_consistently_and_count_conflicts() {
        let mut net = fast_cluster(4, 3);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // All four try to claim the last 2 units of a capacity-3 resource
        // in the same round: at most 3 add_capped(1, 3) can succeed.
        for i in 0..4 {
            net.schedule_call(
                SimTime::from_millis(2_010 + i as u64),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    let ok = m
                        .issue(SharedOp::primitive(obj, "add_capped", args![1, 3]))
                        .expect("issue: the target object is known to this machine");
                    assert!(ok, "succeeds optimistically on the guesstimate");
                },
            );
        }
        net.run_until(SimTime::from_secs(5));
        assert_converged(&net, &[0, 1, 2, 3]);
        let n = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .read::<Counter, _>(obj, |c| c.n)
            .expect("the object is replicated on this machine");
        assert_eq!(n, 3, "cap respected in committed state");
        let conflicts: u64 = (0..4)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .stats()
                    .conflicts
            })
            .sum();
        assert_eq!(conflicts, 1, "exactly one issuer lost the race");
    }

    #[test]
    fn completion_reports_commit_failure_on_conflict() {
        use std::sync::atomic::{AtomicI32, Ordering};
        let mut net = fast_cluster(2, 11);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        let seen = Arc::new(AtomicI32::new(-1));
        // m0's op sorts first (smaller machine id) and wins; m1's loses.
        let s = seen.clone();
        net.call(MachineId::new(0), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add_capped", args![3, 3]))
                .expect("issue: the target object is known to this machine"));
        });
        net.call(MachineId::new(1), |m, _| {
            assert!(m
                .issue_with_completion(
                    SharedOp::primitive(obj, "add_capped", args![3, 3]),
                    Box::new(move |b| s.store(b as i32, Ordering::SeqCst)),
                )
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(4));
        assert_eq!(seen.load(Ordering::SeqCst), 0, "completion saw failure");
        assert_eq!(
            net.actor(MachineId::new(1))
                .expect("machine is registered on the mesh")
                .stats()
                .conflicts,
            1
        );
        assert_converged(&net, &[0, 1]);
    }

    #[test]
    fn own_ops_execute_at_most_three_times() {
        let mut net = fast_cluster(5, 13);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Dense issue schedule so some ops land inside sync rounds (and get
        // the extra replay execution).
        for i in 0..5u32 {
            for k in 0..40u64 {
                net.schedule_call(
                    SimTime::from_millis(2_000 + 11 * k + 3 * i as u64),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        net.run_until(SimTime::from_secs(10));
        assert_converged(&net, &[0, 1, 2, 3, 4]);
        for i in 0..5 {
            let st = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh")
                .stats();
            assert!(
                st.max_exec_count <= 3,
                "machine {i}: op executed {} times",
                st.max_exec_count
            );
            assert!(st.exec_histogram[2] > 0, "some ops executed twice");
        }
        // With a dense schedule, at least someone's op got the 3rd execution.
        let threes: u64 = (0..5)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .stats()
                    .exec_histogram[3]
            })
            .sum();
        assert!(threes > 0, "expected some triple executions");
    }

    #[test]
    fn late_joiner_receives_full_state() {
        let mut net = fast_cluster(2, 17);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.call(MachineId::new(0), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![5]))
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(3));
        // Machine 2 joins late.
        let registry = Arc::new(counter_registry());
        net.schedule_join(
            SimTime::from_secs(3),
            MachineId::new(2),
            Machine::new_member(MachineId::new(2), registry, default_cfg()),
        );
        net.run_until(SimTime::from_secs(6));
        let late = net
            .actor(MachineId::new(2))
            .expect("machine is registered on the mesh");
        assert!(late.in_cohort(), "late joiner participates in rounds");
        assert_eq!(late.read::<Counter, _>(obj, |c| c.n), Some(5));
        assert_converged(&net, &[0, 1, 2]);
        // And it can issue ops that commit everywhere.
        net.call(MachineId::new(2), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![2]))
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(8));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(7)
        );
    }

    #[test]
    fn stalled_machine_is_removed_restarted_and_rejoins() {
        // Machine 2 goes silent from t=4s to t=8s. The master should remove
        // it from a round, restart it, and re-admit it afterwards — while
        // the others keep committing (the §7 failure/recovery story).
        let faults = FaultPlan::new().with_stall(StallWindow::new(
            MachineId::new(2),
            SimTime::from_secs(4),
            SimTime::from_secs(8),
        ));
        let mut net = cluster(3, 23, LatencyModel::constant_ms(10), faults, default_cfg());
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Continuous activity on machines 0 and 1 throughout.
        for k in 0..80u64 {
            net.schedule_call(
                SimTime::from_millis(2_000 + k * 100),
                MachineId::new((k % 2) as u32),
                move |m: &mut Machine, _| {
                    let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                },
            );
        }
        net.run_until(SimTime::from_secs(14));
        let master_stats = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .stats()
            .clone();
        let removals: u64 = master_stats.sync_samples.iter().map(|s| s.removals).sum();
        assert!(removals >= 1, "master removed the stalled machine");
        let m2 = net
            .actor(MachineId::new(2))
            .expect("machine is registered on the mesh");
        assert!(m2.stats().restarts >= 1, "machine 2 restarted");
        assert!(m2.in_cohort(), "machine 2 rejoined");
        assert_converged(&net, &[0, 1, 2]);
        assert_eq!(
            m2.read::<Counter, _>(obj, |c| c.n),
            Some(80),
            "no committed updates were lost"
        );
    }

    #[test]
    fn survives_random_message_loss() {
        let faults = FaultPlan::new().with_drop_prob(0.02);
        let mut net = cluster(4, 29, LatencyModel::constant_ms(10), faults, default_cfg());
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(3));
        for i in 0..4u32 {
            for k in 0..10u64 {
                net.schedule_call(
                    SimTime::from_millis(3_000 + 151 * k + 17 * i as u64),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        // Long quiet tail so recovery can finish.
        net.run_until(SimTime::from_secs(30));
        // All currently-in-cohort machines agree.
        let in_cohort: Vec<u32> = (0..4)
            .filter(|&i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .in_cohort()
            })
            .collect();
        assert!(in_cohort.len() >= 2, "most machines still participating");
        assert_converged(&net, &in_cohort);
        // Committed value = 40 minus ops lost to restarts.
        let lost: u64 = (0..4)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .stats()
                    .ops_lost_to_restart
            })
            .sum();
        let n = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .read_committed::<Counter, _>(obj, |c| c.n)
            .expect("the object is replicated on this machine");
        assert_eq!(
            n as u64 + lost,
            40,
            "every issued op committed or was lost to a restart"
        );
    }

    #[test]
    fn graceful_leave_shrinks_rounds() {
        let mut net = fast_cluster(3, 31);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .members()
                .len(),
            3
        );
        net.call(MachineId::new(2), |m, ctx| m.leave(ctx));
        net.run_until(SimTime::from_secs(4));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .members()
                .len(),
            2
        );
        // Rounds keep completing with 2 participants.
        let samples = &net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .stats()
            .sync_samples;
        let last = samples
            .last()
            .expect("the master completed at least one round");
        assert_eq!(last.participants, 2);
    }

    #[test]
    fn parallel_flush_converges_too() {
        let cfg = default_cfg().with_parallel_flush(true);
        let mut net = cluster(6, 37, LatencyModel::constant_ms(10), FaultPlan::new(), cfg);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        for i in 0..6 {
            net.call(MachineId::new(i), |m, _| {
                let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
            });
        }
        net.run_until(SimTime::from_secs(5));
        assert_converged(&net, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(
            net.actor(MachineId::new(5))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(6)
        );
    }

    #[test]
    fn sync_samples_are_recorded_with_plausible_durations() {
        let mut net = fast_cluster(4, 41);
        net.run_until(SimTime::from_secs(5));
        let stats = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .stats();
        assert!(stats.sync_samples.len() >= 10);
        for s in &stats.sync_samples {
            // With 10ms constant latency and 4 machines, a round takes a few
            // dozen ms — never longer than the stall timeout in this test.
            assert!(s.duration >= SimTime::from_millis(20), "{:?}", s);
            assert!(s.duration < SimTime::from_millis(500), "{:?}", s);
            assert!(!s.recovered());
        }
        // Serial flush: more participants, longer rounds (on average).
        let early: Vec<_> = stats
            .sync_samples
            .iter()
            .filter(|s| s.participants == 1)
            .collect();
        let late: Vec<_> = stats
            .sync_samples
            .iter()
            .filter(|s| s.participants == 4)
            .collect();
        if let (Some(e), Some(l)) = (early.first(), late.first()) {
            assert!(l.duration > e.duration);
        }
    }

    #[test]
    fn or_else_and_atomic_ops_flow_through_the_protocol() {
        let mut net = fast_cluster(2, 43);
        net.run_until(SimTime::from_secs(1));
        let (a, b) = {
            let m = net
                .actor_mut(MachineId::new(0))
                .expect("machine is registered on the mesh");
            (
                m.create_instance(Counter { n: 0 }),
                m.create_instance(Counter { n: 0 }),
            )
        };
        net.run_until(SimTime::from_secs(2));
        net.call(MachineId::new(1), |m, _| {
            // Atomic transfer-ish op plus an OrElse fallback.
            let op = SharedOp::atomic(vec![
                SharedOp::primitive(a, "add", args![-1]), // fails: would go negative
                SharedOp::primitive(b, "add", args![1]),
            ])
            .or_else(SharedOp::primitive(b, "add", args![10]));
            assert!(m
                .issue(op)
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(4));
        assert_converged(&net, &[0, 1]);
        let m0 = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh");
        assert_eq!(m0.read::<Counter, _>(a, |c| c.n), Some(0));
        assert_eq!(m0.read::<Counter, _>(b, |c| c.n), Some(10));
    }

    #[test]
    fn registry_must_match_for_foreign_types() {
        // A machine whose registry lacks a type cannot materialize foreign
        // objects; creating locally panics upfront (checked in machine.rs).
        // Here we verify the catalog propagates type names correctly.
        let mut net = fast_cluster(2, 47);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 3 });
        net.run_until(SimTime::from_secs(3));
        let m1 = net
            .actor(MachineId::new(1))
            .expect("machine is registered on the mesh");
        assert_eq!(m1.object_type(obj), Some("Counter"));
        assert_eq!(m1.available_objects().len(), 1);
        assert_eq!(m1.read::<Counter, _>(obj, |c| c.n), Some(3));
    }

    #[test]
    fn guess_state_reflects_local_ops_before_commit() {
        // The heart of the model: reads see local effects immediately, even
        // though the committed state lags until the next synchronization.
        let mut net = fast_cluster(2, 53);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        let m0 = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh");
        m0.issue(SharedOp::primitive(obj, "add", args![9]))
            .expect("issue: the target object is known to this machine");
        assert_eq!(m0.read::<Counter, _>(obj, |c| c.n), Some(9), "sg updated");
        assert_eq!(
            m0.read_committed::<Counter, _>(obj, |c| c.n),
            Some(0),
            "sc unchanged until commit"
        );
        assert_eq!(m0.pending_len(), 1);
    }

    /// Dedicated OpRegistry sharing test: two registries with the same
    /// registrations behave identically (they need not be the same Arc).
    #[test]
    fn distinct_but_equal_registries_interoperate() {
        let netcfg = NetConfig::lan(59).with_latency(LatencyModel::constant_ms(10));
        let mut net = SimNet::new(netcfg);
        net.add_machine(
            MachineId::new(0),
            Machine::new_master(
                MachineId::new(0),
                Arc::new(counter_registry()),
                default_cfg(),
            ),
        );
        net.add_machine(
            MachineId::new(1),
            Machine::new_member(
                MachineId::new(1),
                Arc::new(counter_registry()),
                default_cfg(),
            ),
        );
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        net.call(MachineId::new(1), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![4]))
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(4));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(4)
        );
    }

    #[test]
    fn unknown_object_issue_does_not_poison_protocol() {
        let mut net = fast_cluster(2, 61);
        net.run_until(SimTime::from_secs(1));
        let bogus = ObjectId::new(MachineId::new(9), 0);
        net.call(MachineId::new(1), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(bogus, "add", args![1]))
                .is_err());
        });
        net.run_until(SimTime::from_secs(3));
        // Rounds still complete.
        assert!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .stats()
                .syncs_seen
                > 5
        );
    }

    #[test]
    fn empty_registry_types_are_queryable() {
        let r: Arc<OpRegistry> = Arc::new(counter_registry());
        assert!(r.has_type("Counter"));
        assert!(r.has_method("Counter", "add_capped"));
    }
}

#[cfg(test)]
mod reorder_tests {
    //! White-box schedules that force cross-channel reordering: the
    //! Operations channel outruns the Signals channel, so `Ops` batches
    //! (and even `BeginApply`) arrive before their round's `BeginSync` and
    //! must be buffered.

    use super::*;
    use crate::config::MachineConfig;
    use crate::testutil::{counter_registry, Counter};
    use guesstimate_core::{args, SharedOp};
    use guesstimate_net::{LatencyModel, NetConfig, SimNet};
    use std::sync::Arc;

    fn skewed_cluster(n: u32, ops_ms: u64, signals_ms: u64, seed: u64) -> SimNet<Machine> {
        let registry = Arc::new(counter_registry());
        let netcfg = NetConfig::lan(seed)
            .with_latency(LatencyModel::constant_ms(ops_ms))
            .with_signals_latency(LatencyModel::constant_ms(signals_ms));
        let cfg = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_secs(2))
            .with_join_retry(SimTime::from_millis(300));
        let mut net = SimNet::new(netcfg);
        net.add_machine(
            MachineId::new(0),
            Machine::new_master(MachineId::new(0), registry.clone(), cfg.clone()),
        );
        for i in 1..n {
            net.add_machine(
                MachineId::new(i),
                Machine::new_member(MachineId::new(i), registry.clone(), cfg.clone()),
            );
        }
        net
    }

    fn converged(net: &SimNet<Machine>, n: u32) -> bool {
        let d0 = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .committed_digest();
        (1..n).all(|i| {
            net.actor(MachineId::new(i))
                .expect("machine is registered on the mesh")
                .committed_digest()
                == d0
        }) && (0..n).all(|i| {
            net.actor(MachineId::new(i))
                .expect("machine is registered on the mesh")
                .pending_len()
                == 0
        })
    }

    #[test]
    fn fast_ops_channel_forces_buffering_and_still_converges() {
        // Ops arrive in 1 ms; signals take 40 ms. Every round's Ops batch
        // lands long before its BeginSync.
        let mut net = skewed_cluster(3, 1, 40, 71);
        net.run_until(SimTime::from_secs(3));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(5));
        for i in 0..3u32 {
            for k in 0..8u64 {
                net.schedule_call(
                    SimTime::from_secs(5) + SimTime::from_millis(60 * k + 7 * u64::from(i)),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        net.run_until(SimTime::from_secs(12));
        assert!(converged(&net, 3));
        assert_eq!(
            net.actor(MachineId::new(1))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(24)
        );
        for i in 0..3 {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert!(m.check_guess_invariant());
            assert!(m.stats().max_exec_count <= 3);
        }
    }

    #[test]
    fn slow_ops_channel_delays_apply_until_batches_arrive() {
        // The opposite skew: signals race ahead (1 ms) while op batches
        // crawl (50 ms), so BeginApply regularly precedes the data it
        // authorizes and machines must wait (or request resends).
        let mut net = skewed_cluster(3, 50, 1, 73);
        net.run_until(SimTime::from_secs(3));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(5));
        for i in 0..3u32 {
            net.call(MachineId::new(i), |m, _| {
                let _ = m.issue(SharedOp::primitive(obj, "add", args![2]));
            });
        }
        net.run_until(SimTime::from_secs(12));
        assert!(converged(&net, 3));
        assert_eq!(
            net.actor(MachineId::new(2))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(6)
        );
    }

    #[test]
    fn buffered_rounds_are_bounded() {
        // The future-round buffer must not grow without bound even when a
        // machine is starved of BeginSyncs (signals crawl at 300 ms while
        // the master keeps producing rounds).
        let mut net = skewed_cluster(2, 1, 300, 79);
        net.run_until(SimTime::from_secs(20));
        for i in 0..2 {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert!(
                m.buffered.len() <= 8,
                "m{i}: buffer bounded, got {}",
                m.buffered.len()
            );
        }
    }
}
