//! The composer: wires the role state machines of [`crate::roles`] to the
//! mesh (§4 of the paper).
//!
//! The synchronizer protocol itself — 3-stage master–slave rounds,
//! membership, stall recovery, and the §9 failover election — is decided
//! entirely inside the four sans-IO roles ([`crate::roles::master`],
//! [`crate::roles::participant`], [`crate::roles::membership`],
//! [`crate::roles::election`]). This module owns none of that logic; it
//!
//! 1. implements [`Actor`] for [`Machine`], routing each incoming message
//!    or timer to the right role's `step` (buffering round messages that
//!    arrive before their `BeginSync`, demoting a split-brain master), and
//! 2. **lowers** the returned [`Effect`]s depth-first, in emission order,
//!    onto the context: sends, broadcasts and timers go to the mesh;
//!    store-touching effects (`Flush`, `TryApply`, `SelfRestart`, …) call
//!    into the commit-side machinery of [`crate::exec`]; cross-role
//!    effects (`JoinCohort`, `ServiceJoins`, `BeginApplyLocal`, …) feed
//!    another role and lower its effects recursively.
//!
//! Round overview (the roles' module docs have the details):
//!
//! 1. **AddUpdatesToMesh** — machines flush their pending lists in a fixed
//!    serial order (master first), each batch broadcast on the Operations
//!    channel and confirmed with a `FlushDone` on the Signals channel that
//!    passes the turn.
//! 2. **ApplyUpdatesFromMesh** — when every participant has flushed, the
//!    master broadcasts `BeginApply` with the authoritative per-machine op
//!    counts; each machine waits for all expected operations, applies them
//!    to its committed state in lexicographic `(machineID, opnumber)` order,
//!    acknowledges, then copies committed onto guesstimated state, runs its
//!    pending completion routines and replays its still-pending operations.
//! 3. **FlagCompletion** — when all acknowledgments are in, the master
//!    broadcasts `SyncComplete` and may start the next round any time after.

use std::sync::Arc;

use guesstimate_core::MachineId;
use guesstimate_net::{Actor, Channel, Ctx, TraceEvent};

use crate::machine::Machine;
use crate::message::{Msg, WireEnvelope};
use crate::roles::election::ElectionEvent;
use crate::roles::master::MasterEvent;
use crate::roles::membership::MembershipEvent;
use crate::roles::participant::ParticipantEvent;
use crate::roles::{tag, Effect, OpsBatch};

fn msg_round(msg: &Msg) -> Option<u64> {
    match msg {
        Msg::BeginSync { round, .. }
        | Msg::Ops { round, .. }
        | Msg::FlushDone { round, .. }
        | Msg::BeginApply { round, .. }
        | Msg::OpsRequest { round }
        | Msg::Ack { round, .. }
        | Msg::SyncComplete { round }
        | Msg::RoundUpdate { round, .. } => Some(*round),
        _ => None,
    }
}

impl Actor for Machine {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master {
            ctx.set_timer(self.cfg.sync_period, tag::encode(tag::MASTER_TICK, 0));
        } else {
            ctx.broadcast(Channel::Signals, Msg::JoinRequest { machine: self.id });
            ctx.set_timer(
                self.cfg.join_retry,
                tag::encode(tag::MEMBERSHIP_JOIN_RETRY, 0),
            );
            self.election.last_master_activity = ctx.now();
            if let Some(timeout) = self.cfg.master_failover {
                ctx.set_timer(timeout, tag::encode(tag::ELECTION_WATCHDOG, 0));
            }
        }
        self.paranoid_check("on_start");
    }

    fn on_message(&mut self, from: MachineId, _channel: Channel, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        // Master-originated traffic feeds the failover watchdog; a master
        // hearing round traffic from a *lower-id* master yields (split-brain
        // healing after a failover race).
        match &msg {
            Msg::BeginSync { .. }
            | Msg::BeginApply { .. }
            | Msg::SyncComplete { .. }
            | Msg::RoundUpdate { .. }
            | Msg::JoinInfo { .. }
            | Msg::MasterHeartbeat => {
                if self.is_master {
                    if from < self.id {
                        self.demote_and_rejoin(ctx);
                    }
                } else {
                    let fx =
                        self.election
                            .step(ElectionEvent::MasterActivity, ctx.now(), &self.cfg);
                    debug_assert!(fx.is_empty());
                }
            }
            _ => {}
        }
        match msg {
            Msg::JoinRequest { machine } => self.handle_join_request(machine, ctx),
            Msg::JoinInfo {
                catalog,
                completed,
                completed_serialized,
                async_watermarks,
            } => self.handle_join_info(
                from,
                catalog,
                completed,
                completed_serialized,
                async_watermarks,
                ctx,
            ),
            Msg::AsyncOp { aseq, env } => self.handle_async_op(from, aseq, env, ctx.now()),
            Msg::JoinReady { machine } => self.handle_join_ready(machine, ctx),
            Msg::Leave { machine } => self.handle_leave(machine, ctx),
            Msg::Restart => self.self_restart(ctx),
            Msg::BeginSync { round, order } => self.handle_begin_sync(round, order, ctx),
            Msg::MasterCandidate {
                machine,
                last_round,
            } => self.handle_master_candidate(machine, last_round, ctx),
            Msg::MasterHeartbeat => {}
            other => self.route_round_msg(from, other, ctx),
        }
        self.paranoid_check("on_message");
    }

    fn on_timer(&mut self, timer_tag: u64, ctx: &mut Ctx<'_, Msg>) {
        match tag::kind(timer_tag) {
            tag::MASTER_TICK => self.handle_tick(ctx),
            tag::MASTER_STAGE1 => self.step_master(
                MasterEvent::Stage1Timeout {
                    round: tag::round(timer_tag),
                },
                ctx,
            ),
            tag::MASTER_STAGE2 => self.step_master(
                MasterEvent::Stage2Timeout {
                    round: tag::round(timer_tag),
                },
                ctx,
            ),
            tag::MEMBERSHIP_JOIN_RETRY => self.handle_join_retry(ctx),
            tag::ELECTION_WATCHDOG => self.handle_watchdog(ctx),
            tag::ELECTION_END => self.step_election(
                ElectionEvent::WindowClosed {
                    gen: tag::round(timer_tag),
                },
                ctx,
            ),
            _ => {}
        }
        self.paranoid_check("on_timer");
    }

    fn msg_size(msg: &Msg) -> u64 {
        msg.wire_size()
    }

    fn msg_kind(msg: &Msg) -> &'static str {
        match msg {
            Msg::BeginSync { .. } => "begin_sync",
            Msg::Ops { .. } => "ops",
            Msg::FlushDone { .. } => "flush_done",
            Msg::BeginApply { .. } => "begin_apply",
            Msg::OpsRequest { .. } => "ops_request",
            Msg::Ack { .. } => "ack",
            Msg::SyncComplete { .. } => "sync_complete",
            Msg::RoundUpdate { .. } => "round_update",
            Msg::AsyncOp { .. } => "async_op",
            Msg::Restart => "restart",
            Msg::MasterCandidate { .. } => "master_candidate",
            Msg::MasterHeartbeat => "master_heartbeat",
            Msg::JoinRequest { .. } => "join_request",
            Msg::JoinInfo { .. } => "join_info",
            Msg::JoinReady { .. } => "join_ready",
            Msg::Leave { .. } => "leave",
        }
    }
}

impl Machine {
    // ------------------------------------------------------------------
    // Role stepping + effect lowering
    // ------------------------------------------------------------------

    fn step_master(&mut self, ev: MasterEvent, ctx: &mut Ctx<'_, Msg>) {
        let fx = self.master.step(ev, ctx.now(), &self.cfg);
        self.lower(fx, ctx);
    }

    fn step_participant(&mut self, ev: ParticipantEvent, ctx: &mut Ctx<'_, Msg>) {
        let fx = self.participant.step(ev, ctx.now(), &self.cfg);
        self.lower(fx, ctx);
    }

    fn step_membership(&mut self, ev: MembershipEvent, ctx: &mut Ctx<'_, Msg>) {
        let fx = self.membership.step(ev, ctx.now(), &self.cfg);
        self.lower(fx, ctx);
    }

    fn step_election(&mut self, ev: ElectionEvent, ctx: &mut Ctx<'_, Msg>) {
        let fx = self.election.step(ev, ctx.now(), &self.cfg);
        self.lower(fx, ctx);
    }

    /// Lowers role effects depth-first, in emission order. The order is
    /// observable (message sends, timer arms, trace records), so it must
    /// not be re-arranged.
    fn lower(&mut self, effects: Vec<Effect>, ctx: &mut Ctx<'_, Msg>) {
        for fx in effects {
            match fx {
                Effect::Send { to, channel, msg } => ctx.send(to, channel, msg),
                Effect::Broadcast { channel, msg } => ctx.broadcast(channel, msg),
                Effect::SetTimer { after, tag } => ctx.set_timer(after, tag),
                Effect::Trace(event) => self.trace(ctx.now(), event),
                Effect::StartLocalRound { round, order } => {
                    self.participant.start_local_round(round, order)
                }
                Effect::Flush => self.do_flush(ctx),
                Effect::RebroadcastFlush => self.rebroadcast_flush(ctx),
                Effect::MaybeFlushOnTurn => self.maybe_flush_on_turn(ctx),
                Effect::TryApply => self.try_apply(ctx),
                Effect::RetryApply => {
                    if let Some(rs) = self.participant.round.as_mut() {
                        rs.resend_requested.clear();
                    }
                    self.try_apply(ctx);
                }
                Effect::ReplayBuffered(msgs) => {
                    for (from, msg) in msgs {
                        self.dispatch_round_msg(from, msg, ctx);
                    }
                }
                Effect::JoinCohort => self.membership.in_cohort = true,
                Effect::CountSync => self.stats.syncs_seen += 1,
                Effect::SelfRestart => self.self_restart(ctx),
                Effect::ServiceJoins => self.service_joins(ctx),
                Effect::SendJoinInfo { to } => {
                    let (catalog, completed, completed_serialized, async_watermarks) =
                        self.build_join_info();
                    ctx.send(
                        to,
                        Channel::Signals,
                        Msg::JoinInfo {
                            catalog,
                            completed,
                            completed_serialized,
                            async_watermarks,
                        },
                    );
                }
                Effect::BeginApplyLocal { round, counts } => {
                    self.step_participant(ParticipantEvent::BeginApply { round, counts }, ctx)
                }
                Effect::RemoveFromRound { machine } => {
                    if let Some(rs) = self.participant.round.as_mut() {
                        rs.removed.insert(machine);
                    }
                    self.membership.members.remove(&machine);
                }
                Effect::ClearRound => {
                    // The master finished the round: fenced async-window
                    // entries are delivered everywhere, so trim before the
                    // round state (and its piggyback record) goes away.
                    self.trim_async_window();
                    self.participant.round = None;
                }
                Effect::RoundFinished { sample } => {
                    self.telemetry.round_finished(
                        sample.duration,
                        sample.flush_duration,
                        sample.apply_duration,
                        sample.completion_duration,
                        sample.resends,
                        sample.removals,
                    );
                    self.trace(
                        ctx.now(),
                        TraceEvent::SyncComplete {
                            round: sample.round,
                            ops_committed: sample.ops_committed,
                        },
                    );
                    self.stats.syncs_seen += 1;
                    self.stats.sync_samples.push(sample);
                }
                Effect::RearmStage2 { round } => {
                    if self.master.round_active() {
                        ctx.set_timer(
                            self.cfg.stall_timeout,
                            tag::encode(tag::MASTER_STAGE2, round),
                        );
                    }
                }
                Effect::Promote => self.promote(ctx),
                Effect::DeferToWinner => self.defer_to_winner(ctx),
            }
        }
    }

    // ------------------------------------------------------------------
    // Round-message routing (with buffering for out-of-order arrival)
    // ------------------------------------------------------------------

    fn route_round_msg(&mut self, from: MachineId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        // The flush-piggybacked async window (the round-boundary fence)
        // applies *before* round gating: it repairs lost `AsyncOp`
        // broadcasts whether the carrying `Ops` message is current,
        // buffered early, stale, or a resend — the per-sender watermark
        // absorbs any duplicate.
        if let Msg::Ops {
            machine, asyncs, ..
        } = &msg
        {
            if !asyncs.is_empty() {
                let (machine, asyncs) = (*machine, Arc::clone(asyncs));
                self.apply_async_batch(machine, &asyncs, ctx.now());
            }
        }
        let Some(round) = msg_round(&msg) else { return };
        match self.participant.active_round() {
            Some(r) if r == round => self.dispatch_round_msg(from, msg, ctx),
            Some(r) if r > round => {} // stale round: drop
            _ => {
                // No active round, or a future round: buffer until BeginSync
                // arrives (the Signals and Operations channels are
                // independently delayed, so reordering is normal).
                self.participant.buffer_early(round, from, msg);
            }
        }
    }

    fn dispatch_round_msg(&mut self, from: MachineId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Ops { machine, ops, .. } => {
                self.step_participant(ParticipantEvent::Ops { machine, ops }, ctx)
            }
            Msg::FlushDone { machine, count, .. } => self.note_flush_done(machine, count, ctx),
            Msg::BeginApply { round, counts } => {
                self.step_participant(ParticipantEvent::BeginApply { round, counts }, ctx)
            }
            Msg::OpsRequest { round } => self.step_participant(
                ParticipantEvent::OpsRequest {
                    round,
                    requester: from,
                },
                ctx,
            ),
            Msg::Ack { machine, .. } if self.is_master => {
                self.step_master(MasterEvent::Ack { machine }, ctx);
            }
            Msg::SyncComplete { .. } => {
                // The round completed everywhere: trim the async fence
                // window while the round state still records what this
                // machine's flush piggybacked.
                self.trim_async_window();
                self.step_participant(ParticipantEvent::SyncComplete, ctx)
            }
            Msg::RoundUpdate { removed, .. } => {
                self.step_participant(ParticipantEvent::RoundUpdate { removed }, ctx)
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Stage 1: AddUpdatesToMesh (store-touching flush machinery)
    // ------------------------------------------------------------------

    fn handle_begin_sync(&mut self, round: u64, order: Vec<MachineId>, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master || !self.membership.joined_system {
            return;
        }
        let in_cohort = self.membership.in_cohort;
        self.step_participant(
            ParticipantEvent::BeginSync {
                round,
                order,
                in_cohort,
            },
            ctx,
        );
    }

    /// Flushes the pending list: broadcast the batch on the Operations
    /// channel, then confirm (and pass the turn) on the Signals channel.
    ///
    /// The batch is built once and shared behind an [`Arc`]: the broadcast
    /// fan-out, the stored `my_flush` copy and any later `OpsRequest` reply
    /// all reuse the same allocation.
    fn do_flush(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // The round-boundary fence: piggyback the not-yet-fenced async
        // window on this flush (empty unless async_commit is on).
        let asyncs = self.take_async_window();
        let Some(rs) = self.participant.round.as_mut() else {
            return;
        };
        if rs.flushed {
            return;
        }
        rs.flushed = true;
        let batch: OpsBatch = Arc::new(self.pending.iter().cloned().collect());
        rs.my_flush = Arc::clone(&batch);
        rs.my_asyncs = Arc::clone(&asyncs);
        let count = batch.len() as u64;
        // Our own ops participate in the consolidated list directly.
        rs.received.insert(
            self.id,
            batch.iter().map(|e| (e.id, e.op.clone())).collect(),
        );
        let round = rs.round;
        self.telemetry.pending_depth(count);
        for e in batch.iter() {
            self.telemetry.op_flushed(e.id, ctx.now());
        }
        if count > 0 || !asyncs.is_empty() {
            ctx.broadcast(
                Channel::Operations,
                Msg::Ops {
                    round,
                    machine: self.id,
                    ops: batch,
                    asyncs,
                },
            );
            self.trace(ctx.now(), TraceEvent::OpsBatchSent { round, ops: count });
        }
        ctx.broadcast(
            Channel::Signals,
            Msg::FlushDone {
                round,
                machine: self.id,
                count,
            },
        );
        self.note_flush_done(self.id, count, ctx);
    }

    /// Re-announces an already-performed flush (recovery nudge path).
    fn rebroadcast_flush(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(rs) = self.participant.round.as_ref() else {
            return;
        };
        let round = rs.round;
        let count = rs.my_flush.len() as u64;
        if count > 0 || !rs.my_asyncs.is_empty() {
            let ops = Arc::clone(&rs.my_flush);
            let asyncs = Arc::clone(&rs.my_asyncs);
            ctx.broadcast(
                Channel::Operations,
                Msg::Ops {
                    round,
                    machine: self.id,
                    ops,
                    asyncs,
                },
            );
            self.trace(ctx.now(), TraceEvent::OpsBatchSent { round, ops: count });
        }
        ctx.broadcast(
            Channel::Signals,
            Msg::FlushDone {
                round,
                machine: self.id,
                count,
            },
        );
    }

    /// Records a `FlushDone` in the participant round, then feeds it to
    /// whichever side reacts: the master role tracks stage completion, a
    /// plain participant checks whether the turn passed to it.
    fn note_flush_done(&mut self, machine: MachineId, count: u64, ctx: &mut Ctx<'_, Msg>) {
        let Some(rs) = self.participant.round.as_mut() else {
            return;
        };
        rs.flush_done.insert(machine, count);
        if self.is_master {
            self.step_master(MasterEvent::FlushDone { machine, count }, ctx);
        } else {
            self.maybe_flush_on_turn(ctx);
        }
    }

    /// Serial turn-taking: flush once every earlier machine in the round
    /// order has flushed (or been removed).
    fn maybe_flush_on_turn(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let ready = self
            .participant
            .round
            .as_ref()
            .is_some_and(|rs| rs.my_turn(self.id));
        if ready {
            self.do_flush(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: ApplyUpdatesFromMesh (store-touching apply machinery)
    // ------------------------------------------------------------------

    /// Applies the round as soon as every expected operation has arrived;
    /// requests per-source resends for anything missing.
    fn try_apply(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let (round, missing) = {
            let Some(rs) = self.participant.round.as_ref() else {
                return;
            };
            if rs.applied {
                return;
            }
            let Some(counts) = rs.counts.as_ref() else {
                return;
            };
            let missing: Vec<MachineId> = counts
                .iter()
                .filter(|(m, c)| (rs.received.get(m).map_or(0, |ops| ops.len() as u64)) < **c)
                .map(|(m, _)| *m)
                .collect();
            (rs.round, missing)
        };
        if !missing.is_empty() {
            let mut requested = Vec::new();
            {
                let rs = self.participant.round.as_mut().expect("round active");
                for m in missing {
                    if m != self.id && rs.resend_requested.insert(m) {
                        requested.push(m);
                    }
                }
            }
            for m in requested {
                ctx.send(m, Channel::Operations, Msg::OpsRequest { round });
                self.trace(
                    ctx.now(),
                    TraceEvent::OpsResendRequested { round, source: m },
                );
            }
            return;
        }
        // Assemble the consolidated pending list in lexicographic
        // (machineID, operationnumber) order and commit it.
        let ordered: Vec<WireEnvelope> = {
            let rs = self.participant.round.as_mut().expect("round active");
            let counts = rs.counts.as_ref().expect("counts known");
            let mut ordered = Vec::new();
            for (m, _) in counts.iter() {
                if let Some(ops) = rs.received.get(m) {
                    ordered.extend(ops.iter().map(|(id, op)| WireEnvelope {
                        id: *id,
                        op: op.clone(),
                    }));
                }
            }
            // counts is a BTreeMap (sorted by machine) and each inner map is
            // sorted by OpId, so `ordered` is already lexicographic; the
            // debug assertion guards the invariant.
            debug_assert!(ordered.windows(2).all(|w| w[0].id < w[1].id));
            rs.received.clear();
            ordered
        };
        let n = self.apply_committed_round(ordered, round, ctx.now());
        // After the replay the pending list is exactly the set of ops on
        // `sg` but not yet in `sc` — the guesstimate-health divergence.
        self.telemetry.divergence(self.pending.len() as u64);
        let (round, master) = {
            let rs = self.participant.round.as_mut().expect("round active");
            rs.applied = true;
            (rs.round, rs.order[0])
        };
        self.participant.next_round_expected = Some(round + 1);
        if self.is_master {
            self.step_master(MasterEvent::RoundApplied { ops_committed: n }, ctx);
        } else {
            ctx.send(
                master,
                Channel::Signals,
                Msg::Ack {
                    round,
                    machine: self.id,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Master: round initiation
    // ------------------------------------------------------------------

    fn handle_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master {
            return;
        }
        if self.participant.round.is_some() {
            return; // stage timers drive the active round
        }
        self.service_joins(ctx);
        let order: Vec<MachineId> = self.membership.members().iter().copied().collect();
        self.step_master(MasterEvent::BeginRound { order }, ctx);
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn handle_join_request(&mut self, machine: MachineId, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master {
            return;
        }
        self.step_membership(MembershipEvent::JoinRequest { machine }, ctx);
    }

    /// Between rounds, ship `JoinInfo` to every machine whose handshake
    /// needs (re)starting. The epoch (completed-history length) recorded at
    /// send time guarantees a machine is only admitted if no operation
    /// committed since its snapshot was taken.
    fn service_joins(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master || self.participant.round.is_some() {
            return;
        }
        let epoch = self.completed.len() as u64;
        self.step_membership(MembershipEvent::ServiceJoins { epoch }, ctx);
    }

    fn handle_join_info(
        &mut self,
        from: MachineId,
        catalog: Vec<crate::message::ObjectInit>,
        completed: Vec<guesstimate_core::OpId>,
        completed_serialized: Vec<guesstimate_core::OpId>,
        async_watermarks: Vec<(MachineId, u64)>,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        if self.is_master {
            return;
        }
        if !self.membership.in_cohort {
            self.init_from_join_info(
                catalog,
                completed,
                completed_serialized,
                async_watermarks,
                ctx.now(),
            );
        }
        ctx.send(from, Channel::Signals, Msg::JoinReady { machine: self.id });
    }

    fn handle_join_ready(&mut self, machine: MachineId, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master {
            return;
        }
        let epoch = self.completed.len() as u64;
        let round_active = self.participant.round.is_some();
        self.step_membership(
            MembershipEvent::JoinReady {
                machine,
                epoch,
                round_active,
            },
            ctx,
        );
    }

    fn handle_leave(&mut self, machine: MachineId, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_master {
            return;
        }
        self.step_membership(MembershipEvent::Leave { machine }, ctx);
    }

    /// Gracefully leaves the system (application API): intimates the master
    /// so it is excluded "from the next synchronization onward" (§4).
    ///
    /// Replicated state, pending operations and completion routines are
    /// retained, so a departed machine can keep working offline and later
    /// [`Machine::come_online`] — the §9 "Off-line updates" extension.
    pub fn leave(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.broadcast(Channel::Signals, Msg::Leave { machine: self.id });
        self.membership.joined_system = false;
        self.membership.in_cohort = false;
        self.participant.round = None;
        self.participant.buffered.clear();
    }

    /// §9 "Off-line updates": detaches from the system while continuing to
    /// operate. The machine keeps its last known committed and guesstimated
    /// state and may keep issuing operations — they accumulate on the
    /// pending list and execute optimistically against the (now frozen)
    /// guesstimate. Alias of [`Machine::leave`].
    ///
    /// The longer the machine stays offline, the larger "the scope for
    /// discrepancy and conflicts" (§9): operations issued offline are
    /// re-validated at commit time after rejoining, and completion routines
    /// report any that fail.
    pub fn go_offline(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.leave(ctx);
    }

    /// Re-enters the system after [`Machine::go_offline`]. The membership
    /// handshake re-initializes the committed state from the master's
    /// snapshot; operations issued while offline are *preserved*, replayed
    /// onto the fresh guesstimate, and committed in the machine's first
    /// round back.
    pub fn come_online(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.broadcast(Channel::Signals, Msg::JoinRequest { machine: self.id });
        ctx.set_timer(
            self.cfg.join_retry,
            tag::encode(tag::MEMBERSHIP_JOIN_RETRY, 0),
        );
    }

    /// Join retries continue until the machine participates in a round
    /// (`in_cohort`), covering lost `JoinRequest`, `JoinInfo` and
    /// `JoinReady` messages alike.
    fn handle_join_retry(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master {
            return;
        }
        self.step_membership(MembershipEvent::JoinRetryTimer, ctx);
    }

    // ------------------------------------------------------------------
    // Master failover (§9 extension; off by default)
    // ------------------------------------------------------------------

    fn handle_watchdog(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master {
            return;
        }
        let in_cohort = self.membership.in_cohort;
        let last_round_applied = self.participant.election_round_hint();
        self.step_election(
            ElectionEvent::Watchdog {
                in_cohort,
                last_round_applied,
            },
            ctx,
        );
    }

    fn handle_master_candidate(
        &mut self,
        machine: MachineId,
        last_round: u64,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        if self.is_master {
            // The master is alive: quell the election.
            ctx.broadcast(Channel::Signals, Msg::MasterHeartbeat);
            return;
        }
        let in_cohort = self.membership.in_cohort;
        let last_round_applied = self.participant.election_round_hint();
        self.step_election(
            ElectionEvent::Candidate {
                machine,
                last_round,
                in_cohort,
                last_round_applied,
            },
            ctx,
        );
    }

    fn promote(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.is_master = true;
        self.membership.joined_system = true;
        self.membership.in_cohort = true;
        self.membership.members.clear();
        self.membership.members.insert(self.id);
        self.membership.pending_joins.clear();
        self.participant.round = None;
        self.master.active = None;
        // Skip a round number in case the dead master's last round was
        // partially committed somewhere.
        self.master.next_round = self.participant.election_round_hint() + 2;
        self.stats.promotions += 1;
        self.trace(
            ctx.now(),
            TraceEvent::ElectionWon {
                round: self.master.next_round,
            },
        );
        ctx.broadcast(Channel::Signals, Msg::MasterHeartbeat);
        ctx.set_timer(self.cfg.sync_period, tag::encode(tag::MASTER_TICK, 0));
    }

    /// Defers to the election winner: rejoin through the membership path
    /// (pending operations are preserved, as in go_offline).
    fn defer_to_winner(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.membership.joined_system = false;
        self.membership.in_cohort = false;
        self.participant.round = None;
        self.participant.buffered.clear();
        self.come_online(ctx);
    }

    /// A master that lost a split-brain race steps down and rejoins.
    fn demote_and_rejoin(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.is_master = false;
        self.master.active = None;
        self.membership.members.clear();
        self.membership.pending_joins.clear();
        self.membership.joined_system = false;
        self.membership.in_cohort = false;
        self.participant.round = None;
        self.participant.buffered.clear();
        self.election.last_master_activity = ctx.now();
        self.come_online(ctx);
        if let Some(timeout) = self.cfg.master_failover {
            ctx.set_timer(timeout, tag::encode(tag::ELECTION_WATCHDOG, 0));
        }
    }

    fn self_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_master {
            return; // master failure/restart is not tolerated (§9)
        }
        self.reset_for_restart();
        self.trace(ctx.now(), TraceEvent::Restarted);
        ctx.broadcast(Channel::Signals, Msg::JoinRequest { machine: self.id });
        ctx.set_timer(
            self.cfg.join_retry,
            tag::encode(tag::MEMBERSHIP_JOIN_RETRY, 0),
        );
    }
}
