//! Master-failover election (§9 extension; off by default).
//!
//! Members watch for master silence. When the silence exceeds the
//! configured threshold, a member broadcasts its candidacy (ranked by
//! committed progress); hearing a candidacy makes other members join the
//! cascade. When the window closes, the best candidate — most rounds
//! applied, ties to the smallest id — promotes itself; everyone else
//! rejoins under the winner. A live master quells any election with a
//! heartbeat.

use std::collections::BTreeMap;

use guesstimate_core::MachineId;
use guesstimate_net::{Channel, SimTime, TraceEvent};

use crate::config::MachineConfig;
use crate::message::Msg;
use crate::roles::{tag, Effect};

/// Inputs to the election role.
#[derive(Debug)]
pub enum ElectionEvent {
    /// Master-originated traffic arrived: note liveness, quell elections.
    MasterActivity,
    /// The silence watchdog fired.
    Watchdog {
        /// Whether this machine currently participates in rounds.
        in_cohort: bool,
        /// This machine's committed progress (election rank).
        last_round_applied: u64,
    },
    /// Another machine announced its candidacy.
    Candidate {
        /// The candidate.
        machine: MachineId,
        /// Its committed progress.
        last_round: u64,
        /// Whether this machine currently participates in rounds.
        in_cohort: bool,
        /// This machine's committed progress (election rank).
        last_round_applied: u64,
    },
    /// The candidacy window for the given generation closed.
    WindowClosed {
        /// Generation stamped into the window's timer tag.
        gen: u64,
    },
}

/// The election state machine (member side).
#[derive(Debug)]
pub struct ElectionRole {
    me: MachineId,
    /// Known candidacies (`None` when no election is in progress).
    pub(crate) candidates: Option<BTreeMap<MachineId, u64>>,
    /// Election generation; stamps window timers so stale ones are ignored.
    pub(crate) gen: u64,
    /// Last time master-originated traffic was heard.
    pub(crate) last_master_activity: SimTime,
}

impl ElectionRole {
    /// A fresh role for machine `me`.
    pub fn new(me: MachineId) -> Self {
        ElectionRole {
            me,
            candidates: None,
            gen: 0,
            last_master_activity: SimTime::ZERO,
        }
    }

    /// Pure transition: consumes one event, returns the effects to lower.
    pub fn step(&mut self, ev: ElectionEvent, now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        match ev {
            ElectionEvent::MasterActivity => {
                self.last_master_activity = now;
                // A live master quells any election in progress.
                self.candidates = None;
                Vec::new()
            }
            ElectionEvent::Watchdog {
                in_cohort,
                last_round_applied,
            } => {
                let Some(timeout) = cfg.master_failover else {
                    return Vec::new();
                };
                let silence = now.saturating_since(self.last_master_activity);
                let mut fx = Vec::new();
                if silence >= timeout && in_cohort && self.candidates.is_none() {
                    fx.extend(self.start_election(last_round_applied, cfg));
                }
                fx.push(Effect::SetTimer {
                    after: timeout,
                    tag: tag::encode(tag::ELECTION_WATCHDOG, 0),
                });
                fx
            }
            ElectionEvent::Candidate {
                machine,
                last_round,
                in_cohort,
                last_round_applied,
            } => {
                if cfg.master_failover.is_none() || !in_cohort {
                    return Vec::new();
                }
                let mut fx = Vec::new();
                if self.candidates.is_none() {
                    // Join the cascade with our own candidacy.
                    fx.extend(self.start_election(last_round_applied, cfg));
                }
                if let Some(candidates) = self.candidates.as_mut() {
                    candidates.insert(machine, last_round);
                }
                fx
            }
            ElectionEvent::WindowClosed { gen } => {
                if gen != self.gen {
                    return Vec::new(); // stale window
                }
                let Some(candidates) = self.candidates.take() else {
                    return Vec::new(); // quelled by a heartbeat
                };
                // Winner: most committed progress, ties to the smallest id.
                let winner = candidates
                    .iter()
                    .max_by_key(|(id, lr)| (**lr, std::cmp::Reverse(**id)))
                    .map(|(id, _)| *id)
                    .expect("own candidacy present");
                if winner == self.me {
                    vec![Effect::Promote]
                } else {
                    vec![Effect::DeferToWinner]
                }
            }
        }
    }

    fn start_election(&mut self, last_round: u64, cfg: &MachineConfig) -> Vec<Effect> {
        let mut candidates = BTreeMap::new();
        candidates.insert(self.me, last_round);
        self.candidates = Some(candidates);
        self.gen += 1;
        vec![
            Effect::Trace(TraceEvent::ElectionStarted { last_round }),
            Effect::Broadcast {
                channel: Channel::Signals,
                msg: Msg::MasterCandidate {
                    machine: self.me,
                    last_round,
                },
            },
            // The election window must comfortably cover a candidacy
            // cascade (a couple of one-way latencies); the stall timeout
            // does.
            Effect::SetTimer {
                after: cfg.stall_timeout,
                tag: tag::encode(tag::ELECTION_END, self.gen),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    //! Pure step-level tests: no net driver, no clock — events in,
    //! effects out.

    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::default().with_master_failover(SimTime::from_secs(4))
    }

    fn id(n: u32) -> MachineId {
        MachineId::new(n)
    }

    fn close_window(role: &mut ElectionRole, c: &MachineConfig) -> Vec<Effect> {
        let gen = role.gen;
        role.step(
            ElectionEvent::WindowClosed { gen },
            SimTime::from_secs(9),
            c,
        )
    }

    #[test]
    fn silence_past_threshold_starts_a_candidacy() {
        let c = cfg();
        let mut e = ElectionRole::new(id(2));
        let fx = e.step(
            ElectionEvent::Watchdog {
                in_cohort: true,
                last_round_applied: 5,
            },
            SimTime::from_secs(10),
            &c,
        );
        assert!(matches!(
            fx[0],
            Effect::Trace(TraceEvent::ElectionStarted { last_round: 5 })
        ));
        assert!(matches!(
            fx[1],
            Effect::Broadcast {
                msg: Msg::MasterCandidate { last_round: 5, .. },
                ..
            }
        ));
        // Window timer is generation-stamped; watchdog re-arms last.
        assert!(
            matches!(fx[2], Effect::SetTimer { tag: t, .. } if tag::kind(t) == tag::ELECTION_END && tag::round(t) == 1)
        );
        assert!(
            matches!(fx[3], Effect::SetTimer { tag: t, .. } if tag::kind(t) == tag::ELECTION_WATCHDOG)
        );
        assert_eq!(e.gen, 1);
    }

    #[test]
    fn tie_breaking_ranks_by_round_then_lowest_id() {
        let c = cfg();
        // Machine 3 has the most committed progress: it wins outright.
        let mut e = ElectionRole::new(id(3));
        e.step(
            ElectionEvent::Watchdog {
                in_cohort: true,
                last_round_applied: 9,
            },
            SimTime::from_secs(10),
            &c,
        );
        for (m, lr) in [(1u32, 7u64), (2, 8)] {
            e.step(
                ElectionEvent::Candidate {
                    machine: id(m),
                    last_round: lr,
                    in_cohort: true,
                    last_round_applied: 9,
                },
                SimTime::from_secs(10),
                &c,
            );
        }
        assert!(matches!(close_window(&mut e, &c)[..], [Effect::Promote]));

        // Equal progress: the lowest id wins, everyone else defers.
        let mut e = ElectionRole::new(id(3));
        e.step(
            ElectionEvent::Watchdog {
                in_cohort: true,
                last_round_applied: 9,
            },
            SimTime::from_secs(10),
            &c,
        );
        e.step(
            ElectionEvent::Candidate {
                machine: id(1),
                last_round: 9,
                in_cohort: true,
                last_round_applied: 9,
            },
            SimTime::from_secs(10),
            &c,
        );
        assert!(matches!(
            close_window(&mut e, &c)[..],
            [Effect::DeferToWinner]
        ));
    }

    #[test]
    fn heartbeat_quells_a_pending_candidacy() {
        let c = cfg();
        let mut e = ElectionRole::new(id(1));
        e.step(
            ElectionEvent::Watchdog {
                in_cohort: true,
                last_round_applied: 3,
            },
            SimTime::from_secs(10),
            &c,
        );
        assert!(e.candidates.is_some());
        // Master-originated traffic (e.g. a MasterHeartbeat) lands.
        let fx = e.step(ElectionEvent::MasterActivity, SimTime::from_secs(11), &c);
        assert!(fx.is_empty());
        assert!(e.candidates.is_none(), "candidacy quelled");
        // The already-armed window fires: nothing happens.
        assert!(close_window(&mut e, &c).is_empty());
        // And a fresh watchdog within the silence threshold stays quiet.
        let fx = e.step(
            ElectionEvent::Watchdog {
                in_cohort: true,
                last_round_applied: 3,
            },
            SimTime::from_secs(12),
            &c,
        );
        assert_eq!(fx.len(), 1, "only the watchdog re-arm");
        assert!(
            matches!(fx[0], Effect::SetTimer { tag: t, .. } if tag::kind(t) == tag::ELECTION_WATCHDOG)
        );
    }

    #[test]
    fn out_of_cohort_machines_do_not_stand() {
        let c = cfg();
        let mut e = ElectionRole::new(id(1));
        let fx = e.step(
            ElectionEvent::Watchdog {
                in_cohort: false,
                last_round_applied: 0,
            },
            SimTime::from_secs(10),
            &c,
        );
        assert_eq!(fx.len(), 1, "re-arm only");
        assert!(e.candidates.is_none());
        // Hearing a candidacy while out of the cohort is ignored too.
        let fx = e.step(
            ElectionEvent::Candidate {
                machine: id(2),
                last_round: 4,
                in_cohort: false,
                last_round_applied: 0,
            },
            SimTime::from_secs(10),
            &c,
        );
        assert!(fx.is_empty());
        assert!(e.candidates.is_none());
    }

    #[test]
    fn stale_window_generations_are_ignored() {
        let c = cfg();
        let mut e = ElectionRole::new(id(1));
        e.step(
            ElectionEvent::Watchdog {
                in_cohort: true,
                last_round_applied: 2,
            },
            SimTime::from_secs(10),
            &c,
        );
        assert_eq!(e.gen, 1);
        let fx = e.step(
            ElectionEvent::WindowClosed { gen: 0 },
            SimTime::from_secs(11),
            &c,
        );
        assert!(fx.is_empty());
        assert!(e.candidates.is_some(), "election still pending");
    }
}
