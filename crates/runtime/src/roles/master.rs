//! The master side of the §4 synchronizer: round initiation, stage
//! tracking, stall recovery, and completion.
//!
//! The master drives each round through three stages — flush
//! (`AddUpdatesToMesh`), apply (`ApplyUpdatesFromMesh`), completion
//! (`FlagCompletion`) — and recovers from stalls by first *resending* the
//! signal a silent machine failed to answer, then removing it from the
//! round. This role owns the [`MasterRound`] bookkeeping plus mirrors of
//! the round order and removed set, so every master decision is a pure
//! function of its own state.

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::MachineId;
use guesstimate_net::{Channel, SimTime, TraceEvent};

use crate::config::MachineConfig;
use crate::message::Msg;
use crate::roles::{tag, Effect};
use crate::stats::SyncSample;

/// Which stage the master is driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: participants flush their pending lists.
    Flush,
    /// Stage 2: participants apply the consolidated list and acknowledge.
    Apply,
}

/// Master-side bookkeeping for the round in progress.
#[derive(Debug)]
pub struct MasterRound {
    /// Round number.
    pub(crate) round: u64,
    /// When `BeginSync` went out.
    pub(crate) started_at: SimTime,
    /// When the master broadcast `BeginApply`, ending stage 1. `None` while
    /// the round is still flushing; used to decompose the round duration
    /// into per-stage timings in the final [`SyncSample`].
    pub(crate) apply_started_at: Option<SimTime>,
    /// Current stage.
    pub(crate) stage: Stage,
    /// The flush order announced in `BeginSync` (mirror of the master's own
    /// participant state; the master is the only writer of both).
    pub(crate) order: Vec<MachineId>,
    /// Machines removed from this round (mirror, same invariant).
    pub(crate) removed: BTreeSet<MachineId>,
    /// Per-machine flushed-op counts from `FlushDone` signals.
    pub(crate) flush_counts: BTreeMap<MachineId, u64>,
    /// The authoritative counts broadcast in `BeginApply`.
    pub(crate) counts: Vec<(MachineId, u64)>,
    /// Machines that acknowledged the apply.
    pub(crate) acks: BTreeSet<MachineId>,
    /// Machines already re-sent `BeginSync` (next stall removes them).
    pub(crate) nudged_flush: BTreeSet<MachineId>,
    /// Machines already re-sent `BeginApply` (next stall removes them).
    pub(crate) nudged_acks: BTreeSet<MachineId>,
    /// Recovery resends this round.
    pub(crate) resends: u64,
    /// Removals this round.
    pub(crate) removals: u64,
    /// Operations committed, recorded when the master itself applies.
    pub(crate) ops_committed: u64,
}

impl MasterRound {
    fn new(round: u64, started_at: SimTime, order: Vec<MachineId>) -> Self {
        MasterRound {
            round,
            started_at,
            apply_started_at: None,
            stage: Stage::Flush,
            order,
            removed: BTreeSet::new(),
            flush_counts: BTreeMap::new(),
            counts: Vec::new(),
            acks: BTreeSet::new(),
            nudged_flush: BTreeSet::new(),
            nudged_acks: BTreeSet::new(),
            resends: 0,
            removals: 0,
            ops_committed: 0,
        }
    }

    /// Participants still expected to act: in the order, not removed.
    fn expected(&self) -> impl Iterator<Item = &MachineId> {
        self.order.iter().filter(|m| !self.removed.contains(m))
    }
}

/// Inputs to the master role.
#[derive(Debug)]
pub enum MasterEvent {
    /// The sync-period tick elapsed with no round active: start one.
    BeginRound {
        /// The flush order (current member set, master first).
        order: Vec<MachineId>,
    },
    /// A participant confirmed its flush.
    FlushDone {
        /// The participant.
        machine: MachineId,
        /// How many operations it flushed.
        count: u64,
    },
    /// A participant acknowledged the apply.
    Ack {
        /// The participant.
        machine: MachineId,
    },
    /// The master's own participant side applied the round.
    RoundApplied {
        /// Operations committed in the consolidated list.
        ops_committed: u64,
    },
    /// The stage-1 stall timer fired for the encoded round.
    Stage1Timeout {
        /// Round the timer was armed for.
        round: u64,
    },
    /// The stage-2 stall timer fired for the encoded round.
    Stage2Timeout {
        /// Round the timer was armed for.
        round: u64,
    },
}

/// The master state machine: drives rounds, recovers stalls.
#[derive(Debug)]
pub struct MasterRole {
    me: MachineId,
    /// The round in progress, if any.
    pub(crate) active: Option<MasterRound>,
    /// The next round number to use.
    pub(crate) next_round: u64,
}

impl MasterRole {
    /// A fresh role for machine `me`; rounds start at 1.
    pub fn new(me: MachineId) -> Self {
        MasterRole {
            me,
            active: None,
            next_round: 1,
        }
    }

    /// Whether a round is currently being driven.
    pub fn round_active(&self) -> bool {
        self.active.is_some()
    }

    /// Pure transition: consumes one event, returns the effects to lower.
    pub fn step(&mut self, ev: MasterEvent, now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        match ev {
            MasterEvent::BeginRound { order } => self.begin_round(order, now, cfg),
            MasterEvent::FlushDone { machine, count } => {
                self.on_flush_done(machine, count, now, cfg)
            }
            MasterEvent::Ack { machine } => {
                let Some(mr) = self.active.as_mut() else {
                    return Vec::new();
                };
                let mut fx = Vec::new();
                if mr.acks.insert(machine) {
                    fx.push(Effect::Trace(TraceEvent::AckReceived {
                        round: mr.round,
                        machine,
                    }));
                }
                fx.extend(self.finish_if_complete(now, cfg));
                fx
            }
            MasterEvent::RoundApplied { ops_committed } => {
                let Some(mr) = self.active.as_mut() else {
                    return Vec::new();
                };
                mr.ops_committed = ops_committed;
                mr.acks.insert(self.me);
                let round = mr.round;
                let mut fx = vec![Effect::Trace(TraceEvent::AckReceived {
                    round,
                    machine: self.me,
                })];
                fx.extend(self.finish_if_complete(now, cfg));
                fx
            }
            MasterEvent::Stage1Timeout { round } => self.on_stage1_timeout(round, now, cfg),
            MasterEvent::Stage2Timeout { round } => self.on_stage2_timeout(round, now, cfg),
        }
    }

    fn begin_round(
        &mut self,
        order: Vec<MachineId>,
        now: SimTime,
        cfg: &MachineConfig,
    ) -> Vec<Effect> {
        let round = self.next_round;
        self.next_round += 1;
        debug_assert_eq!(order.first(), Some(&self.me), "master flushes first");
        let participants = order.len() as u32;
        let mut fx = vec![
            Effect::Broadcast {
                channel: Channel::Signals,
                msg: Msg::BeginSync {
                    round,
                    order: order.clone(),
                },
            },
            Effect::StartLocalRound {
                round,
                order: order.clone(),
            },
            Effect::Trace(TraceEvent::RoundStarted {
                round,
                participants,
            }),
        ];
        self.active = Some(MasterRound::new(round, now, order));
        if !cfg.parallel_flush {
            // Serial turn-taking: the master flushes first.
            fx.push(Effect::Trace(TraceEvent::FlushWindowOpened {
                round,
                machine: self.me,
            }));
        }
        fx.push(Effect::Flush);
        fx.push(Effect::SetTimer {
            after: cfg.stall_timeout,
            tag: tag::encode(tag::MASTER_STAGE1, round),
        });
        fx
    }

    fn on_flush_done(
        &mut self,
        machine: MachineId,
        count: u64,
        now: SimTime,
        cfg: &MachineConfig,
    ) -> Vec<Effect> {
        let (newly, round, stage_done, next_turn) = {
            let Some(mr) = self.active.as_mut() else {
                return Vec::new();
            };
            if mr.stage != Stage::Flush {
                return Vec::new();
            }
            let newly = mr.flush_counts.insert(machine, count).is_none();
            let pending = || mr.expected().filter(|m| !mr.flush_counts.contains_key(*m));
            let stage_done = pending().next().is_none();
            // Under serial turn-taking the next unflushed machine in the
            // round order now holds the flush window.
            let next_turn = if cfg.parallel_flush {
                None
            } else {
                pending().next().copied()
            };
            (newly, mr.round, stage_done, next_turn)
        };
        let mut fx = Vec::new();
        if newly {
            fx.push(Effect::Trace(TraceEvent::FlushWindowClosed {
                round,
                machine,
                ops: count,
            }));
            if let Some(next) = next_turn {
                fx.push(Effect::Trace(TraceEvent::FlushWindowOpened {
                    round,
                    machine: next,
                }));
            }
        }
        if stage_done {
            fx.extend(self.start_apply_stage(now, cfg));
        }
        fx
    }

    /// Stage 1 → stage 2: broadcast the authoritative per-machine counts.
    fn start_apply_stage(&mut self, now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        let mr = self.active.as_mut().expect("master round active");
        mr.stage = Stage::Apply;
        mr.apply_started_at = Some(now);
        let counts: Vec<(MachineId, u64)> = mr
            .order
            .iter()
            .filter(|m| !mr.removed.contains(m))
            .map(|m| (*m, *mr.flush_counts.get(m).unwrap_or(&0)))
            .collect();
        mr.counts = counts.clone();
        let round = mr.round;
        vec![
            Effect::Broadcast {
                channel: Channel::Signals,
                msg: Msg::BeginApply {
                    round,
                    counts: counts.clone(),
                },
            },
            Effect::Trace(TraceEvent::BeginApply {
                round,
                ops_total: counts.iter().map(|(_, c)| *c).sum(),
            }),
            Effect::SetTimer {
                after: cfg.stall_timeout,
                tag: tag::encode(tag::MASTER_STAGE2, round),
            },
            Effect::BeginApplyLocal { round, counts },
        ]
    }

    /// Finishes the round if everyone still expected has acknowledged.
    fn finish_if_complete(&mut self, now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        let done = {
            let Some(mr) = self.active.as_ref() else {
                return Vec::new();
            };
            mr.stage == Stage::Apply && mr.expected().all(|m| mr.acks.contains(m))
        };
        if done {
            self.finish_round(now, cfg)
        } else {
            Vec::new()
        }
    }

    fn finish_round(&mut self, now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        let mr = self.active.take().expect("master round active");
        let duration = now.saturating_since(mr.started_at);
        // Per-stage decomposition: stage 1 ran from BeginSync until
        // BeginApply went out, stage 2 from BeginApply until the last ack
        // (i.e. now), and stage 3 — a single broadcast with no round trip —
        // takes the remainder. The three parts sum to `duration` exactly.
        let flush_duration = mr
            .apply_started_at
            .map_or(duration, |t| t.saturating_since(mr.started_at));
        let apply_duration = mr
            .apply_started_at
            .map_or(SimTime::ZERO, |t| now.saturating_since(t));
        // The stage timestamps are monotone by construction (BeginSync ≤
        // BeginApply ≤ last ack), so the two stages can never exceed the
        // round. If they do, a stage boundary was recorded out of order and
        // the silent clamp below would fabricate a zero stage 3 — masking
        // exactly the "stage durations partition the round" invariant that
        // bench_snapshot asserts. Fail loudly in debug builds instead.
        debug_assert!(
            flush_duration + apply_duration <= duration,
            "round {}: stage durations exceed the round duration \
             ({:?} + {:?} > {:?}); a stage timestamp was recorded out of order",
            mr.round,
            flush_duration,
            apply_duration,
            duration,
        );
        let completion_duration = duration.saturating_since(flush_duration + apply_duration);
        vec![
            Effect::ClearRound,
            Effect::Broadcast {
                channel: Channel::Signals,
                msg: Msg::SyncComplete { round: mr.round },
            },
            Effect::RoundFinished {
                sample: SyncSample {
                    round: mr.round,
                    started_at: mr.started_at,
                    duration,
                    flush_duration,
                    apply_duration,
                    completion_duration,
                    participants: mr.order.len(),
                    ops_committed: mr.ops_committed,
                    ops_flushed: mr.flush_counts.values().sum(),
                    resends: mr.resends,
                    removals: mr.removals,
                },
            },
            Effect::ServiceJoins,
            Effect::SetTimer {
                after: cfg.sync_period,
                tag: tag::encode(tag::MASTER_TICK, 0),
            },
        ]
    }

    fn on_stage1_timeout(&mut self, round: u64, now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        let laggards: Vec<MachineId> = {
            let Some(mr) = self.active.as_ref() else {
                return Vec::new();
            };
            if mr.round != round || mr.stage != Stage::Flush {
                return Vec::new();
            }
            let unflushed = mr
                .expected()
                .filter(|m| !mr.flush_counts.contains_key(*m))
                .copied();
            if cfg.parallel_flush {
                unflushed.collect()
            } else {
                // Serial turns: only the machine whose turn it is can be
                // blocking the stage.
                unflushed.take(1).collect()
            }
        };
        if laggards.is_empty() {
            return Vec::new();
        }
        let mut fx = Vec::new();
        let mut newly_removed = Vec::new();
        for m in laggards {
            let nudged = self
                .active
                .as_ref()
                .map(|mr| mr.nudged_flush.contains(&m))
                .unwrap_or(false);
            if nudged {
                fx.extend(self.remove_machine(m));
                newly_removed.push(m);
            } else {
                let mr = self.active.as_mut().expect("master round");
                mr.nudged_flush.insert(m);
                debug_assert!(mr.resends < u64::MAX, "resend counter saturated");
                mr.resends = mr.resends.saturating_add(1);
                fx.push(Effect::Send {
                    to: m,
                    channel: Channel::Signals,
                    msg: Msg::BeginSync {
                        round,
                        order: mr.order.clone(),
                    },
                });
                fx.push(Effect::Trace(TraceEvent::Resend {
                    round,
                    machine: m,
                    stage: 1,
                }));
            }
        }
        if !newly_removed.is_empty() {
            fx.push(Effect::Broadcast {
                channel: Channel::Signals,
                msg: Msg::RoundUpdate {
                    round,
                    removed: newly_removed,
                },
            });
            // Removal may have unblocked the stage.
            let stage_done = {
                let mr = self.active.as_ref().expect("master round");
                mr.stage == Stage::Flush && mr.expected().all(|m| mr.flush_counts.contains_key(m))
            };
            if stage_done {
                fx.extend(self.start_apply_stage(now, cfg));
                return fx;
            }
        }
        fx.push(Effect::SetTimer {
            after: cfg.stall_timeout,
            tag: tag::encode(tag::MASTER_STAGE1, round),
        });
        fx
    }

    fn on_stage2_timeout(&mut self, round: u64, now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        let missing: Vec<MachineId> = {
            let Some(mr) = self.active.as_ref() else {
                return Vec::new();
            };
            if mr.round != round || mr.stage != Stage::Apply {
                return Vec::new();
            }
            mr.expected()
                .filter(|m| !mr.acks.contains(*m))
                .copied()
                .collect()
        };
        if missing.is_empty() {
            return Vec::new();
        }
        let mut fx = Vec::new();
        // If the master itself is still waiting for operation batches, the
        // earlier resend requests were probably lost: retry them rather
        // than treating ourselves as a stalled participant. (The retry can
        // never complete the apply inline — no new batch arrived since the
        // timer fired — so it only re-emits `OpsRequest`s.)
        if missing.contains(&self.me) {
            fx.push(Effect::RetryApply);
        }
        let me = self.me;
        let mut removed_any = false;
        for m in missing.into_iter().filter(|&m| m != me) {
            let nudged = self
                .active
                .as_ref()
                .map(|mr| mr.nudged_acks.contains(&m))
                .unwrap_or(false);
            if nudged {
                fx.extend(self.remove_machine(m));
                removed_any = true;
            } else {
                let mr = self.active.as_mut().expect("master round");
                mr.nudged_acks.insert(m);
                debug_assert!(mr.resends < u64::MAX, "resend counter saturated");
                mr.resends = mr.resends.saturating_add(1);
                let counts = mr.counts.clone();
                fx.push(Effect::Send {
                    to: m,
                    channel: Channel::Signals,
                    msg: Msg::BeginApply { round, counts },
                });
                fx.push(Effect::Trace(TraceEvent::Resend {
                    round,
                    machine: m,
                    stage: 2,
                }));
            }
        }
        if removed_any {
            fx.extend(self.finish_if_complete(now, cfg));
        }
        if self.active.is_some() {
            fx.push(Effect::SetTimer {
                after: cfg.stall_timeout,
                tag: tag::encode(tag::MASTER_STAGE2, round),
            });
        }
        fx
    }

    /// Removes a stalled machine from the round: mirrors updated here, the
    /// participant set and member list via [`Effect::RemoveFromRound`].
    fn remove_machine(&mut self, m: MachineId) -> Vec<Effect> {
        let mr = self.active.as_mut().expect("master round");
        mr.removed.insert(m);
        debug_assert!(mr.removals < u64::MAX, "removal counter saturated");
        mr.removals = mr.removals.saturating_add(1);
        let round = mr.round;
        vec![
            Effect::RemoveFromRound { machine: m },
            Effect::Send {
                to: m,
                channel: Channel::Signals,
                msg: Msg::Restart,
            },
            Effect::Trace(TraceEvent::Removed { round, machine: m }),
        ]
    }
}

#[cfg(test)]
mod tests {
    //! Pure step-level tests: no net driver — events in, effects out.

    use super::*;

    fn id(n: u32) -> MachineId {
        MachineId::new(n)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    fn order3() -> Vec<MachineId> {
        vec![id(0), id(1), id(2)]
    }

    /// Drives a fresh role through BeginSync + all FlushDones into Apply.
    fn into_apply(c: &MachineConfig) -> MasterRole {
        let mut m = MasterRole::new(id(0));
        m.step(
            MasterEvent::BeginRound { order: order3() },
            SimTime::ZERO,
            c,
        );
        for i in 0..3 {
            m.step(
                MasterEvent::FlushDone {
                    machine: id(i),
                    count: 1,
                },
                SimTime::from_millis(10),
                c,
            );
        }
        assert_eq!(m.active.as_ref().unwrap().stage, Stage::Apply);
        m
    }

    #[test]
    fn begin_round_script_is_broadcast_install_trace_flush_timer() {
        let c = cfg();
        let mut m = MasterRole::new(id(0));
        let fx = m.step(
            MasterEvent::BeginRound { order: order3() },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(
            fx[0],
            Effect::Broadcast {
                msg: Msg::BeginSync { round: 1, .. },
                ..
            }
        ));
        assert!(matches!(fx[1], Effect::StartLocalRound { round: 1, .. }));
        assert!(matches!(
            fx[2],
            Effect::Trace(TraceEvent::RoundStarted {
                participants: 3,
                ..
            })
        ));
        // Serial flush by default: the master's window opens first.
        assert!(matches!(
            fx[3],
            Effect::Trace(TraceEvent::FlushWindowOpened { .. })
        ));
        assert!(matches!(fx[4], Effect::Flush));
        assert!(matches!(fx[5], Effect::SetTimer { tag: t, .. }
            if tag::kind(t) == tag::MASTER_STAGE1 && tag::round(t) == 1));
        assert_eq!(m.next_round, 2);
    }

    #[test]
    fn last_flush_done_starts_the_apply_stage() {
        let c = cfg();
        let mut m = MasterRole::new(id(0));
        m.step(
            MasterEvent::BeginRound { order: order3() },
            SimTime::ZERO,
            &c,
        );
        for i in 0..2 {
            let fx = m.step(
                MasterEvent::FlushDone {
                    machine: id(i),
                    count: 2,
                },
                SimTime::from_millis(5),
                &c,
            );
            assert!(!fx.iter().any(|e| matches!(
                e,
                Effect::Broadcast {
                    msg: Msg::BeginApply { .. },
                    ..
                }
            )));
        }
        let fx = m.step(
            MasterEvent::FlushDone {
                machine: id(2),
                count: 2,
            },
            SimTime::from_millis(5),
            &c,
        );
        let begin_apply = fx
            .iter()
            .find_map(|e| match e {
                Effect::Broadcast {
                    msg: Msg::BeginApply { counts, .. },
                    ..
                } => Some(counts.clone()),
                _ => None,
            })
            .expect("BeginApply broadcast");
        assert_eq!(begin_apply, vec![(id(0), 2), (id(1), 2), (id(2), 2)]);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::BeginApplyLocal { .. })));
    }

    #[test]
    fn stage1_stall_nudges_then_removes() {
        let c = cfg();
        let mut m = MasterRole::new(id(0));
        m.step(
            MasterEvent::BeginRound { order: order3() },
            SimTime::ZERO,
            &c,
        );
        m.step(
            MasterEvent::FlushDone {
                machine: id(0),
                count: 0,
            },
            SimTime::ZERO,
            &c,
        );
        // First stall: resend BeginSync to the laggard (serial: next in turn).
        let fx = m.step(
            MasterEvent::Stage1Timeout { round: 1 },
            SimTime::from_secs(2),
            &c,
        );
        assert!(
            matches!(fx[0], Effect::Send { to, msg: Msg::BeginSync { .. }, .. } if to == id(1))
        );
        assert!(matches!(
            fx[1],
            Effect::Trace(TraceEvent::Resend { stage: 1, .. })
        ));
        assert!(matches!(fx[2], Effect::SetTimer { .. }));
        // Second stall: remove it and tell the round.
        let fx = m.step(
            MasterEvent::Stage1Timeout { round: 1 },
            SimTime::from_secs(4),
            &c,
        );
        assert!(matches!(fx[0], Effect::RemoveFromRound { machine } if machine == id(1)));
        assert!(matches!(
            fx[1],
            Effect::Send {
                msg: Msg::Restart,
                ..
            }
        ));
        assert!(matches!(fx[2], Effect::Trace(TraceEvent::Removed { .. })));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Broadcast {
                msg: Msg::RoundUpdate { .. },
                ..
            }
        )));
        let mr = m.active.as_ref().unwrap();
        assert!(mr.removed.contains(&id(1)));
        assert_eq!((mr.resends, mr.removals), (1, 1));
    }

    #[test]
    fn all_acks_finish_the_round_with_a_sample() {
        let c = cfg();
        let mut m = into_apply(&c);
        m.step(
            MasterEvent::RoundApplied { ops_committed: 3 },
            SimTime::from_millis(20),
            &c,
        );
        m.step(
            MasterEvent::Ack { machine: id(1) },
            SimTime::from_millis(25),
            &c,
        );
        let fx = m.step(
            MasterEvent::Ack { machine: id(2) },
            SimTime::from_millis(30),
            &c,
        );
        assert!(matches!(
            fx[0],
            Effect::Trace(TraceEvent::AckReceived { .. })
        ));
        assert!(matches!(fx[1], Effect::ClearRound));
        assert!(matches!(
            fx[2],
            Effect::Broadcast {
                msg: Msg::SyncComplete { round: 1 },
                ..
            }
        ));
        let Effect::RoundFinished { sample } = &fx[3] else {
            panic!("RoundFinished expected, got {:?}", fx[3]);
        };
        assert_eq!(sample.round, 1);
        assert_eq!(sample.participants, 3);
        assert_eq!(sample.ops_committed, 3);
        assert_eq!(sample.ops_flushed, 3);
        assert!(matches!(fx[4], Effect::ServiceJoins));
        assert!(
            matches!(fx[5], Effect::SetTimer { tag: t, .. } if tag::kind(t) == tag::MASTER_TICK)
        );
        assert!(m.active.is_none());
    }

    #[test]
    #[should_panic(expected = "stage durations exceed the round duration")]
    fn out_of_order_stage_timestamps_are_rejected() {
        // Regression: a round whose final ack is stamped *before* the
        // apply stage began used to clamp the negative stage-3 remainder
        // to zero silently. The debug assertion must fire instead.
        let c = cfg();
        let mut m = MasterRole::new(id(0));
        m.step(
            MasterEvent::BeginRound { order: order3() },
            SimTime::from_millis(10),
            &c,
        );
        for i in 0..3 {
            // Stage 1 ends (BeginApply goes out) at t = 20ms.
            m.step(
                MasterEvent::FlushDone {
                    machine: id(i),
                    count: 1,
                },
                SimTime::from_millis(20),
                &c,
            );
        }
        m.step(
            MasterEvent::RoundApplied { ops_committed: 3 },
            SimTime::from_millis(20),
            &c,
        );
        m.step(
            MasterEvent::Ack { machine: id(1) },
            SimTime::from_millis(20),
            &c,
        );
        // Out-of-order clock: the last ack is stamped at t = 5ms, before
        // the round even began. duration saturates to 0 while stage 1
        // alone measured 10ms.
        m.step(
            MasterEvent::Ack { machine: id(2) },
            SimTime::from_millis(5),
            &c,
        );
    }

    #[test]
    fn duplicate_acks_and_stale_timers_are_ignored() {
        let c = cfg();
        let mut m = into_apply(&c);
        let fx = m.step(
            MasterEvent::Ack { machine: id(1) },
            SimTime::from_millis(20),
            &c,
        );
        assert_eq!(fx.len(), 1, "trace only");
        let fx = m.step(
            MasterEvent::Ack { machine: id(1) },
            SimTime::from_millis(21),
            &c,
        );
        assert!(fx.is_empty(), "duplicate ack");
        // A stage-1 timer for the finished flush stage is a no-op now.
        let fx = m.step(
            MasterEvent::Stage1Timeout { round: 1 },
            SimTime::from_secs(2),
            &c,
        );
        assert!(fx.is_empty());
        // As is any timer for a different round.
        let fx = m.step(
            MasterEvent::Stage2Timeout { round: 7 },
            SimTime::from_secs(2),
            &c,
        );
        assert!(fx.is_empty());
    }
}
