//! Membership: the §4 enter/leave protocol.
//!
//! Joining is a three-message handshake — `JoinRequest` → `JoinInfo`
//! (catalog + completed-history snapshot) → `JoinReady` — epoch-stamped
//! with the completed-history length so a machine is only admitted if no
//! operation committed since its snapshot was taken. The master side of
//! this role tracks the member set and in-flight handshakes; the member
//! side tracks whether this machine has joined and retries its request
//! until it participates in a round.

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::MachineId;
use guesstimate_net::{Channel, SimTime};

use crate::config::MachineConfig;
use crate::message::Msg;
use crate::roles::{tag, Effect};

/// Where a joining machine stands in the master's handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPhase {
    /// `JoinRequest` received; `JoinInfo` not yet sent.
    Requested,
    /// `JoinInfo` sent when the completed history had this length; the
    /// machine is admitted only if the history has not advanced since.
    InfoSent(u64),
}

/// Inputs to the membership role.
#[derive(Debug)]
pub enum MembershipEvent {
    /// (Master) A machine asked to join, or re-join after a restart.
    JoinRequest {
        /// The joining machine.
        machine: MachineId,
    },
    /// (Master) Between rounds: (re)start every handshake that needs it.
    ServiceJoins {
        /// Current completed-history length, stamped into each handshake.
        epoch: u64,
    },
    /// (Master) A machine finished installing its snapshot.
    JoinReady {
        /// The machine ready to be admitted.
        machine: MachineId,
        /// Current completed-history length, for staleness checks.
        epoch: u64,
        /// Whether a synchronization round is currently active.
        round_active: bool,
    },
    /// (Master) A machine gracefully left the system.
    Leave {
        /// The departing machine.
        machine: MachineId,
    },
    /// (Member) The join-retry timer fired.
    JoinRetryTimer,
}

/// The membership state machine (both master and member sides).
#[derive(Debug)]
pub struct MembershipRole {
    me: MachineId,
    /// (Master) The current member set, this machine included.
    pub(crate) members: BTreeSet<MachineId>,
    /// (Master) In-flight join handshakes.
    pub(crate) pending_joins: BTreeMap<MachineId, JoinPhase>,
    /// (Member) Whether this machine has completed the join handshake.
    pub(crate) joined_system: bool,
    /// (Member) Whether this machine has participated in a round since
    /// joining; retries stop only once this is set.
    pub(crate) in_cohort: bool,
}

impl MembershipRole {
    /// A fresh role for machine `me`; masters start as their own sole
    /// member and already joined.
    pub fn new(me: MachineId, is_master: bool) -> Self {
        let mut members = BTreeSet::new();
        if is_master {
            members.insert(me);
        }
        MembershipRole {
            me,
            members,
            pending_joins: BTreeMap::new(),
            joined_system: is_master,
            in_cohort: is_master,
        }
    }

    /// The current member set.
    pub fn members(&self) -> &BTreeSet<MachineId> {
        &self.members
    }

    /// Whether this machine has completed the join handshake.
    pub fn is_joined(&self) -> bool {
        self.joined_system
    }

    /// Whether this machine has participated in a round since joining.
    pub fn in_cohort(&self) -> bool {
        self.in_cohort
    }

    /// Pure transition: consumes one event, returns the effects to lower.
    pub fn step(&mut self, ev: MembershipEvent, _now: SimTime, cfg: &MachineConfig) -> Vec<Effect> {
        match ev {
            MembershipEvent::JoinRequest { machine } => {
                if machine == self.me {
                    return Vec::new();
                }
                // A re-join from a current member means it restarted
                // itself; its membership is void until the handshake
                // completes again.
                self.members.remove(&machine);
                self.pending_joins.insert(machine, JoinPhase::Requested);
                vec![Effect::ServiceJoins]
            }
            MembershipEvent::ServiceJoins { epoch } => {
                let needs: Vec<MachineId> = self
                    .pending_joins
                    .iter()
                    .filter(|(_, phase)| match phase {
                        JoinPhase::Requested => true,
                        JoinPhase::InfoSent(e) => *e != epoch,
                    })
                    .map(|(m, _)| *m)
                    .collect();
                let mut fx = Vec::new();
                for m in needs {
                    fx.push(Effect::SendJoinInfo { to: m });
                    self.pending_joins.insert(m, JoinPhase::InfoSent(epoch));
                }
                fx
            }
            MembershipEvent::JoinReady {
                machine,
                epoch,
                round_active,
            } => {
                match self.pending_joins.get(&machine) {
                    Some(JoinPhase::InfoSent(e)) if *e == epoch && !round_active => {
                        self.pending_joins.remove(&machine);
                        self.members.insert(machine);
                    }
                    Some(_) => {
                        // Snapshot went stale (a round committed in
                        // between) or a round is active: redo the
                        // handshake at the next gap.
                        self.pending_joins.insert(machine, JoinPhase::Requested);
                    }
                    None => {}
                }
                Vec::new()
            }
            MembershipEvent::Leave { machine } => {
                self.members.remove(&machine);
                self.pending_joins.remove(&machine);
                Vec::new()
            }
            MembershipEvent::JoinRetryTimer => {
                if self.in_cohort {
                    return Vec::new();
                }
                vec![
                    Effect::Broadcast {
                        channel: Channel::Signals,
                        msg: Msg::JoinRequest { machine: self.me },
                    },
                    Effect::SetTimer {
                        after: cfg.join_retry,
                        tag: tag::encode(tag::MEMBERSHIP_JOIN_RETRY, 0),
                    },
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    //! Pure step-level tests: no net driver — events in, effects out.

    use super::*;

    fn id(n: u32) -> MachineId {
        MachineId::new(n)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    #[test]
    fn join_handshake_admits_at_matching_epoch() {
        let c = cfg();
        let mut m = MembershipRole::new(id(0), true);
        let fx = m.step(
            MembershipEvent::JoinRequest { machine: id(1) },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(fx[..], [Effect::ServiceJoins]));

        let fx = m.step(
            MembershipEvent::ServiceJoins { epoch: 3 },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(fx[..], [Effect::SendJoinInfo { to }] if to == id(1)));
        assert_eq!(m.pending_joins.get(&id(1)), Some(&JoinPhase::InfoSent(3)));

        m.step(
            MembershipEvent::JoinReady {
                machine: id(1),
                epoch: 3,
                round_active: false,
            },
            SimTime::ZERO,
            &c,
        );
        assert!(m.members.contains(&id(1)));
        assert!(m.pending_joins.is_empty());
    }

    #[test]
    fn stale_epoch_redoes_the_handshake() {
        let c = cfg();
        let mut m = MembershipRole::new(id(0), true);
        m.step(
            MembershipEvent::JoinRequest { machine: id(1) },
            SimTime::ZERO,
            &c,
        );
        m.step(
            MembershipEvent::ServiceJoins { epoch: 3 },
            SimTime::ZERO,
            &c,
        );
        // A round committed before the JoinReady arrived.
        m.step(
            MembershipEvent::JoinReady {
                machine: id(1),
                epoch: 5,
                round_active: false,
            },
            SimTime::ZERO,
            &c,
        );
        assert!(!m.members.contains(&id(1)));
        assert_eq!(m.pending_joins.get(&id(1)), Some(&JoinPhase::Requested));
        // The next service pass re-sends at the new epoch.
        let fx = m.step(
            MembershipEvent::ServiceJoins { epoch: 5 },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(fx[..], [Effect::SendJoinInfo { to }] if to == id(1)));
    }

    #[test]
    fn rejoin_from_a_member_voids_its_membership() {
        let c = cfg();
        let mut m = MembershipRole::new(id(0), true);
        m.members.insert(id(2));
        m.step(
            MembershipEvent::JoinRequest { machine: id(2) },
            SimTime::ZERO,
            &c,
        );
        assert!(!m.members.contains(&id(2)));
        assert_eq!(m.pending_joins.get(&id(2)), Some(&JoinPhase::Requested));
    }

    #[test]
    fn join_retry_stops_once_in_cohort() {
        let c = cfg();
        let mut m = MembershipRole::new(id(1), false);
        let fx = m.step(MembershipEvent::JoinRetryTimer, SimTime::ZERO, &c);
        assert!(matches!(
            fx[..],
            [
                Effect::Broadcast {
                    msg: Msg::JoinRequest { .. },
                    ..
                },
                Effect::SetTimer { .. }
            ]
        ));
        m.in_cohort = true;
        assert!(m
            .step(MembershipEvent::JoinRetryTimer, SimTime::ZERO, &c)
            .is_empty());
    }

    #[test]
    fn leave_removes_member_and_pending_handshake() {
        let c = cfg();
        let mut m = MembershipRole::new(id(0), true);
        m.members.insert(id(1));
        m.pending_joins.insert(id(2), JoinPhase::Requested);
        m.step(MembershipEvent::Leave { machine: id(1) }, SimTime::ZERO, &c);
        m.step(MembershipEvent::Leave { machine: id(2) }, SimTime::ZERO, &c);
        assert!(!m.members.contains(&id(1)));
        assert!(m.pending_joins.is_empty());
    }
}
