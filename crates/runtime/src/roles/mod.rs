//! Role-scoped protocol state machines (the §4 synchronizer, decomposed).
//!
//! The synchronizer is four distinct protocols, and each lives here as its
//! own **sans-IO state machine**: [`master`] drives rounds, [`participant`]
//! flushes and applies them, [`membership`] handles entering/leaving, and
//! [`election`] runs the §9 master-failover extension. A role owns its
//! state and exposes a pure `step(event, now, cfg) -> Vec<Effect>`
//! transition function; it never touches the network, the clock, or the
//! replicated stores directly.
//!
//! [`Effect`]s are lowered **in emission order** by the composer in
//! `crate::protocol`: externally observable effects become
//! `guesstimate_net` actions (send / broadcast / set-timer) or trace
//! records, while internal effects (commit a batch, flush the pending
//! list, promote, restart) are commands back into the composer, which may
//! recursively feed further events to other roles. Depth-first lowering
//! reproduces the exact action sequence of the pre-split monolith, so the
//! decomposition is observationally invisible: byte-identical message
//! streams, timer arms, and committed histories.

#![deny(missing_docs)]

pub mod election;
pub mod master;
pub mod membership;
pub mod participant;

use guesstimate_core::MachineId;
use guesstimate_net::{Channel, SimTime, TraceEvent};
use std::sync::Arc;

use crate::message::{Msg, WireEnvelope};
use crate::stats::SyncSample;

/// Namespaced timer tags.
///
/// Every timer a role arms carries a `u64` tag encoding `(kind, round)`:
/// the low 8 bits name the timer kind (scoped to the role that owns it),
/// the high 56 bits carry the round (or election generation) so a stale
/// timer for a finished round can be recognized and dropped. Tags are
/// opaque to the drivers — neither `SimNet` nor `SchedNet` ordering ever
/// depends on a tag's value.
pub mod tag {
    /// Master: start the next round (`sync_period` after the last).
    pub const MASTER_TICK: u64 = 0;
    /// Master: stage-1 (flush) stall check for the encoded round.
    pub const MASTER_STAGE1: u64 = 1;
    /// Master: stage-2 (apply) stall check for the encoded round.
    pub const MASTER_STAGE2: u64 = 2;
    /// Membership: re-send `JoinRequest` until admitted.
    pub const MEMBERSHIP_JOIN_RETRY: u64 = 3;
    /// Election: periodic master-silence check.
    pub const ELECTION_WATCHDOG: u64 = 4;
    /// Election: candidacy window closes (round field = generation).
    pub const ELECTION_END: u64 = 5;

    /// Bits available for the round/generation field.
    pub const ROUND_BITS: u32 = 56;

    /// Encodes a `(kind, round)` pair into one tag.
    ///
    /// The round must fit the 56-bit field; a round that overflowed into
    /// the kind byte would silently alias another timer kind, so this is
    /// a `debug_assert!`ed hard precondition.
    pub fn encode(kind: u64, round: u64) -> u64 {
        debug_assert!(kind <= 0xFF, "timer kind {kind} exceeds the 8-bit field");
        debug_assert!(
            round < (1u64 << ROUND_BITS),
            "round {round} exceeds the 56-bit tag field; tags would alias across kinds"
        );
        kind | (round << 8)
    }

    /// The kind byte of an encoded tag.
    pub fn kind(tag: u64) -> u64 {
        tag & 0xFF
    }

    /// The round (or generation) field of an encoded tag.
    pub fn round(tag: u64) -> u64 {
        tag >> 8
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips() {
            let t = encode(MASTER_STAGE2, 7);
            assert_eq!(kind(t), MASTER_STAGE2);
            assert_eq!(round(t), 7);
        }

        #[test]
        #[should_panic(expected = "56-bit")]
        fn oversized_round_is_rejected() {
            let _ = encode(MASTER_TICK, 1u64 << ROUND_BITS);
        }
    }
}

/// One consequence of a role transition, produced by a role's `step` and
/// lowered in order by the composer in `crate::protocol`.
///
/// The first four variants are externally observable (network actions and
/// trace records). The rest are internal commands: the composer lowers
/// them by touching exec-facing state (pending list, stores, stats,
/// telemetry) or by feeding a follow-up event into another role and
/// recursively lowering its effects, depth-first.
#[derive(Debug)]
pub enum Effect {
    /// Unicast `msg` to `to` on `channel`.
    Send {
        /// Destination machine.
        to: MachineId,
        /// Mesh channel to use.
        channel: Channel,
        /// The message.
        msg: Msg,
    },
    /// Broadcast `msg` to every other machine on `channel`.
    Broadcast {
        /// Mesh channel to use.
        channel: Channel,
        /// The message.
        msg: Msg,
    },
    /// Arm a timer `after` from now, carrying a [`tag`]-encoded tag.
    SetTimer {
        /// Delay from now.
        after: SimTime,
        /// Namespaced timer tag.
        tag: u64,
    },
    /// Record a trace event attributed to this machine.
    Trace(TraceEvent),

    /// Install the local participant round (master's own participation).
    StartLocalRound {
        /// Round number.
        round: u64,
        /// Flush order (also the participant set).
        order: Vec<MachineId>,
    },
    /// Flush the pending list into the active round (stage 1).
    Flush,
    /// Re-announce an already-performed flush (recovery nudge).
    RebroadcastFlush,
    /// Flush if every earlier machine in the round order has flushed.
    MaybeFlushOnTurn,
    /// Apply the round if every expected operation has arrived.
    TryApply,
    /// Clear per-source resend bookkeeping, then [`Effect::TryApply`]
    /// (stage-2 stall: earlier resend requests were probably lost).
    RetryApply,
    /// Re-dispatch round messages that arrived before their `BeginSync`.
    ReplayBuffered(Vec<(MachineId, Msg)>),
    /// Mark this machine as having participated in a round.
    JoinCohort,
    /// Count one completed synchronization in the machine stats.
    CountSync,
    /// Reset all replicated state and re-enter via the join path.
    SelfRestart,
    /// Between rounds: (re)start join handshakes that need servicing.
    ServiceJoins,
    /// Ship the object catalog + completed history to a joining machine.
    SendJoinInfo {
        /// The joining machine.
        to: MachineId,
    },
    /// Deliver `BeginApply` to the local participant (master's own copy).
    BeginApplyLocal {
        /// Round number.
        round: u64,
        /// Authoritative per-machine op counts.
        counts: Vec<(MachineId, u64)>,
    },
    /// Remove a stalled machine from the round and the member set.
    RemoveFromRound {
        /// The machine being removed.
        machine: MachineId,
    },
    /// Drop the local participant round (the master finished it).
    ClearRound,
    /// Record a finished round: telemetry, trace, stats sample.
    RoundFinished {
        /// The completed round's health sample.
        sample: SyncSample,
    },
    /// Re-arm the stage-2 stall timer iff the round is still active.
    RearmStage2 {
        /// Round number.
        round: u64,
    },
    /// This machine won the election: become master.
    Promote,
    /// This machine lost the election: rejoin under the winner.
    DeferToWinner,
}

/// Read-only view of the round-relevant message payloads shared between
/// roles (the flush batch travels behind an [`Arc`] so broadcast fan-out
/// and recovery resends never deep-copy envelopes).
pub type OpsBatch = Arc<Vec<WireEnvelope>>;

/// The async-committed `(aseq, envelope)` window a flush piggybacks (the
/// hybrid commit path's round-boundary fence), shared behind an [`Arc`]
/// for the same no-copy reason as [`OpsBatch`].
pub type AsyncBatch = Arc<Vec<(u64, WireEnvelope)>>;
