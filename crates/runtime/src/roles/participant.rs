//! The participant side of the §4 synchronizer: flushing into rounds,
//! collecting the consolidated list, applying and acknowledging.
//!
//! Every machine — the master included — participates in rounds through
//! this role. It owns the per-round [`RoundState`], the buffer for round
//! messages that arrive before their `BeginSync` (the Signals and
//! Operations channels are independently delayed, so reordering is
//! normal), and the machine's committed progress (`next_round_expected`).
//! Flushing and applying touch the replicated stores, so those are
//! [`Effect`]s lowered by the composer; everything decided *about* the
//! round — when to flush, when a duplicate signal needs re-answering,
//! when a gap forces a restart — is decided here, purely.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use guesstimate_core::{MachineId, OpId};
use guesstimate_net::{Channel, SimTime, TraceEvent};

use crate::config::MachineConfig;
use crate::message::{Msg, WireOp};
use crate::roles::{AsyncBatch, Effect, OpsBatch};

/// Participant-side state of the round in progress (the master keeps one
/// too — it participates like everyone else).
#[derive(Debug)]
pub struct RoundState {
    /// Round number.
    pub(crate) round: u64,
    /// Flush order announced in `BeginSync` (master first).
    pub(crate) order: Vec<MachineId>,
    /// Machines the master removed from this round.
    pub(crate) removed: BTreeSet<MachineId>,
    /// Whether this machine has flushed its pending list.
    pub(crate) flushed: bool,
    /// The batch this machine flushed, kept for recovery resends. Shared
    /// behind an [`Arc`]: the broadcast fan-out and any `OpsRequest` reply
    /// reuse it without copying envelopes.
    pub(crate) my_flush: OpsBatch,
    /// The async-committed window this machine piggybacked on its flush
    /// (hybrid commit path), kept for the same recovery resends.
    pub(crate) my_asyncs: AsyncBatch,
    /// Per-machine flushed-op counts heard via `FlushDone` (turn-taking).
    pub(crate) flush_done: BTreeMap<MachineId, u64>,
    /// Operation batches received so far, per source machine.
    pub(crate) received: BTreeMap<MachineId, BTreeMap<OpId, WireOp>>,
    /// Authoritative per-machine counts from `BeginApply`, once known.
    pub(crate) counts: Option<BTreeMap<MachineId, u64>>,
    /// Whether this machine has applied the consolidated list.
    pub(crate) applied: bool,
    /// Sources already asked for a resend (one request per source per
    /// `BeginApply`).
    pub(crate) resend_requested: BTreeSet<MachineId>,
}

impl RoundState {
    fn new(round: u64, order: Vec<MachineId>) -> Self {
        RoundState {
            round,
            order,
            removed: BTreeSet::new(),
            flushed: false,
            my_flush: Arc::new(Vec::new()),
            my_asyncs: Arc::new(Vec::new()),
            flush_done: BTreeMap::new(),
            received: BTreeMap::new(),
            counts: None,
            applied: false,
            resend_requested: BTreeSet::new(),
        }
    }

    /// Serial turn-taking: `me` may flush once every earlier machine in
    /// the round order has flushed (or been removed).
    pub(crate) fn my_turn(&self, me: MachineId) -> bool {
        if self.flushed {
            return false;
        }
        let Some(pos) = self.order.iter().position(|&m| m == me) else {
            return false;
        };
        self.order[..pos]
            .iter()
            .all(|m| self.flush_done.contains_key(m) || self.removed.contains(m))
    }
}

/// Inputs to the participant role. Round-scoped events are only fed for
/// the active round (the composer routes and buffers by round number).
#[derive(Debug)]
pub enum ParticipantEvent {
    /// The master started (or re-announced) a round.
    BeginSync {
        /// Round number.
        round: u64,
        /// Flush order (also the participant set).
        order: Vec<MachineId>,
        /// Whether this machine currently counts itself in the cohort.
        in_cohort: bool,
    },
    /// A batch of operations arrived on the Operations channel.
    Ops {
        /// The flushing machine.
        machine: MachineId,
        /// Its batch (shared, not copied).
        ops: OpsBatch,
    },
    /// The master announced the authoritative per-machine counts.
    BeginApply {
        /// Round number.
        round: u64,
        /// The counts.
        counts: Vec<(MachineId, u64)>,
    },
    /// A machine asked us to resend our flushed batch.
    OpsRequest {
        /// Round number.
        round: u64,
        /// Who is asking.
        requester: MachineId,
    },
    /// The master flagged the round complete.
    SyncComplete,
    /// The master removed machines from the round.
    RoundUpdate {
        /// The removed machines.
        removed: Vec<MachineId>,
    },
}

/// The participant state machine: one per machine, master included.
#[derive(Debug)]
pub struct ParticipantRole {
    me: MachineId,
    /// The round in progress, if any.
    pub(crate) round: Option<RoundState>,
    /// Round messages that arrived before their `BeginSync`, keyed by
    /// round number.
    pub(crate) buffered: BTreeMap<u64, Vec<(MachineId, Msg)>>,
    /// The next round this machine expects to take part in. `None` means
    /// freshly (re)joined — any first round is acceptable, because the
    /// join snapshot already covers all earlier history. `Some(n)` means
    /// the numbering is anchored: a `BeginSync` for a round greater than
    /// `n` proves at least one whole round was missed (committed-state
    /// gap).
    ///
    /// This replaces the former `last_round_applied: Option<u64>`
    /// watermark, whose `Some(round - 1)` seeding conflated "applied
    /// round 0" with "never applied anything" at round 0 and let the gap
    /// check wave a missed round 0 through.
    pub(crate) next_round_expected: Option<u64>,
}

impl ParticipantRole {
    /// A fresh role for machine `me`.
    pub fn new(me: MachineId) -> Self {
        ParticipantRole {
            me,
            round: None,
            buffered: BTreeMap::new(),
            next_round_expected: None,
        }
    }

    /// The active round number, if any.
    pub fn active_round(&self) -> Option<u64> {
        self.round.as_ref().map(|rs| rs.round)
    }

    /// The next round this machine expects (`None` until a first round is
    /// seen after a fresh (re)join).
    pub fn next_round_expected(&self) -> Option<u64> {
        self.next_round_expected
    }

    /// The committed-progress rank used by the §9 failover election: the
    /// last round known applied (0 when fresh). Derived from
    /// [`ParticipantRole::next_round_expected`] so the election ranks
    /// match the pre-`next_round_expected` encoding exactly.
    pub(crate) fn election_round_hint(&self) -> u64 {
        self.next_round_expected
            .map_or(0, |next| next.saturating_sub(1))
    }

    /// How many early rounds are currently buffered.
    pub fn buffered_rounds(&self) -> usize {
        self.buffered.len()
    }

    /// Buffers a round message that arrived before its `BeginSync`.
    /// Rounds below the expected-round watermark are dropped; the buffer
    /// is bounded to the 8 highest rounds.
    pub(crate) fn buffer_early(&mut self, round: u64, from: MachineId, msg: Msg) {
        if round >= self.next_round_expected.unwrap_or(0) {
            self.buffered.entry(round).or_default().push((from, msg));
            while self.buffered.len() > 8 {
                self.buffered.pop_first();
            }
        }
    }

    /// Pure transition: consumes one event, returns the effects to lower.
    pub fn step(
        &mut self,
        ev: ParticipantEvent,
        _now: SimTime,
        cfg: &MachineConfig,
    ) -> Vec<Effect> {
        match ev {
            ParticipantEvent::BeginSync {
                round,
                order,
                in_cohort,
            } => self.on_begin_sync(round, order, in_cohort, cfg),
            ParticipantEvent::Ops { machine, ops } => {
                let Some(rs) = self.round.as_mut() else {
                    return Vec::new();
                };
                if rs.applied {
                    return Vec::new();
                }
                let n = ops.len() as u64;
                let entry = rs.received.entry(machine).or_default();
                for e in ops.iter() {
                    entry.insert(e.id, e.op.clone());
                }
                vec![
                    Effect::Trace(TraceEvent::OpsBatchReceived {
                        round: rs.round,
                        from: machine,
                        ops: n,
                    }),
                    Effect::TryApply,
                ]
            }
            ParticipantEvent::BeginApply { round, counts } => {
                let Some(rs) = self.round.as_mut() else {
                    return Vec::new();
                };
                if rs.applied {
                    // Duplicate BeginApply (recovery): our Ack probably got
                    // lost.
                    let master = rs.order[0];
                    if master != self.me {
                        return vec![Effect::Send {
                            to: master,
                            channel: Channel::Signals,
                            msg: Msg::Ack {
                                round,
                                machine: self.me,
                            },
                        }];
                    }
                    return Vec::new();
                }
                if rs.counts.is_some() {
                    // Duplicate BeginApply while we are still waiting for
                    // operation batches: the earlier OpsRequest (or its
                    // reply) was probably lost — allow a fresh resend
                    // request per source.
                    rs.resend_requested.clear();
                }
                rs.counts = Some(counts.into_iter().collect());
                vec![Effect::TryApply]
            }
            ParticipantEvent::OpsRequest { round, requester } => {
                let Some(rs) = self.round.as_ref() else {
                    return Vec::new();
                };
                if rs.round == round && rs.flushed {
                    vec![Effect::Send {
                        to: requester,
                        channel: Channel::Operations,
                        msg: Msg::Ops {
                            round,
                            machine: self.me,
                            ops: Arc::clone(&rs.my_flush),
                            asyncs: Arc::clone(&rs.my_asyncs),
                        },
                    }]
                } else {
                    Vec::new()
                }
            }
            ParticipantEvent::SyncComplete => {
                let Some(rs) = self.round.as_ref() else {
                    return Vec::new();
                };
                let round = rs.round;
                if rs.applied {
                    self.round = None;
                    vec![
                        Effect::CountSync,
                        Effect::Trace(TraceEvent::SyncCompleteReceived { round }),
                    ]
                } else {
                    // The round completed globally but we never applied it:
                    // we have a committed-state gap and must resync.
                    vec![Effect::SelfRestart]
                }
            }
            ParticipantEvent::RoundUpdate { removed } => {
                if removed.contains(&self.me) {
                    // The master gave up on us this round; resync
                    // immediately rather than waiting for the (possibly
                    // lost) Restart signal.
                    return vec![Effect::SelfRestart];
                }
                let Some(rs) = self.round.as_mut() else {
                    return Vec::new();
                };
                rs.removed.extend(removed.iter().copied());
                vec![Effect::MaybeFlushOnTurn, Effect::TryApply]
            }
        }
    }

    fn on_begin_sync(
        &mut self,
        round: u64,
        order: Vec<MachineId>,
        in_cohort: bool,
        cfg: &MachineConfig,
    ) -> Vec<Effect> {
        let me_in = order.contains(&self.me);
        let mut fx = Vec::new();
        if let Some(rs) = &self.round {
            if rs.round == round {
                // Duplicate or recovery nudge: make our flush visible again.
                if me_in {
                    if rs.flushed {
                        fx.push(Effect::RebroadcastFlush);
                    } else {
                        fx.push(Effect::Flush);
                    }
                }
                return fx;
            }
            if rs.round > round {
                return fx;
            }
            // A new round is starting while the previous one never finished
            // for us. If we applied it, we only missed the SyncComplete and
            // are still consistent; otherwise we have a committed-state gap.
            if rs.applied {
                fx.push(Effect::CountSync);
                self.round = None;
            } else {
                fx.push(Effect::SelfRestart);
                return fx;
            }
        }
        if !me_in {
            if in_cohort {
                // Evicted (our Restart signal was probably lost): resync.
                fx.push(Effect::SelfRestart);
            }
            return fx;
        }
        if let Some(next) = self.next_round_expected {
            if round > next {
                // We missed at least one whole round: committed-state gap.
                fx.push(Effect::SelfRestart);
                return fx;
            }
        } else {
            // First round since (re)joining anchors the numbering; the
            // join snapshot covers everything before it, so any starting
            // round — including round 0 — is consistent.
            self.next_round_expected = Some(round);
        }
        fx.push(Effect::JoinCohort);
        self.round = Some(RoundState::new(round, order));
        let buffered = self.buffered.remove(&round).unwrap_or_default();
        self.buffered.retain(|&r, _| r > round);
        if cfg.parallel_flush {
            fx.push(Effect::Flush);
        } else {
            fx.push(Effect::MaybeFlushOnTurn);
        }
        fx.push(Effect::ReplayBuffered(buffered));
        fx
    }

    /// Installs the local round for a round this machine itself initiates
    /// (the master's own participation), mirroring the `BeginSync` path
    /// without the membership checks.
    pub(crate) fn start_local_round(&mut self, round: u64, order: Vec<MachineId>) {
        self.round = Some(RoundState::new(round, order));
        if self.next_round_expected.is_none() {
            self.next_round_expected = Some(round);
        }
    }
}

#[cfg(test)]
mod tests {
    //! Pure step-level tests: no net driver — events in, effects out.

    use super::*;
    use crate::message::WireEnvelope;
    use guesstimate_core::{ObjectId, OpId, SharedOp};

    fn id(n: u32) -> MachineId {
        MachineId::new(n)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::default()
    }

    fn order2() -> Vec<MachineId> {
        vec![id(0), id(1)]
    }

    fn begin_sync(round: u64) -> ParticipantEvent {
        ParticipantEvent::BeginSync {
            round,
            order: order2(),
            in_cohort: true,
        }
    }

    fn batch(machine: u32, n: u64) -> OpsBatch {
        Arc::new(
            (0..n)
                .map(|i| WireEnvelope {
                    id: OpId::new(MachineId::new(machine), i),
                    op: WireOp::Shared(SharedOp::primitive(
                        ObjectId::new(MachineId::new(machine), 0),
                        "noop",
                        vec![],
                    )),
                })
                .collect(),
        )
    }

    #[test]
    fn begin_sync_installs_round_and_takes_turn() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        let fx = p.step(begin_sync(1), SimTime::ZERO, &c);
        assert!(matches!(
            fx[..],
            [
                Effect::JoinCohort,
                Effect::MaybeFlushOnTurn,
                Effect::ReplayBuffered(_)
            ]
        ));
        assert_eq!(p.active_round(), Some(1));
        assert_eq!(p.next_round_expected(), Some(1), "numbering anchored");
    }

    #[test]
    fn join_at_round_zero_gap_is_detected() {
        // Regression: a fresh machine whose first round is round 0 must
        // not be treated as having *applied* round 0. The old
        // `last_round_applied = Some(round.saturating_sub(1))` seeding
        // mapped round 0 to Some(0) — indistinguishable from a genuine
        // apply — so a subsequent BeginSync(1) passed the gap check even
        // though round 0's commits never landed here.
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(0), SimTime::ZERO, &c);
        assert_eq!(p.active_round(), Some(0));
        // Round 0 is torn down without ever being applied (e.g. the
        // BeginSync was a stale re-announcement of a finished round).
        p.round = None;
        let fx = p.step(begin_sync(1), SimTime::ZERO, &c);
        assert!(
            matches!(fx[..], [Effect::SelfRestart]),
            "unapplied round 0 is a committed-state gap, got {fx:?}"
        );
    }

    #[test]
    fn gap_at_round_one_is_detected() {
        // Regression: same conflation one round later. A fresh machine
        // saw BeginSync(1), never applied it, and the round was torn
        // down; BeginSync(2) must restart it. The old seeding set
        // last_round_applied = Some(0), and 2 > 0 + 1 is false, so the
        // gap sailed through.
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        p.round = None;
        let fx = p.step(begin_sync(2), SimTime::ZERO, &c);
        assert!(
            matches!(fx[..], [Effect::SelfRestart]),
            "unapplied round 1 is a committed-state gap, got {fx:?}"
        );
        // Control: after actually applying round 1 the successor round
        // is accepted.
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        p.round = None;
        p.next_round_expected = Some(2); // the composer's post-apply update
        let fx = p.step(begin_sync(2), SimTime::ZERO, &c);
        assert!(!fx.iter().any(|e| matches!(e, Effect::SelfRestart)));
        assert_eq!(p.active_round(), Some(2));
    }

    #[test]
    fn duplicate_begin_sync_reflushes_or_rebroadcasts() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        // Not yet flushed: the nudge re-runs the flush.
        let fx = p.step(begin_sync(1), SimTime::ZERO, &c);
        assert!(matches!(fx[..], [Effect::Flush]));
        // Flushed: the nudge only re-announces it.
        p.round.as_mut().unwrap().flushed = true;
        let fx = p.step(begin_sync(1), SimTime::ZERO, &c);
        assert!(matches!(fx[..], [Effect::RebroadcastFlush]));
    }

    #[test]
    fn round_gap_forces_a_restart() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        p.round.as_mut().unwrap().applied = true;
        p.next_round_expected = Some(2);
        // Round 3 announced but round 2 never reached us.
        let fx = p.step(begin_sync(3), SimTime::ZERO, &c);
        assert!(matches!(fx[..], [Effect::CountSync, Effect::SelfRestart]));
    }

    #[test]
    fn ops_accumulate_until_counts_allow_apply() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        let fx = p.step(
            ParticipantEvent::Ops {
                machine: id(0),
                ops: batch(0, 2),
            },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(
            fx[..],
            [
                Effect::Trace(TraceEvent::OpsBatchReceived { ops: 2, .. }),
                Effect::TryApply
            ]
        ));
        let fx = p.step(
            ParticipantEvent::BeginApply {
                round: 1,
                counts: vec![(id(0), 2), (id(1), 0)],
            },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(fx[..], [Effect::TryApply]));
        assert_eq!(
            p.round.as_ref().unwrap().received[&id(0)].len(),
            2,
            "batch retained for the apply"
        );
    }

    #[test]
    fn duplicate_begin_apply_after_apply_reacks() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        p.round.as_mut().unwrap().applied = true;
        let fx = p.step(
            ParticipantEvent::BeginApply {
                round: 1,
                counts: vec![(id(0), 0), (id(1), 0)],
            },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(
            fx[..],
            [Effect::Send { to, msg: Msg::Ack { round: 1, .. }, .. }] if to == id(0)
        ));
    }

    #[test]
    fn ops_request_reshares_the_flush_without_copying() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        {
            let rs = p.round.as_mut().unwrap();
            rs.flushed = true;
            rs.my_flush = batch(1, 3);
        }
        let fx = p.step(
            ParticipantEvent::OpsRequest {
                round: 1,
                requester: id(0),
            },
            SimTime::ZERO,
            &c,
        );
        let Effect::Send {
            msg: Msg::Ops { ops, .. },
            ..
        } = &fx[0]
        else {
            panic!("Ops resend expected, got {:?}", fx[0]);
        };
        assert!(
            Arc::ptr_eq(ops, &p.round.as_ref().unwrap().my_flush),
            "resend shares the stored batch"
        );
    }

    #[test]
    fn premature_sync_complete_restarts() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        let fx = p.step(ParticipantEvent::SyncComplete, SimTime::ZERO, &c);
        assert!(matches!(fx[..], [Effect::SelfRestart]));
        // After applying, the same signal ends the round cleanly.
        p.round.as_mut().unwrap().applied = true;
        let fx = p.step(ParticipantEvent::SyncComplete, SimTime::ZERO, &c);
        assert!(matches!(
            fx[..],
            [
                Effect::CountSync,
                Effect::Trace(TraceEvent::SyncCompleteReceived { round: 1 })
            ]
        ));
        assert!(p.round.is_none());
    }

    #[test]
    fn removal_of_self_restarts_removal_of_peer_unblocks() {
        let c = cfg();
        let mut p = ParticipantRole::new(id(1));
        p.step(begin_sync(1), SimTime::ZERO, &c);
        let fx = p.step(
            ParticipantEvent::RoundUpdate {
                removed: vec![id(0)],
            },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(
            fx[..],
            [Effect::MaybeFlushOnTurn, Effect::TryApply]
        ));
        assert!(
            p.round.as_ref().unwrap().my_turn(id(1)),
            "peer removal passes the turn"
        );
        let fx = p.step(
            ParticipantEvent::RoundUpdate {
                removed: vec![id(1)],
            },
            SimTime::ZERO,
            &c,
        );
        assert!(matches!(fx[..], [Effect::SelfRestart]));
    }

    #[test]
    fn early_round_buffer_is_bounded_to_eight_rounds() {
        let mut p = ParticipantRole::new(id(1));
        for r in 1..=12 {
            p.buffer_early(r, id(0), Msg::SyncComplete { round: r });
        }
        assert_eq!(p.buffered_rounds(), 8);
        assert!(p.buffered.keys().min() == Some(&5), "oldest rounds evicted");
        // Rounds below the expected-round watermark are dropped outright.
        p.next_round_expected = Some(21);
        p.buffer_early(20, id(0), Msg::SyncComplete { round: 20 });
        assert_eq!(p.buffered_rounds(), 8);
    }
}
