//! Runtime shard routing: mapping wire operations to the shards of an
//! analysis-derived [`ShardPlan`], and checking at commit sites that an
//! operation's effects stay inside its routed shard.
//!
//! The plan is produced offline by `analyze --shard-plan` (see
//! `docs/ANALYSIS.md` "Shard plans") and installed through
//! [`crate::MachineConfig::with_shard_plan`]. With a plan installed the machine
//! labels every commit with its [`ShardId`] — feeding the per-shard
//! telemetry counter `guesstimate_shard_ops_total` — and, under
//! [`crate::MachineConfig::paranoid_checks`], asserts *containment*: the declared
//! footprints of the committed operation, instantiated at its actual
//! arguments, must fall inside the shard the plan routed it to. A
//! violation means the plan and the effect declarations disagree — either
//! the plan was derived for different specs or it was mis-keyed — and is
//! recorded on the machine ([`Machine::shard_violations`]) exactly like a
//! witness escape, so the model checker's `ShardEscape` oracle can report
//! and ddmin-shrink it.

use std::sync::Arc;

use guesstimate_core::{ShardId, ShardPlan, SharedOp};

use crate::commute::TypeOf;
use crate::machine::Machine;
use crate::message::WireOp;

/// Routes wire operations to shards under one [`ShardPlan`].
///
/// Cloning is cheap (the plan is shared behind an `Arc`).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    plan: Arc<ShardPlan>,
}

impl ShardRouter {
    /// Wraps a plan.
    pub fn new(plan: Arc<ShardPlan>) -> Self {
        ShardRouter { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shard one wire operation routes to.
    ///
    /// `Create` writes its object's whole snapshot, so it is always
    /// cross-shard. Composite operations route to the common shard of
    /// their constituents when all agree, and cross-shard otherwise.
    /// Objects whose type cannot be resolved route cross-shard (the
    /// conservative direction: cross-shard operations are never
    /// containment-checked).
    pub fn shard_of(&self, op: &WireOp, type_of: TypeOf<'_>) -> ShardId {
        match op {
            WireOp::Create { .. } => ShardId::Cross,
            WireOp::Shared(op) => self.shard_of_shared(op, type_of),
            // Markers are the multi-group commit vehicle *of* a cross-routed
            // payload; the payload itself already routed `Cross`.
            WireOp::CrossMarker { .. } => ShardId::Cross,
        }
    }

    fn shard_of_shared(&self, op: &SharedOp, type_of: TypeOf<'_>) -> ShardId {
        match op {
            SharedOp::Primitive {
                object,
                method,
                args,
            } => match type_of(*object) {
                Some(ty) => self.plan.route_primitive(&ty, method, args),
                None => ShardId::Cross,
            },
            SharedOp::Atomic(ops) => {
                let mut acc: Option<ShardId> = None;
                for op in ops {
                    let s = self.shard_of_shared(op, type_of);
                    match &acc {
                        None => acc = Some(s),
                        Some(prev) if *prev == s => {}
                        Some(_) => return ShardId::Cross,
                    }
                }
                acc.unwrap_or(ShardId::Cross)
            }
            SharedOp::OrElse(a, b) => {
                let sa = self.shard_of_shared(a, type_of);
                let sb = self.shard_of_shared(b, type_of);
                if sa == sb {
                    sa
                } else {
                    ShardId::Cross
                }
            }
        }
    }
}

/// One shard-containment escape observed at a runtime commit site: a
/// committed operation's declared footprint (instantiated at its actual
/// arguments) reached outside the shard the installed
/// [`crate::MachineConfig::shard_plan`] routed it to.
///
/// Recorded on the machine ([`Machine::shard_violations`]); with
/// [`crate::MachineConfig::witness_assert`] (the default) it also
/// `debug_assert!`s. The model checker's negative preset disables the
/// assert so its `ShardEscape` oracle can report — and ddmin-shrink —
/// the escape instead of aborting mid-delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardViolation {
    /// The commit site that observed the escape ("commit",
    /// "async-commit", "async-apply").
    pub site: &'static str,
    /// The routed shard, rendered ([`ShardId`]'s `Display`).
    pub shard: String,
    /// Human-readable escape description from [`ShardPlan::escape`].
    pub detail: String,
}

impl std::fmt::Display for ShardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}", self.detail, self.site)
    }
}

/// Bound on recorded shard violations per machine, mirroring the witness
/// log's cap: one mis-keyed route at a hot commit site would otherwise
/// grow the log with every delivery.
const SHARD_LOG_CAP: usize = 64;

impl Machine {
    /// Labels one committed wire operation with its routed shard (per-shard
    /// telemetry counter) and, under [`crate::MachineConfig::paranoid_checks`],
    /// checks that the operation's declared footprints stay inside that
    /// shard. No-op unless a [`crate::MachineConfig::shard_plan`] is installed.
    pub(crate) fn note_shard_commit(&mut self, op: &WireOp, site: &'static str) {
        let Some(plan) = self.cfg.shard_plan.clone() else {
            return;
        };
        if let WireOp::CrossMarker { .. } = op {
            // Count markers under their own label: the cross *payload* is
            // already counted once (below) per involved group's marker, and
            // markers never carry a footprint to contain.
            self.telemetry.shard_op("cross-marker");
            return;
        }
        let catalog = &self.catalog;
        let type_of = |id| catalog.get(&id).cloned();
        let shard = ShardRouter::new(Arc::clone(&plan)).shard_of(op, &type_of);
        let label = shard.to_string();
        self.telemetry.shard_op(&label);
        if shard == ShardId::Cross {
            self.telemetry.cross_route();
        }
        if !self.cfg.paranoid_checks || shard == ShardId::Cross {
            return;
        }
        // Containment: every path of the declared footprints, instantiated
        // at the operation's actual arguments, must fall inside the routed
        // shard. A missing effect declaration leaves nothing to contain
        // (the witness layer already flags undeclared methods).
        let Some(fps) = crate::commute::wire_footprints(&self.registry, &type_of, op) else {
            return;
        };
        let mut escapes = Vec::new();
        for (obj, fp) in &fps {
            let Some(ty) = type_of(*obj) else { continue };
            for path in fp.reads.iter().chain(fp.writes.iter()) {
                if let Some(detail) = plan.escape(&shard, &ty, path) {
                    escapes.push(detail);
                }
            }
        }
        for detail in escapes {
            if self.cfg.witness_assert {
                debug_assert!(
                    false,
                    "shard escape on {:?} at {site}: {detail} (op {op:?})",
                    self.id
                );
            }
            if self.shard_log.len() < SHARD_LOG_CAP {
                self.shard_log.push(ShardViolation {
                    site,
                    shard: label.clone(),
                    detail,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::{
        args, ComponentPlan, MachineId, ObjectId, PathPattern, Routing, TypePlan,
    };
    use std::collections::BTreeMap;

    fn board_plan(key_arg: usize) -> Arc<ShardPlan> {
        let mut tp = TypePlan {
            components: vec![ComponentPlan {
                prefixes: vec![PathPattern::parse("topics/{0}").unwrap()],
                keyed: true,
            }],
            routes: BTreeMap::new(),
        };
        tp.routes.insert(
            "post".to_owned(),
            Routing::Local {
                component: 0,
                key_arg: Some(key_arg),
            },
        );
        let mut plan = ShardPlan::new();
        plan.types.insert("Board".to_owned(), tp);
        Arc::new(plan)
    }

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(MachineId::new(0), n)
    }

    #[test]
    fn creates_and_unknown_types_route_cross() {
        let router = ShardRouter::new(board_plan(0));
        let resolve = |_: ObjectId| Some("Board".to_owned());
        let unresolved = |_: ObjectId| None;
        let create = WireOp::Create {
            object: obj(0),
            type_name: "Board".into(),
            init: guesstimate_core::Value::Map(Default::default()),
        };
        assert_eq!(router.shard_of(&create, &resolve), ShardId::Cross);
        let post = WireOp::Shared(SharedOp::primitive(obj(0), "post", args!["news", "ann"]));
        assert_eq!(router.shard_of(&post, &unresolved), ShardId::Cross);
        assert_eq!(router.shard_of(&post, &resolve).to_string(), "Board:0/news");
    }

    #[test]
    fn composites_route_to_the_common_shard_or_cross() {
        let router = ShardRouter::new(board_plan(0));
        let resolve = |_: ObjectId| Some("Board".to_owned());
        let p = |topic: &str| SharedOp::primitive(obj(0), "post", args![topic, "ann"]);
        let same = WireOp::Shared(SharedOp::atomic(vec![p("news"), p("news")]));
        assert_eq!(router.shard_of(&same, &resolve).to_string(), "Board:0/news");
        let split = WireOp::Shared(SharedOp::atomic(vec![p("news"), p("random")]));
        assert_eq!(router.shard_of(&split, &resolve), ShardId::Cross);
        let or = WireOp::Shared(SharedOp::or_else(p("news"), p("news")));
        assert_eq!(router.shard_of(&or, &resolve).to_string(), "Board:0/news");
        let empty = WireOp::Shared(SharedOp::atomic(vec![]));
        assert_eq!(router.shard_of(&empty, &resolve), ShardId::Cross);
    }
}
