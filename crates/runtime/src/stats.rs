//! Runtime statistics: the raw series behind the paper's §7 figures.

use guesstimate_net::SimTime;

/// One completed synchronization, as observed by the master.
///
/// The duration spans from the `BeginSync` broadcast to the `SyncComplete`
/// broadcast (all three stages, §7 "the time it takes for each
/// synchronization (all three stages put together) to complete").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncSample {
    /// Round number.
    pub round: u64,
    /// Virtual time at which the round began.
    pub started_at: SimTime,
    /// BeginSync → SyncComplete.
    pub duration: SimTime,
    /// Stage 1, *AddUpdatesToMesh*: `BeginSync` broadcast until the last
    /// flush is recorded (i.e. until `BeginApply` goes out).
    pub flush_duration: SimTime,
    /// Stage 2, *ApplyUpdatesFromMesh*: `BeginApply` broadcast until the
    /// last ack is recorded.
    pub apply_duration: SimTime,
    /// Stage 3, *FlagCompletion*: whatever remains of `duration` after
    /// stages 1 and 2. The three stage durations sum to `duration` exactly.
    /// Stage 3 is a single `SyncComplete` broadcast with no round trip, so
    /// this is zero as observed by the master; the one-way propagation of
    /// `SyncComplete` to members is visible in the trace stream instead
    /// (`sync_complete_received` events).
    pub completion_duration: SimTime,
    /// Machines participating at round start.
    pub participants: usize,
    /// Operations committed in the round.
    pub ops_committed: u64,
    /// Total operations flushed onto the mesh in stage 1 (the round's queue
    /// depth). Can exceed `ops_committed` when a machine that already
    /// flushed is removed before commit.
    pub ops_flushed: u64,
    /// Recovery resends performed during the round. `u64` so long
    /// adversarial runs (many stall/nudge cycles per round under heavy
    /// loss) can never silently wrap the tally.
    pub resends: u64,
    /// Machines removed (and restarted) during the round.
    pub removals: u64,
}

impl SyncSample {
    /// True if fault recovery intervened in this round.
    pub fn recovered(&self) -> bool {
        self.resends > 0 || self.removals > 0
    }

    /// Sum of the three per-stage durations; equals `duration` exactly.
    pub fn stage_sum(&self) -> SimTime {
        self.flush_duration + self.apply_duration + self.completion_duration
    }
}

/// Per-machine counters.
///
/// `conflicts` is the Figure 7 quantity: "the number of instances when an
/// operation that succeeded on issue failed at commit time".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// Operations issued successfully (entered the pending list).
    pub issued: u64,
    /// Operations rejected at issue time (failed on the guesstimated state).
    pub issue_failures: u64,
    /// Own operations committed (with either result).
    pub committed_own: u64,
    /// Foreign operations applied at commit.
    pub committed_foreign: u64,
    /// Own operations committed through the async commute-first path
    /// ([`crate::MachineConfig::async_commit`]) — a subset of
    /// `committed_own`.
    pub committed_async_own: u64,
    /// Foreign async operations applied on arrival — a subset of
    /// `committed_foreign`.
    pub committed_async_foreign: u64,
    /// Own operations that succeeded at issue but failed at commit.
    pub conflicts: u64,
    /// Completion routines executed.
    pub completions_run: u64,
    /// Completion routines dropped by a restart.
    pub completions_dropped: u64,
    /// Pending operations re-executed while re-establishing `sg = [P](sc)`.
    pub replays: u64,
    /// Pending re-executions avoided by commute-aware replay skipping
    /// ([`crate::MachineConfig::commute_skip`]): each unit is one pending
    /// operation that would have been replayed had the round's foreign
    /// commits not provably commuted with the whole pending queue.
    pub replays_skipped: u64,
    /// Times this machine was restarted by recovery.
    pub restarts: u64,
    /// Times this machine promoted itself to master (failover extension).
    pub promotions: u64,
    /// Pending operations lost to restarts.
    pub ops_lost_to_restart: u64,
    /// Synchronization rounds this machine applied.
    pub rounds_applied: u64,
    /// High-water mark of the pending list `P` (queue depth at issue time).
    pub max_pending_depth: u64,
    /// Histogram of executions-per-own-operation; index `k` counts own
    /// operations that executed exactly `k` times from issue to commit.
    /// The §4 bound says nothing lands beyond index 3.
    pub exec_histogram: [u64; 8],
    /// Maximum executions observed for any single own operation.
    pub max_exec_count: u32,
    /// Completed synchronizations seen (master: rounds driven).
    pub syncs_seen: u64,
    /// Master only: one sample per completed round.
    pub sync_samples: Vec<SyncSample>,
    /// Issue-to-commit latencies of own operations issued through
    /// [`crate::Machine::issue_at`] (operations issued without a timestamp
    /// are not tracked).
    pub commit_latencies: Vec<SimTime>,
    /// Issue-to-commit latencies of own operations committed through the
    /// async path (a subset of neither list: serialized latencies land in
    /// `commit_latencies`, async ones here).
    pub async_commit_latencies: Vec<SimTime>,
}

impl MachineStats {
    /// Mean issue-to-commit latency among tracked operations.
    pub fn mean_commit_latency(&self) -> Option<SimTime> {
        if self.commit_latencies.is_empty() {
            return None;
        }
        let total: u64 = self.commit_latencies.iter().map(|t| t.as_micros()).sum();
        Some(SimTime::from_micros(
            total / self.commit_latencies.len() as u64,
        ))
    }
}

impl MachineStats {
    /// Records the final execution count of one own operation.
    pub(crate) fn record_exec_count(&mut self, count: u32) {
        let idx = (count as usize).min(self.exec_histogram.len() - 1);
        self.exec_histogram[idx] += 1;
        self.max_exec_count = self.max_exec_count.max(count);
    }

    /// Conflict rate among committed own operations (Figure 7, normalized).
    pub fn conflict_rate(&self) -> f64 {
        if self.committed_own == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.committed_own as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_histogram_saturates() {
        let mut s = MachineStats::default();
        s.record_exec_count(2);
        s.record_exec_count(3);
        s.record_exec_count(3);
        s.record_exec_count(100);
        assert_eq!(s.exec_histogram[2], 1);
        assert_eq!(s.exec_histogram[3], 2);
        assert_eq!(s.exec_histogram[7], 1);
        assert_eq!(s.max_exec_count, 100);
    }

    #[test]
    fn conflict_rate_handles_zero() {
        let mut s = MachineStats::default();
        assert_eq!(s.conflict_rate(), 0.0);
        s.committed_own = 4;
        s.conflicts = 1;
        assert_eq!(s.conflict_rate(), 0.25);
    }

    #[test]
    fn sample_recovered_flag() {
        let base = SyncSample {
            round: 1,
            started_at: SimTime::ZERO,
            duration: SimTime::from_millis(300),
            flush_duration: SimTime::from_millis(180),
            apply_duration: SimTime::from_millis(120),
            completion_duration: SimTime::ZERO,
            participants: 8,
            ops_committed: 10,
            ops_flushed: 10,
            resends: 0,
            removals: 0,
        };
        assert!(!base.recovered());
        assert!(SyncSample { resends: 1, ..base }.recovered());
        assert!(SyncSample {
            removals: 1,
            ..base
        }
        .recovered());
        assert_eq!(base.stage_sum(), base.duration);
    }
}
