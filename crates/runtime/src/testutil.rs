//! Shared test fixtures for the runtime crate's unit tests.

use std::collections::BTreeMap;

use guesstimate_core::{EffectSpec, Footprint, GState, OpRegistry, RestoreError, Value};

/// A counter with a non-negativity precondition — the minimal shared object.
#[derive(Clone, Default, Debug, PartialEq)]
pub struct Counter {
    /// Current value.
    pub n: i64,
}

impl GState for Counter {
    const TYPE_NAME: &'static str = "Counter";
    fn snapshot(&self) -> Value {
        Value::from(self.n)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        self.n = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
        Ok(())
    }
}

/// Registry with `Counter` and three methods:
/// * `add(d)` — fails if the counter would go negative;
/// * `add_capped(d, cap)` — additionally fails if the counter would exceed
///   `cap` (an easy way to manufacture commit-time conflicts);
/// * `set(v)` — unconditional.
pub fn counter_registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Counter>();
    r.register_method::<Counter>("add", |c, a| {
        let Some(d) = a.i64(0) else { return false };
        if c.n + d < 0 {
            return false;
        }
        c.n += d;
        true
    });
    r.register_method::<Counter>("add_capped", |c, a| {
        let (Some(d), Some(cap)) = (a.i64(0), a.i64(1)) else {
            return false;
        };
        if c.n + d < 0 || c.n + d > cap {
            return false;
        }
        c.n += d;
        true
    });
    r.register_method::<Counter>("set", |c, a| {
        let Some(v) = a.i64(0) else { return false };
        c.n = v;
        true
    });
    r
}

/// A string-keyed map of integer slots — the minimal object with a
/// non-trivial footprint structure (each slot is its own state key).
#[derive(Clone, Default, Debug, PartialEq)]
pub struct Slots {
    /// Slot contents, keyed by slot name.
    pub m: BTreeMap<String, i64>,
}

impl GState for Slots {
    const TYPE_NAME: &'static str = "Slots";
    fn snapshot(&self) -> Value {
        Value::Map(
            self.m
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect(),
        )
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let Value::Map(m) = v else {
            return Err(RestoreError::shape("map"));
        };
        self.m = m
            .iter()
            .map(|(k, v)| {
                v.as_i64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| RestoreError::shape("i64 slot"))
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// Registry with `Slots` and two methods:
/// * `put(key, v)` — writes one slot, with a declared per-key footprint;
/// * `raw_put(key, v)` — same behavior but **no** declared effect, so the
///   replay-skip judgment cannot reason about it.
pub fn slots_registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Slots>();
    r.register_with_effects::<Slots>(
        "put",
        EffectSpec::new(|a| {
            let Some(k) = a.str(0) else {
                return Footprint::new();
            };
            Footprint::new().reads([k]).writes([k])
        }),
        put_slot,
    );
    r.register_method::<Slots>("raw_put", put_slot);
    r
}

fn put_slot(s: &mut Slots, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(k), Some(v)) = (a.str(0), a.i64(1)) else {
        return false;
    };
    s.m.insert(k.to_owned(), v);
    true
}
