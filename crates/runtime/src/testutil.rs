//! Shared test fixtures for the runtime crate's unit tests.

use guesstimate_core::{GState, OpRegistry, RestoreError, Value};

/// A counter with a non-negativity precondition — the minimal shared object.
#[derive(Clone, Default, Debug, PartialEq)]
pub(crate) struct Counter {
    pub n: i64,
}

impl GState for Counter {
    const TYPE_NAME: &'static str = "Counter";
    fn snapshot(&self) -> Value {
        Value::from(self.n)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        self.n = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
        Ok(())
    }
}

/// Registry with `Counter` and three methods:
/// * `add(d)` — fails if the counter would go negative;
/// * `add_capped(d, cap)` — additionally fails if the counter would exceed
///   `cap` (an easy way to manufacture commit-time conflicts);
/// * `set(v)` — unconditional.
pub(crate) fn counter_registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Counter>();
    r.register_method::<Counter>("add", |c, a| {
        let Some(d) = a.i64(0) else { return false };
        if c.n + d < 0 {
            return false;
        }
        c.n += d;
        true
    });
    r.register_method::<Counter>("add_capped", |c, a| {
        let (Some(d), Some(cap)) = (a.i64(0), a.i64(1)) else {
            return false;
        };
        if c.n + d < 0 || c.n + d > cap {
            return false;
        }
        c.n += d;
        true
    });
    r.register_method::<Counter>("set", |c, a| {
        let Some(v) = a.i64(0) else { return false };
        c.n = v;
        true
    });
    r
}
