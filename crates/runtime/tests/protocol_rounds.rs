//! End-to-end synchronization-round tests, driven through the public API
//! over the deterministic virtual-time mesh: convergence, conflicts,
//! bounded re-execution, membership churn, recovery, and cross-channel
//! reordering.

mod rounds {
    use guesstimate_core::{args, MachineId, ObjectId, OpRegistry, SharedOp};
    use guesstimate_net::{FaultPlan, LatencyModel, NetConfig, SimNet, SimTime, StallWindow};
    use guesstimate_runtime::testutil::{counter_registry, Counter};
    use guesstimate_runtime::{Machine, MachineConfig};
    use std::sync::Arc;

    fn cluster(
        n: u32,
        seed: u64,
        latency: LatencyModel,
        faults: FaultPlan,
        cfg: MachineConfig,
    ) -> SimNet<Machine> {
        let registry = Arc::new(counter_registry());
        let netcfg = NetConfig::lan(seed)
            .with_latency(latency)
            .with_faults(faults);
        let mut net = SimNet::new(netcfg);
        net.add_machine(
            MachineId::new(0),
            Machine::new_master(MachineId::new(0), registry.clone(), cfg.clone()),
        );
        for i in 1..n {
            net.add_machine(
                MachineId::new(i),
                Machine::new_member(MachineId::new(i), registry.clone(), cfg.clone()),
            );
        }
        net
    }

    fn default_cfg() -> MachineConfig {
        // paranoid_checks: every protocol step re-validates `sg = [P](sc)`,
        // so these tests no longer need ad-hoc mid-run invariant calls.
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(500))
            .with_join_retry(SimTime::from_millis(300))
            .with_paranoid_checks(true)
    }

    fn fast_cluster(n: u32, seed: u64) -> SimNet<Machine> {
        cluster(
            n,
            seed,
            LatencyModel::constant_ms(10),
            FaultPlan::new(),
            default_cfg(),
        )
    }

    fn assert_converged(net: &SimNet<Machine>, ids: &[u32]) {
        let digests: Vec<u64> = ids
            .iter()
            .map(|&i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .committed_digest()
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "committed states diverged: {digests:?}"
        );
        for &i in ids {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert_eq!(m.pending_len(), 0, "machine {i} still has pending ops");
            assert_eq!(
                m.guess_digest(),
                m.committed_digest(),
                "machine {i}: sg != sc at quiescence"
            );
        }
    }

    #[test]
    fn two_machines_converge_on_counter() {
        let mut net = fast_cluster(2, 1);
        // Let membership settle and create the object on the master.
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Both machines see the object now; both add.
        for i in 0..2 {
            let m = net
                .actor_mut(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert_eq!(m.object_type(obj), Some("Counter"));
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![1]))
                .expect("issue: the target object is known to this machine"));
        }
        net.run_until(SimTime::from_secs(4));
        assert_converged(&net, &[0, 1]);
        for i in 0..2 {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert_eq!(m.read::<Counter, _>(obj, |c| c.n), Some(2));
        }
    }

    #[test]
    fn eight_machines_converge_under_load() {
        let mut net = fast_cluster(8, 7);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Every machine issues 5 increments at staggered times.
        for i in 0..8u32 {
            for k in 0..5u64 {
                net.schedule_call(
                    SimTime::from_millis(2_000 + 97 * k + 13 * i as u64),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        net.run_until(SimTime::from_secs(8));
        assert_converged(&net, &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(
            net.actor(MachineId::new(3))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(40)
        );
    }

    #[test]
    fn conflicting_ops_commit_consistently_and_count_conflicts() {
        let mut net = fast_cluster(4, 3);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // All four try to claim the last 2 units of a capacity-3 resource
        // in the same round: at most 3 add_capped(1, 3) can succeed.
        for i in 0..4 {
            net.schedule_call(
                SimTime::from_millis(2_010 + i as u64),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    let ok = m
                        .issue(SharedOp::primitive(obj, "add_capped", args![1, 3]))
                        .expect("issue: the target object is known to this machine");
                    assert!(ok, "succeeds optimistically on the guesstimate");
                },
            );
        }
        net.run_until(SimTime::from_secs(5));
        assert_converged(&net, &[0, 1, 2, 3]);
        let n = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .read::<Counter, _>(obj, |c| c.n)
            .expect("the object is replicated on this machine");
        assert_eq!(n, 3, "cap respected in committed state");
        let conflicts: u64 = (0..4)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .stats()
                    .conflicts
            })
            .sum();
        assert_eq!(conflicts, 1, "exactly one issuer lost the race");
    }

    #[test]
    fn completion_reports_commit_failure_on_conflict() {
        use std::sync::atomic::{AtomicI32, Ordering};
        let mut net = fast_cluster(2, 11);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        let seen = Arc::new(AtomicI32::new(-1));
        // m0's op sorts first (smaller machine id) and wins; m1's loses.
        let s = seen.clone();
        net.call(MachineId::new(0), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add_capped", args![3, 3]))
                .expect("issue: the target object is known to this machine"));
        });
        net.call(MachineId::new(1), |m, _| {
            assert!(m
                .issue_with_completion(
                    SharedOp::primitive(obj, "add_capped", args![3, 3]),
                    Box::new(move |b| s.store(b as i32, Ordering::SeqCst)),
                )
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(4));
        assert_eq!(seen.load(Ordering::SeqCst), 0, "completion saw failure");
        assert_eq!(
            net.actor(MachineId::new(1))
                .expect("machine is registered on the mesh")
                .stats()
                .conflicts,
            1
        );
        assert_converged(&net, &[0, 1]);
    }

    #[test]
    fn own_ops_execute_at_most_three_times() {
        let mut net = fast_cluster(5, 13);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Dense issue schedule so some ops land inside sync rounds (and get
        // the extra replay execution).
        for i in 0..5u32 {
            for k in 0..40u64 {
                net.schedule_call(
                    SimTime::from_millis(2_000 + 11 * k + 3 * i as u64),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        net.run_until(SimTime::from_secs(10));
        assert_converged(&net, &[0, 1, 2, 3, 4]);
        for i in 0..5 {
            let st = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh")
                .stats();
            assert!(
                st.max_exec_count <= 3,
                "machine {i}: op executed {} times",
                st.max_exec_count
            );
            assert!(st.exec_histogram[2] > 0, "some ops executed twice");
        }
        // With a dense schedule, at least someone's op got the 3rd execution.
        let threes: u64 = (0..5)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .stats()
                    .exec_histogram[3]
            })
            .sum();
        assert!(threes > 0, "expected some triple executions");
    }

    #[test]
    fn late_joiner_receives_full_state() {
        let mut net = fast_cluster(2, 17);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.call(MachineId::new(0), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![5]))
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(3));
        // Machine 2 joins late.
        let registry = Arc::new(counter_registry());
        net.schedule_join(
            SimTime::from_secs(3),
            MachineId::new(2),
            Machine::new_member(MachineId::new(2), registry, default_cfg()),
        );
        net.run_until(SimTime::from_secs(6));
        let late = net
            .actor(MachineId::new(2))
            .expect("machine is registered on the mesh");
        assert!(late.in_cohort(), "late joiner participates in rounds");
        assert_eq!(late.read::<Counter, _>(obj, |c| c.n), Some(5));
        assert_converged(&net, &[0, 1, 2]);
        // And it can issue ops that commit everywhere.
        net.call(MachineId::new(2), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![2]))
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(8));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(7)
        );
    }

    #[test]
    fn stalled_machine_is_removed_restarted_and_rejoins() {
        // Machine 2 goes silent from t=4s to t=8s. The master should remove
        // it from a round, restart it, and re-admit it afterwards — while
        // the others keep committing (the §7 failure/recovery story).
        let faults = FaultPlan::new().with_stall(StallWindow::new(
            MachineId::new(2),
            SimTime::from_secs(4),
            SimTime::from_secs(8),
        ));
        let mut net = cluster(3, 23, LatencyModel::constant_ms(10), faults, default_cfg());
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        // Continuous activity on machines 0 and 1 throughout.
        for k in 0..80u64 {
            net.schedule_call(
                SimTime::from_millis(2_000 + k * 100),
                MachineId::new((k % 2) as u32),
                move |m: &mut Machine, _| {
                    let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                },
            );
        }
        net.run_until(SimTime::from_secs(14));
        let master_stats = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .stats()
            .clone();
        let removals: u64 = master_stats.sync_samples.iter().map(|s| s.removals).sum();
        assert!(removals >= 1, "master removed the stalled machine");
        let m2 = net
            .actor(MachineId::new(2))
            .expect("machine is registered on the mesh");
        assert!(m2.stats().restarts >= 1, "machine 2 restarted");
        assert!(m2.in_cohort(), "machine 2 rejoined");
        assert_converged(&net, &[0, 1, 2]);
        assert_eq!(
            m2.read::<Counter, _>(obj, |c| c.n),
            Some(80),
            "no committed updates were lost"
        );
    }

    #[test]
    fn survives_random_message_loss() {
        let faults = FaultPlan::new().with_drop_prob(0.02);
        let mut net = cluster(4, 29, LatencyModel::constant_ms(10), faults, default_cfg());
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(3));
        for i in 0..4u32 {
            for k in 0..10u64 {
                net.schedule_call(
                    SimTime::from_millis(3_000 + 151 * k + 17 * i as u64),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        // Long quiet tail so recovery can finish.
        net.run_until(SimTime::from_secs(30));
        // All currently-in-cohort machines agree.
        let in_cohort: Vec<u32> = (0..4)
            .filter(|&i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .in_cohort()
            })
            .collect();
        assert!(in_cohort.len() >= 2, "most machines still participating");
        assert_converged(&net, &in_cohort);
        // Committed value = 40 minus ops lost to restarts.
        let lost: u64 = (0..4)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine is registered on the mesh")
                    .stats()
                    .ops_lost_to_restart
            })
            .sum();
        let n = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .read_committed::<Counter, _>(obj, |c| c.n)
            .expect("the object is replicated on this machine");
        assert_eq!(
            n as u64 + lost,
            40,
            "every issued op committed or was lost to a restart"
        );
    }

    #[test]
    fn graceful_leave_shrinks_rounds() {
        let mut net = fast_cluster(3, 31);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .members()
                .len(),
            3
        );
        net.call(MachineId::new(2), |m, ctx| m.leave(ctx));
        net.run_until(SimTime::from_secs(4));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .members()
                .len(),
            2
        );
        // Rounds keep completing with 2 participants.
        let samples = &net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .stats()
            .sync_samples;
        let last = samples
            .last()
            .expect("the master completed at least one round");
        assert_eq!(last.participants, 2);
    }

    #[test]
    fn parallel_flush_converges_too() {
        let cfg = default_cfg().with_parallel_flush(true);
        let mut net = cluster(6, 37, LatencyModel::constant_ms(10), FaultPlan::new(), cfg);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        for i in 0..6 {
            net.call(MachineId::new(i), |m, _| {
                let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
            });
        }
        net.run_until(SimTime::from_secs(5));
        assert_converged(&net, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(
            net.actor(MachineId::new(5))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(6)
        );
    }

    #[test]
    fn sync_samples_are_recorded_with_plausible_durations() {
        let mut net = fast_cluster(4, 41);
        net.run_until(SimTime::from_secs(5));
        let stats = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .stats();
        assert!(stats.sync_samples.len() >= 10);
        for s in &stats.sync_samples {
            // With 10ms constant latency and 4 machines, a round takes a few
            // dozen ms — never longer than the stall timeout in this test.
            assert!(s.duration >= SimTime::from_millis(20), "{:?}", s);
            assert!(s.duration < SimTime::from_millis(500), "{:?}", s);
            assert!(!s.recovered());
        }
        // Serial flush: more participants, longer rounds (on average).
        let early: Vec<_> = stats
            .sync_samples
            .iter()
            .filter(|s| s.participants == 1)
            .collect();
        let late: Vec<_> = stats
            .sync_samples
            .iter()
            .filter(|s| s.participants == 4)
            .collect();
        if let (Some(e), Some(l)) = (early.first(), late.first()) {
            assert!(l.duration > e.duration);
        }
    }

    #[test]
    fn or_else_and_atomic_ops_flow_through_the_protocol() {
        let mut net = fast_cluster(2, 43);
        net.run_until(SimTime::from_secs(1));
        let (a, b) = {
            let m = net
                .actor_mut(MachineId::new(0))
                .expect("machine is registered on the mesh");
            (
                m.create_instance(Counter { n: 0 }),
                m.create_instance(Counter { n: 0 }),
            )
        };
        net.run_until(SimTime::from_secs(2));
        net.call(MachineId::new(1), |m, _| {
            // Atomic transfer-ish op plus an OrElse fallback.
            let op = SharedOp::atomic(vec![
                SharedOp::primitive(a, "add", args![-1]), // fails: would go negative
                SharedOp::primitive(b, "add", args![1]),
            ])
            .or_else(SharedOp::primitive(b, "add", args![10]));
            assert!(m
                .issue(op)
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(4));
        assert_converged(&net, &[0, 1]);
        let m0 = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh");
        assert_eq!(m0.read::<Counter, _>(a, |c| c.n), Some(0));
        assert_eq!(m0.read::<Counter, _>(b, |c| c.n), Some(10));
    }

    #[test]
    fn registry_must_match_for_foreign_types() {
        // A machine whose registry lacks a type cannot materialize foreign
        // objects; creating locally panics upfront (checked in machine.rs).
        // Here we verify the catalog propagates type names correctly.
        let mut net = fast_cluster(2, 47);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 3 });
        net.run_until(SimTime::from_secs(3));
        let m1 = net
            .actor(MachineId::new(1))
            .expect("machine is registered on the mesh");
        assert_eq!(m1.object_type(obj), Some("Counter"));
        assert_eq!(m1.available_objects().len(), 1);
        assert_eq!(m1.read::<Counter, _>(obj, |c| c.n), Some(3));
    }

    #[test]
    fn guess_state_reflects_local_ops_before_commit() {
        // The heart of the model: reads see local effects immediately, even
        // though the committed state lags until the next synchronization.
        let mut net = fast_cluster(2, 53);
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        let m0 = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh");
        m0.issue(SharedOp::primitive(obj, "add", args![9]))
            .expect("issue: the target object is known to this machine");
        assert_eq!(m0.read::<Counter, _>(obj, |c| c.n), Some(9), "sg updated");
        assert_eq!(
            m0.read_committed::<Counter, _>(obj, |c| c.n),
            Some(0),
            "sc unchanged until commit"
        );
        assert_eq!(m0.pending_len(), 1);
    }

    /// Dedicated OpRegistry sharing test: two registries with the same
    /// registrations behave identically (they need not be the same Arc).
    #[test]
    fn distinct_but_equal_registries_interoperate() {
        let netcfg = NetConfig::lan(59).with_latency(LatencyModel::constant_ms(10));
        let mut net = SimNet::new(netcfg);
        net.add_machine(
            MachineId::new(0),
            Machine::new_master(
                MachineId::new(0),
                Arc::new(counter_registry()),
                default_cfg(),
            ),
        );
        net.add_machine(
            MachineId::new(1),
            Machine::new_member(
                MachineId::new(1),
                Arc::new(counter_registry()),
                default_cfg(),
            ),
        );
        net.run_until(SimTime::from_secs(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(2));
        net.call(MachineId::new(1), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(obj, "add", args![4]))
                .expect("issue: the target object is known to this machine"));
        });
        net.run_until(SimTime::from_secs(4));
        assert_eq!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(4)
        );
    }

    #[test]
    fn unknown_object_issue_does_not_poison_protocol() {
        let mut net = fast_cluster(2, 61);
        net.run_until(SimTime::from_secs(1));
        let bogus = ObjectId::new(MachineId::new(9), 0);
        net.call(MachineId::new(1), |m, _| {
            assert!(m
                .issue(SharedOp::primitive(bogus, "add", args![1]))
                .is_err());
        });
        net.run_until(SimTime::from_secs(3));
        // Rounds still complete.
        assert!(
            net.actor(MachineId::new(0))
                .expect("machine is registered on the mesh")
                .stats()
                .syncs_seen
                > 5
        );
    }

    #[test]
    fn empty_registry_types_are_queryable() {
        let r: Arc<OpRegistry> = Arc::new(counter_registry());
        assert!(r.has_type("Counter"));
        assert!(r.has_method("Counter", "add_capped"));
    }
}

mod reorder {
    //! White-box schedules that force cross-channel reordering: the
    //! Operations channel outruns the Signals channel, so `Ops` batches
    //! (and even `BeginApply`) arrive before their round's `BeginSync` and
    //! must be buffered.

    use guesstimate_core::{args, MachineId, SharedOp};
    use guesstimate_net::{LatencyModel, NetConfig, SimNet, SimTime};
    use guesstimate_runtime::testutil::{counter_registry, Counter};
    use guesstimate_runtime::{Machine, MachineConfig};
    use std::sync::Arc;

    fn skewed_cluster(n: u32, ops_ms: u64, signals_ms: u64, seed: u64) -> SimNet<Machine> {
        let registry = Arc::new(counter_registry());
        let netcfg = NetConfig::lan(seed)
            .with_latency(LatencyModel::constant_ms(ops_ms))
            .with_signals_latency(LatencyModel::constant_ms(signals_ms));
        let cfg = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_secs(2))
            .with_join_retry(SimTime::from_millis(300));
        let mut net = SimNet::new(netcfg);
        net.add_machine(
            MachineId::new(0),
            Machine::new_master(MachineId::new(0), registry.clone(), cfg.clone()),
        );
        for i in 1..n {
            net.add_machine(
                MachineId::new(i),
                Machine::new_member(MachineId::new(i), registry.clone(), cfg.clone()),
            );
        }
        net
    }

    fn converged(net: &SimNet<Machine>, n: u32) -> bool {
        let d0 = net
            .actor(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .committed_digest();
        (1..n).all(|i| {
            net.actor(MachineId::new(i))
                .expect("machine is registered on the mesh")
                .committed_digest()
                == d0
        }) && (0..n).all(|i| {
            net.actor(MachineId::new(i))
                .expect("machine is registered on the mesh")
                .pending_len()
                == 0
        })
    }

    #[test]
    fn fast_ops_channel_forces_buffering_and_still_converges() {
        // Ops arrive in 1 ms; signals take 40 ms. Every round's Ops batch
        // lands long before its BeginSync.
        let mut net = skewed_cluster(3, 1, 40, 71);
        net.run_until(SimTime::from_secs(3));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(5));
        for i in 0..3u32 {
            for k in 0..8u64 {
                net.schedule_call(
                    SimTime::from_secs(5) + SimTime::from_millis(60 * k + 7 * u64::from(i)),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        let _ = m.issue(SharedOp::primitive(obj, "add", args![1]));
                    },
                );
            }
        }
        net.run_until(SimTime::from_secs(12));
        assert!(converged(&net, 3));
        assert_eq!(
            net.actor(MachineId::new(1))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(24)
        );
        for i in 0..3 {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert!(m.check_guess_invariant());
            assert!(m.stats().max_exec_count <= 3);
        }
    }

    #[test]
    fn slow_ops_channel_delays_apply_until_batches_arrive() {
        // The opposite skew: signals race ahead (1 ms) while op batches
        // crawl (50 ms), so BeginApply regularly precedes the data it
        // authorizes and machines must wait (or request resends).
        let mut net = skewed_cluster(3, 50, 1, 73);
        net.run_until(SimTime::from_secs(3));
        let obj = net
            .actor_mut(MachineId::new(0))
            .expect("machine is registered on the mesh")
            .create_instance(Counter { n: 0 });
        net.run_until(SimTime::from_secs(5));
        for i in 0..3u32 {
            net.call(MachineId::new(i), |m, _| {
                let _ = m.issue(SharedOp::primitive(obj, "add", args![2]));
            });
        }
        net.run_until(SimTime::from_secs(12));
        assert!(converged(&net, 3));
        assert_eq!(
            net.actor(MachineId::new(2))
                .expect("machine is registered on the mesh")
                .read::<Counter, _>(obj, |c| c.n),
            Some(6)
        );
    }

    #[test]
    fn buffered_rounds_are_bounded() {
        // The future-round buffer must not grow without bound even when a
        // machine is starved of BeginSyncs (signals crawl at 300 ms while
        // the master keeps producing rounds).
        let mut net = skewed_cluster(2, 1, 300, 79);
        net.run_until(SimTime::from_secs(20));
        for i in 0..2 {
            let m = net
                .actor(MachineId::new(i))
                .expect("machine is registered on the mesh");
            assert!(
                m.buffered_rounds() <= 8,
                "m{i}: buffer bounded, got {}",
                m.buffered_rounds()
            );
        }
    }
}
