//! End-to-end observability tests under the deterministic sim driver.
//!
//! These pin down the contract between the protocol, the per-stage
//! [`SyncSample`] decomposition, and the [`TraceEvent`] stream:
//!
//! 1. the three stage durations sum *exactly* to the whole-round duration;
//! 2. the master's trace events for a round appear in three-stage protocol
//!    order, with timestamps consistent with the round's sample;
//! 3. a stalled machine produces the recovery events (`resend`, `removed`)
//!    and, once the stall lifts, a member-side `restarted` event.

use std::sync::Arc;

use guesstimate_core::{args, GState, MachineId, OpRegistry, RestoreError, SharedOp, Value};
use guesstimate_net::{
    FaultPlan, LatencyModel, NetConfig, RecordingTracer, SimTime, StallWindow, TraceEvent,
    TraceRecord,
};
use guesstimate_runtime::{
    run_until_cohort, sim_cluster_traced, Machine, MachineConfig, SyncSample,
};

/// The runtime crate's unit-test counter, reproduced here because the crate's
/// `testutil` module is `#[cfg(test)]`-gated and invisible to integration
/// tests.
#[derive(Clone, Default, Debug, PartialEq)]
struct Counter {
    n: i64,
}

impl GState for Counter {
    const TYPE_NAME: &'static str = "Counter";
    fn snapshot(&self) -> Value {
        Value::from(self.n)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        self.n = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
        Ok(())
    }
}

fn counter_registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Counter>();
    r.register_method::<Counter>("add", |c, a| {
        let Some(d) = a.i64(0) else { return false };
        c.n += d;
        true
    });
    r
}

/// Runs a traced 4-machine session with activity on every machine and
/// returns the master's sync samples plus the recorded trace.
fn traced_session() -> (Vec<SyncSample>, Vec<TraceRecord>) {
    let cfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(100))
        .with_stall_timeout(SimTime::from_secs(2));
    let netcfg = NetConfig::lan(11).with_latency(LatencyModel::constant_ms(10));
    let tracer = Arc::new(RecordingTracer::new());
    let mut net = sim_cluster_traced(4, counter_registry(), cfg, netcfg, Some(tracer.clone()));
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(Counter::default());
    // Ops from every machine, spread over a few rounds.
    for k in 0..12u64 {
        let t = net.now() + SimTime::from_millis(300 + 130 * k);
        let user = MachineId::new((k % 4) as u32);
        net.schedule_call(t, user, move |m: &mut Machine, _ctx| {
            let _ = m.issue(SharedOp::primitive(board, "add", args![1]));
        });
    }
    net.run_until(net.now() + SimTime::from_secs(8));

    let samples = net
        .actor(MachineId::new(0))
        .unwrap()
        .stats()
        .sync_samples
        .clone();
    (samples, tracer.take())
}

#[test]
fn stage_timings_decompose_round_duration() {
    let (samples, _) = traced_session();
    assert!(samples.len() > 10, "rounds completed: {}", samples.len());
    for s in &samples {
        assert_eq!(
            s.stage_sum(),
            s.duration,
            "round {}: stages {:?}+{:?}+{:?} must sum to {:?}",
            s.round,
            s.flush_duration,
            s.apply_duration,
            s.completion_duration,
            s.duration
        );
        assert!(
            s.flush_duration > SimTime::ZERO && s.apply_duration > SimTime::ZERO,
            "round {}: both round-trip stages take time under 10ms links",
            s.round
        );
    }
    assert!(
        samples.iter().any(|s| s.ops_committed > 0),
        "the scheduled ops commit"
    );
    assert!(
        samples.iter().all(|s| s.ops_flushed >= s.ops_committed),
        "without removals, everything flushed gets committed"
    );
}

#[test]
fn trace_ordering_matches_three_stage_protocol() {
    let (samples, records) = traced_session();
    let master = MachineId::new(0);
    assert!(!records.is_empty());

    for s in &samples {
        let round_events: Vec<&TraceRecord> = records
            .iter()
            .filter(|r| r.source == master && r.event.round() == Some(s.round))
            .collect();
        let pos = |name: &str| round_events.iter().position(|r| r.event.name() == name);
        let started = pos("round_started").expect("round_started traced");
        let begin_apply = pos("begin_apply").expect("begin_apply traced");
        let complete = pos("sync_complete").expect("sync_complete traced");
        assert!(
            started < begin_apply && begin_apply < complete,
            "round {}",
            s.round
        );
        for (i, r) in round_events.iter().enumerate() {
            match r.event {
                TraceEvent::FlushWindowClosed { .. } => {
                    assert!(started < i && i < begin_apply, "flush inside stage 1")
                }
                TraceEvent::AckReceived { .. } => {
                    assert!(begin_apply < i && i <= complete, "acks inside stage 2")
                }
                _ => {}
            }
        }

        // Timestamps agree with the sample's decomposition.
        assert_eq!(round_events[started].at, s.started_at);
        assert_eq!(
            round_events[begin_apply].at.saturating_since(s.started_at),
            s.flush_duration,
            "round {}: begin_apply marks the stage 1/2 boundary",
            s.round
        );
        assert_eq!(
            round_events[complete].at.saturating_since(s.started_at),
            s.duration,
            "round {}: sync_complete marks round end",
            s.round
        );

        // Stage 3 propagation: member receipts happen at or after the
        // master's broadcast.
        for r in records.iter().filter(|r| {
            r.source != master && r.event == TraceEvent::SyncCompleteReceived { round: s.round }
        }) {
            assert!(r.at >= round_events[complete].at, "round {}", s.round);
        }
    }
}

#[test]
fn recovery_round_emits_resend_and_removal_events() {
    let stalled = MachineId::new(2);
    let cfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(100))
        .with_stall_timeout(SimTime::from_millis(800));
    let faults = FaultPlan::new().with_stall(StallWindow::new(
        stalled,
        SimTime::from_secs(6),
        SimTime::from_secs(14),
    ));
    let netcfg = NetConfig::lan(23)
        .with_latency(LatencyModel::constant_ms(10))
        .with_faults(faults);
    let tracer = Arc::new(RecordingTracer::new());
    let mut net = sim_cluster_traced(3, counter_registry(), cfg, netcfg, Some(tracer.clone()));
    assert!(run_until_cohort(&mut net, SimTime::from_secs(5)));
    net.run_until(SimTime::from_secs(30));

    let samples = net
        .actor(MachineId::new(0))
        .unwrap()
        .stats()
        .sync_samples
        .clone();
    let recovered: Vec<&SyncSample> = samples.iter().filter(|s| s.recovered()).collect();
    assert!(!recovered.is_empty(), "the stall forces recovery rounds");

    let records = tracer.take();
    let master = MachineId::new(0);
    let resend = records.iter().find(|r| {
        r.source == master
            && matches!(r.event, TraceEvent::Resend { machine, .. } if machine == stalled)
    });
    let removed = records.iter().find(|r| {
        r.source == master
            && matches!(r.event, TraceEvent::Removed { machine, .. } if machine == stalled)
    });
    let resend = resend.expect("master nudges the stalled machine first");
    let removed = removed.expect("then removes it from the round");
    assert!(resend.at < removed.at, "resend precedes removal");

    // The removal is visible in the matching sample too.
    let removal_round = removed.event.round().unwrap();
    let sample = samples.iter().find(|s| s.round == removal_round);
    assert!(
        sample.is_none_or(|s| s.removals > 0),
        "the removal round's sample records it"
    );

    // Once the stall lifts, the restarted member announces itself.
    let restarted = records
        .iter()
        .find(|r| r.source == stalled && r.event == TraceEvent::Restarted)
        .expect("stalled machine restarts after the window");
    assert!(restarted.at > removed.at);
    assert_eq!(
        net.actor(stalled).unwrap().stats().restarts,
        1,
        "stats agree with the trace"
    );
}
