//! Bounded exploration of rule interleavings: a small model checker.
//!
//! From an initial system and a finite *menu* of issuable operations per
//! machine, [`explore`] enumerates every interleaving of R1/R2/R3
//! transitions up to a depth bound, deduplicating states by digest and
//! checking the §3 invariants in every reachable state. This mechanizes the
//! paper's "these invariants can be proved by induction over the transition
//! rules" for finite instances.

use std::collections::HashSet;

use guesstimate_core::{MachineId, SharedOp};

use crate::invariants::{check_invariants, InvariantViolation};
use crate::model::SemSystem;

/// One transition choice the explorer can make.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemAction {
    /// Rule R1 at a machine.
    Local(MachineId),
    /// Rule R2 at a machine, issuing menu entry `menu_index`.
    Issue(MachineId, usize),
    /// Rule R3: commit the front of a machine's pending queue.
    Commit(MachineId),
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum transition depth from the initial state.
    pub max_depth: usize,
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Each machine may issue at most this many operations along a path
    /// (keeps the space finite even with a permissive menu).
    pub max_issues_per_machine: usize,
    /// Include R1 (local) transitions; they never affect shared state, so
    /// disabling them shrinks the space without losing invariant coverage.
    pub include_local: bool,
    /// Additionally check, in every visited state, that draining all
    /// pending queues (repeated R3) reaches quiescence with the guesstimated
    /// and committed states equal on every machine — the paper's
    /// convergence guarantee, checked from *every* reachable state rather
    /// than just the initial one.
    pub check_quiescence: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 8,
            max_states: 20_000,
            max_issues_per_machine: 2,
            include_local: false,
            check_quiescence: false,
        }
    }
}

/// What the explorer found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states_visited: usize,
    /// Deepest path length reached.
    pub max_depth_reached: usize,
    /// Invariant violations, with the action path that led to each
    /// (empty means every reachable state satisfied the invariants).
    pub violations: Vec<(Vec<SemAction>, InvariantViolation)>,
    /// Paths from which draining to quiescence failed to equalize
    /// guesstimated and committed state (only populated when
    /// [`ExploreConfig::check_quiescence`] is on).
    pub quiescence_failures: Vec<Vec<SemAction>>,
    /// True if the search was truncated by `max_states`.
    pub truncated: bool,
}

/// Explores all interleavings of issue/commit (and optionally local)
/// transitions from `initial`, drawing issued operations from `menu`,
/// checking invariants in every reachable state.
pub fn explore(initial: &SemSystem, menu: &[SharedOp], cfg: ExploreConfig) -> ExploreReport {
    let ids = initial.machine_ids();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut report = ExploreReport {
        states_visited: 0,
        max_depth_reached: 0,
        violations: Vec::new(),
        quiescence_failures: Vec::new(),
        truncated: false,
    };
    // Depth-first with explicit stack: (system, depth, issues-per-machine, path).
    let issues0 = vec![0usize; ids.len()];
    let mut stack: Vec<(SemSystem, usize, Vec<usize>, Vec<SemAction>)> =
        vec![(initial.clone(), 0, issues0, Vec::new())];
    seen.insert(initial.digest());
    while let Some((sys, depth, issues, path)) = stack.pop() {
        if report.states_visited >= cfg.max_states {
            report.truncated = true;
            break;
        }
        report.states_visited += 1;
        report.max_depth_reached = report.max_depth_reached.max(depth);
        if let Err(v) = check_invariants(&sys) {
            report.violations.push((path.clone(), v));
            continue;
        }
        if cfg.check_quiescence {
            let mut drained = sys.clone();
            while drained.commit_any().unwrap_or(false) {}
            let converged = drained.quiescent()
                && drained.machine_ids().iter().all(|&id| {
                    let m = drained.machine(id).expect("machine");
                    m.guess.digest() == m.committed.digest()
                })
                && check_invariants(&drained).is_ok();
            if !converged {
                report.quiescence_failures.push(path.clone());
            }
        }
        if depth >= cfg.max_depth {
            continue;
        }
        for (mi, &machine) in ids.iter().enumerate() {
            // R3
            if !sys
                .machine(machine)
                .expect("machine exists")
                .pending
                .is_empty()
            {
                let mut next = sys.clone();
                next.commit(machine).expect("commit enabled");
                if seen.insert(next.digest()) {
                    let mut p = path.clone();
                    p.push(SemAction::Commit(machine));
                    stack.push((next, depth + 1, issues.clone(), p));
                }
            }
            // R2
            if issues[mi] < cfg.max_issues_per_machine {
                for (oi, op) in menu.iter().enumerate() {
                    let mut next = sys.clone();
                    if let Ok(true) = next.issue(machine, op.clone()) {
                        if seen.insert(next.digest()) {
                            let mut iss = issues.clone();
                            iss[mi] += 1;
                            let mut p = path.clone();
                            p.push(SemAction::Issue(machine, oi));
                            stack.push((next, depth + 1, iss, p));
                        }
                    }
                }
            }
            // R1
            if cfg.include_local {
                let mut next = sys.clone();
                next.local(machine).expect("machine exists");
                if seen.insert(next.digest()) {
                    let mut p = path.clone();
                    p.push(SemAction::Local(machine));
                    stack.push((next, depth + 1, issues.clone(), p));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmodel::{counter_object, counter_system};
    use guesstimate_core::args;

    #[test]
    fn exhaustive_small_space_has_no_violations() {
        let sys = counter_system(2, 3);
        let obj = counter_object();
        let menu = vec![
            SharedOp::primitive(obj, "add", args![1]),
            SharedOp::primitive(obj, "add_capped", args![1, 5]),
        ];
        let report = explore(&sys, &menu, ExploreConfig::default());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report.states_visited > 100,
            "space was actually explored: {}",
            report.states_visited
        );
        assert!(!report.truncated);
    }

    #[test]
    fn local_transitions_do_not_break_invariants() {
        let sys = counter_system(2, 3);
        let obj = counter_object();
        let menu = vec![SharedOp::primitive(obj, "add", args![2])];
        let cfg = ExploreConfig {
            max_depth: 5,
            include_local: true,
            ..ExploreConfig::default()
        };
        let report = explore(&sys, &menu, cfg);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn three_machines_with_conflicts_stay_consistent() {
        let sys = counter_system(3, 3);
        let obj = counter_object();
        // Capped adds conflict heavily (cap 5, initial 3, up to 6 claimed);
        // invariants must survive anyway.
        let menu = vec![SharedOp::primitive(obj, "add_capped", args![1, 5])];
        let cfg = ExploreConfig {
            max_depth: 9,
            max_issues_per_machine: 2,
            ..ExploreConfig::default()
        };
        let report = explore(&sys, &menu, cfg);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report.states_visited > 200,
            "visited {}",
            report.states_visited
        );
    }

    #[test]
    fn quiescence_is_reachable_from_every_explored_state() {
        let sys = counter_system(2, 3);
        let obj = counter_object();
        let menu = vec![
            SharedOp::primitive(obj, "add", args![1]),
            SharedOp::primitive(obj, "add_capped", args![2, 6]),
        ];
        let cfg = ExploreConfig {
            max_depth: 6,
            check_quiescence: true,
            ..ExploreConfig::default()
        };
        let report = explore(&sys, &menu, cfg);
        assert!(report.violations.is_empty());
        assert!(
            report.quiescence_failures.is_empty(),
            "convergence from every reachable state: {:?}",
            report.quiescence_failures.first()
        );
        assert!(report.states_visited > 50);
    }

    #[test]
    fn multi_object_menus_keep_invariants() {
        use guesstimate_core::{MachineId, ObjectId, ObjectStore};
        use std::sync::Arc;
        // Two counters with different caps; ops interleave across objects.
        let a = ObjectId::new(MachineId::new(0), 0);
        let b = ObjectId::new(MachineId::new(0), 1);
        let mut store = ObjectStore::new();
        store.insert(a, Box::new(crate::testmodel::Counter { n: 0 }));
        store.insert(b, Box::new(crate::testmodel::Counter { n: 1 }));
        let sys =
            crate::model::SemSystem::new(2, Arc::new(crate::testmodel::counter_registry()), &store);
        let menu = vec![
            SharedOp::primitive(a, "add_capped", args![1, 2]),
            SharedOp::primitive(b, "add_capped", args![2, 4]),
            // A cross-object atomic: both or neither.
            SharedOp::atomic(vec![
                SharedOp::primitive(a, "add_capped", args![1, 2]),
                SharedOp::primitive(b, "add_capped", args![1, 4]),
            ]),
        ];
        let cfg = ExploreConfig {
            max_depth: 7,
            check_quiescence: true,
            ..ExploreConfig::default()
        };
        let report = explore(&sys, &menu, cfg);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.quiescence_failures.is_empty());
        assert!(
            report.states_visited > 200,
            "visited {}",
            report.states_visited
        );
    }

    #[test]
    fn max_states_truncates() {
        let sys = counter_system(3, 3);
        let obj = counter_object();
        let menu = vec![
            SharedOp::primitive(obj, "add", args![1]),
            SharedOp::primitive(obj, "add", args![2]),
            SharedOp::primitive(obj, "add", args![3]),
        ];
        let cfg = ExploreConfig {
            max_depth: 12,
            max_states: 200,
            max_issues_per_machine: 4,
            include_local: false,
            check_quiescence: false,
        };
        let report = explore(&sys, &menu, cfg);
        assert!(report.truncated);
        assert!(report.states_visited <= 200);
    }
}
