//! The §3 invariants, checked by re-execution.

use std::error::Error;
use std::fmt;

use crate::model::{replay_pending, SemSystem};

/// A violated invariant, with enough context to debug the offending state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// `[P](sc) != sg` on some machine.
    GuessMismatch {
        /// The offending machine.
        machine: guesstimate_core::MachineId,
        /// Digest of `[P](sc)`.
        expected: u64,
        /// Digest of `sg`.
        actual: u64,
    },
    /// Two machines disagree on the committed state.
    CommittedDiverged {
        /// First machine.
        a: guesstimate_core::MachineId,
        /// Second machine.
        b: guesstimate_core::MachineId,
    },
    /// Two machines disagree on the completed sequence.
    CompletedDiverged {
        /// First machine.
        a: guesstimate_core::MachineId,
        /// Second machine.
        b: guesstimate_core::MachineId,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::GuessMismatch {
                machine,
                expected,
                actual,
            } => write!(
                f,
                "machine {machine}: [P](sc) digest {expected:#x} != sg digest {actual:#x}"
            ),
            InvariantViolation::CommittedDiverged { a, b } => {
                write!(f, "committed states of {a} and {b} diverged")
            }
            InvariantViolation::CompletedDiverged { a, b } => {
                write!(f, "completed sequences of {a} and {b} diverged")
            }
        }
    }
}

impl Error for InvariantViolation {}

/// Checks the two §3 invariants on the whole system:
///
/// 1. Every machine satisfies `[P](sc) = sg` — the guesstimate is exactly
///    the committed state with the machine's pending operations applied.
/// 2. For every pair of machines, `sc(i) = sc(j)` and `C(i) = C(j)`.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_invariants(sys: &SemSystem) -> Result<(), InvariantViolation> {
    let ids = sys.machine_ids();
    for &i in &ids {
        let m = sys.machine(i).expect("listed machine exists");
        let replayed = replay_pending(m, sys.registry());
        let expected = replayed.digest();
        let actual = m.guess.digest();
        if expected != actual {
            return Err(InvariantViolation::GuessMismatch {
                machine: i,
                expected,
                actual,
            });
        }
    }
    for w in ids.windows(2) {
        let (a, b) = (w[0], w[1]);
        let ma = sys.machine(a).expect("machine exists");
        let mb = sys.machine(b).expect("machine exists");
        if ma.committed.digest() != mb.committed.digest() {
            return Err(InvariantViolation::CommittedDiverged { a, b });
        }
        if ma.completed != mb.completed {
            return Err(InvariantViolation::CompletedDiverged { a, b });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmodel::{counter_object, counter_system};
    use guesstimate_core::{args, MachineId, SharedOp};

    #[test]
    fn fresh_system_satisfies_invariants() {
        let sys = counter_system(4, 5);
        check_invariants(&sys).unwrap();
    }

    #[test]
    fn violation_displays_are_informative() {
        let v = InvariantViolation::GuessMismatch {
            machine: MachineId::new(2),
            expected: 1,
            actual: 2,
        };
        assert!(v.to_string().contains("m2"));
        let v = InvariantViolation::CommittedDiverged {
            a: MachineId::new(0),
            b: MachineId::new(1),
        };
        assert!(v.to_string().contains("diverged"));
        let v = InvariantViolation::CompletedDiverged {
            a: MachineId::new(0),
            b: MachineId::new(1),
        };
        assert!(v.to_string().contains("completed"));
    }

    #[test]
    fn invariants_hold_across_a_random_walk() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let mut sys = counter_system(3, 5);
        let obj = counter_object();
        for _ in 0..200 {
            let i = MachineId::new(rng.gen_range(0..3));
            if rng.gen_bool(0.5) {
                let d: i64 = rng.gen_range(-2..5);
                let _ = sys
                    .issue(i, SharedOp::primitive(obj, "add", args![d]))
                    .unwrap();
            } else {
                let _ = sys.commit(i).unwrap();
            }
            check_invariants(&sys).unwrap();
        }
        while sys.commit_any().unwrap() {
            check_invariants(&sys).unwrap();
        }
        assert!(sys.quiescent());
    }
}
