//! # guesstimate-semantics
//!
//! The formal operational semantics of GUESSTIMATE (§3 of the paper), as an
//! *executable* transition system, together with the paper's invariants and
//! a bounded explorer.
//!
//! A distributed system is a pair `(M, S)`; each machine's state is the
//! 5-tuple `(λ, C, sc, P, sg)` — local state, completed operations,
//! committed state, pending operations, guesstimated state. Three rules
//! drive the system:
//!
//! * **R1** (local): a local operation reads `(sg, λ)` and updates `λ`.
//! * **R2** (issue): a composite operation `(s, c)` issued at machine `i`
//!   with `s(sg(i)) = (s', true)` is appended to `P(i)` and updates `sg(i)`;
//!   if `s` fails on `sg(i)` the operation is dropped.
//! * **R3** (commit): the operation at the front of some machine's pending
//!   queue is removed, executed on *every* machine's committed state,
//!   appended to every machine's completed sequence, runs its completion on
//!   the issuing machine, and rebuilds `sg(j) = [P(j)](sc(j))` for the other
//!   machines.
//!
//! Two invariants hold by induction over the rules and are checked here
//! after every transition ([`check_invariants`]):
//!
//! 1. `[P](sc) = sg` on every machine;
//! 2. `C(i) = C(j)` and `sc(i) = sc(j)` for every pair of machines.
//!
//! The [`explore`] module enumerates rule interleavings to a bound, checking
//! the invariants in every reachable state — a small model checker for the
//! semantics. The [`replay_in_commit_order`] function re-executes a
//! committed history in commit order, which integration tests use to check
//! that the *runtime* (crate `guesstimate-runtime`) refines this semantics.
//!
//! ## Example
//!
//! ```
//! use guesstimate_core::{args, MachineId, SharedOp};
//! use guesstimate_semantics::{check_invariants, testmodel, SemSystem};
//!
//! let mut sys = testmodel::counter_system(2, 0);
//! let obj = testmodel::counter_object();
//! let m0 = MachineId::new(0);
//! let m1 = MachineId::new(1);
//!
//! // R2 at both machines, then commit everything.
//! assert!(sys.issue(m0, SharedOp::primitive(obj, "add", args![2])).unwrap());
//! assert!(sys.issue(m1, SharedOp::primitive(obj, "add", args![3])).unwrap());
//! check_invariants(&sys).unwrap();
//! while sys.commit_any().unwrap() {
//!     check_invariants(&sys).unwrap();
//! }
//! // Quiescence: guesstimates equal the (agreed) committed state.
//! assert_eq!(sys.machine(m0).unwrap().guess.digest(),
//!            sys.machine(m1).unwrap().guess.digest());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod explore;
mod invariants;
mod model;
mod replay;
pub mod testmodel;

pub use explore::{explore, ExploreConfig, ExploreReport, SemAction};
pub use invariants::{check_invariants, InvariantViolation};
pub use model::{LocalNote, SemLocal, SemMachine, SemOp, SemSystem};
pub use replay::replay_in_commit_order;
