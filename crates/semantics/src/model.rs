//! The transition system: machine 5-tuples and rules R1/R2/R3.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use guesstimate_core::{
    execute, ExecError, MachineId, ObjectStore, OpId, OpRegistry, SharedOp, Value,
};

/// One entry in the model's local state: something a completion or local
/// operation observed.
///
/// The paper leaves local state `λ` and the completion/local operations
/// abstract (signatures `(S × G) → G` and `(S × G × B) → G`). The model
/// instantiates them with a canonical observable choice — an append-only
/// log — which is general enough to distinguish executions while staying
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LocalNote {
    /// A completion ran: the operation and its commit-time boolean (rule R3).
    Completed(OpId, bool),
    /// A local operation recorded the current guesstimated-state digest (R1).
    GuessDigest(u64),
}

/// The model's local state `λ`: an append-only log of observations.
pub type SemLocal = Vec<LocalNote>;

/// A composite operation `(s, c)` sitting in a pending queue.
///
/// The completion `c` is the canonical "record the boolean" completion (see
/// [`LocalNote::Completed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SemOp {
    /// Issue identity.
    pub id: OpId,
    /// The shared operation `s`.
    pub shared: SharedOp,
}

/// One machine's 5-tuple `(λ, C, sc, P, sg)`.
#[derive(Debug, Clone)]
pub struct SemMachine {
    /// Local state `λ`.
    pub local: SemLocal,
    /// Completed operations `C` (identities, in commit order).
    pub completed: Vec<OpId>,
    /// Committed state `sc`.
    pub committed: ObjectStore,
    /// Pending composite operations `P`.
    pub pending: VecDeque<SemOp>,
    /// Guesstimated state `sg`.
    pub guess: ObjectStore,
    next_op: u64,
}

impl SemMachine {
    fn new() -> Self {
        SemMachine {
            local: Vec::new(),
            completed: Vec::new(),
            committed: ObjectStore::new(),
            pending: VecDeque::new(),
            guess: ObjectStore::new(),
            next_op: 0,
        }
    }
}

/// The whole distributed system: `|M|` machines over shared objects `S`.
///
/// All transitions go through [`SemSystem::local`], [`SemSystem::issue`]
/// (R2) and [`SemSystem::commit`] (R3); the invariants of §3 are preserved
/// by construction and can be re-checked at any point with
/// [`crate::check_invariants`].
#[derive(Clone)]
pub struct SemSystem {
    machines: BTreeMap<MachineId, SemMachine>,
    registry: Arc<OpRegistry>,
}

impl std::fmt::Debug for SemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemSystem")
            .field("machines", &self.machines.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl SemSystem {
    /// Creates a system of `n` machines whose shared state starts as
    /// `initial` (identical everywhere — the committed state must agree
    /// from the outset).
    pub fn new(n: u32, registry: Arc<OpRegistry>, initial: &ObjectStore) -> Self {
        let mut machines = BTreeMap::new();
        for i in 0..n {
            let mut m = SemMachine::new();
            m.committed.copy_from(initial);
            m.guess.copy_from(initial);
            machines.insert(MachineId::new(i), m);
        }
        SemSystem { machines, registry }
    }

    /// The machine ids, in order.
    pub fn machine_ids(&self) -> Vec<MachineId> {
        self.machines.keys().copied().collect()
    }

    /// Read access to a machine's 5-tuple.
    pub fn machine(&self, id: MachineId) -> Option<&SemMachine> {
        self.machines.get(&id)
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<OpRegistry> {
        &self.registry
    }

    /// **R1**: a local operation at machine `i` reads `(sg, λ)` and updates
    /// `λ` — here, by recording the guesstimated-state digest.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the machine does not exist.
    pub fn local(&mut self, i: MachineId) -> Result<(), ExecError> {
        let m = self.machines.get_mut(&i).ok_or(ExecError::UnknownObject(
            guesstimate_core::ObjectId::new(i, 0),
        ))?;
        let digest = m.guess.digest();
        m.local.push(LocalNote::GuessDigest(digest));
        Ok(())
    }

    /// **R2**: issue a composite operation at machine `i`.
    ///
    /// Executes `op` on `sg(i)`. On success the operation is appended to
    /// `P(i)` and `Ok(true)` is returned; on failure the state is unchanged
    /// and the operation is dropped (`Ok(false)`).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects/methods (not part of the
    /// model — a programming error).
    pub fn issue(&mut self, i: MachineId, op: SharedOp) -> Result<bool, ExecError> {
        let m = self.machines.get_mut(&i).ok_or(ExecError::UnknownObject(
            guesstimate_core::ObjectId::new(i, 0),
        ))?;
        let outcome = execute(&op, &mut m.guess, &self.registry)?;
        if !outcome.is_success() {
            return Ok(false);
        }
        let id = OpId::new(i, m.next_op);
        m.next_op += 1;
        m.pending.push_back(SemOp { id, shared: op });
        Ok(true)
    }

    /// **R2** with a caller-chosen identity: issue `op` at machine `i`
    /// under the exact [`OpId`] the implementation used.
    ///
    /// Refinement checking (the `guesstimate-mc` model checker) replays a
    /// runtime machine's committed history through the model and needs the
    /// model's completed sequence `C` to match the runtime's *identically*,
    /// op ids included — so the id is taken from the wire envelope instead
    /// of being minted here. The operation is executed on `sg(i)` for its
    /// effect and appended to `P(i)` unconditionally (a history envelope
    /// was, by construction, successfully issued at the implementation
    /// level). `next_op` advances past `id` so interleaved [`SemSystem::issue`]
    /// calls never collide.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for unknown objects/methods (not part of the
    /// model — a programming error).
    pub fn issue_forced(&mut self, i: MachineId, id: OpId, op: SharedOp) -> Result<(), ExecError> {
        let m = self.machines.get_mut(&i).ok_or(ExecError::UnknownObject(
            guesstimate_core::ObjectId::new(i, 0),
        ))?;
        let _ = execute(&op, &mut m.guess, &self.registry)?;
        m.next_op = m.next_op.max(id.seq() + 1);
        m.pending.push_back(SemOp { id, shared: op });
        Ok(())
    }

    /// Commits an object creation: installs a fresh `type_name` instance
    /// restored from `init` into **every** machine's committed state and
    /// appends `op_id` to every `C`.
    ///
    /// The paper's semantics treats the object universe `S` as fixed; the
    /// implementation creates objects through the same committed-order
    /// machinery as operations. Refinement checking maps a committed
    /// `Create` envelope to this transition so the model's completed
    /// sequences and committed stores keep tracking the runtime's exactly.
    /// Every machine's guesstimate is rebuilt as `sg = [P](sc)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownType`] when `type_name` has no
    /// registered constructor, or a restore failure mapped through the
    /// registry.
    pub fn materialize(
        &mut self,
        op_id: OpId,
        object: guesstimate_core::ObjectId,
        type_name: &str,
        init: &Value,
    ) -> Result<(), ExecError> {
        let registry = self.registry.clone();
        for m in self.machines.values_mut() {
            let mut obj = registry.construct(type_name)?;
            obj.restore(init).map_err(|_| ExecError::TypeMismatch {
                expected: type_name.to_owned(),
                actual: "snapshot of another shape".to_owned(),
            })?;
            m.committed.insert(object, obj);
            m.completed.push(op_id);
            m.guess.copy_from(&m.committed);
            let pend: Vec<SemOp> = m.pending.iter().cloned().collect();
            for p in &pend {
                let _ = execute(&p.shared, &mut m.guess, &registry);
            }
        }
        Ok(())
    }

    /// **R3**: atomically commit the operation at the front of `P(i)`.
    ///
    /// The operation is executed on every machine's committed state
    /// (unguarded — "the operation is executed regardless of whether the
    /// operation s is successful or not"), appended to every `C`, runs its
    /// completion on machine `i`, and rebuilds `sg(j) = [P(j)](sc(j))` for
    /// every other machine `j`. Machine `i`'s guesstimate needs no update:
    /// the concatenation `C(i) · P(i)` is invariant under the rule.
    ///
    /// Returns `Ok(true)` if a commit happened, `Ok(false)` if `P(i)` was
    /// empty.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the machine does not exist.
    pub fn commit(&mut self, i: MachineId) -> Result<bool, ExecError> {
        let op = {
            let m = self.machines.get_mut(&i).ok_or(ExecError::UnknownObject(
                guesstimate_core::ObjectId::new(i, 0),
            ))?;
            match m.pending.pop_front() {
                Some(op) => op,
                None => return Ok(false),
            }
        };
        let registry = self.registry.clone();
        let mut issuing_result = false;
        for (&j, m) in self.machines.iter_mut() {
            let res = execute(&op.shared, &mut m.committed, &registry)
                .map(|o| o.is_success())
                .unwrap_or(false);
            m.completed.push(op.id);
            if j == i {
                issuing_result = res;
            } else {
                // Rebuild sg(j) = [P(j)](sc(j)).
                m.guess.copy_from(&m.committed);
                let pend: Vec<SemOp> = m.pending.iter().cloned().collect();
                for p in &pend {
                    let _ = execute(&p.shared, &mut m.guess, &registry);
                }
            }
        }
        // Completion runs on the issuing machine with the commit result.
        let m = self.machines.get_mut(&i).expect("machine exists");
        m.local.push(LocalNote::Completed(op.id, issuing_result));
        Ok(true)
    }

    /// Commits the front of the first non-empty pending queue (helper for
    /// quiescence loops). Returns `Ok(false)` when all queues are empty.
    ///
    /// # Errors
    ///
    /// Propagates [`SemSystem::commit`] errors.
    pub fn commit_any(&mut self) -> Result<bool, ExecError> {
        let next = self
            .machines
            .iter()
            .find(|(_, m)| !m.pending.is_empty())
            .map(|(&i, _)| i);
        match next {
            Some(i) => self.commit(i),
            None => Ok(false),
        }
    }

    /// True when every pending queue is empty (the system has quiesced).
    pub fn quiescent(&self) -> bool {
        self.machines.values().all(|m| m.pending.is_empty())
    }

    /// A deterministic digest of the entire system state (used by the
    /// explorer to deduplicate states).
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        struct Fnv(u64);
        impl Hasher for Fnv {
            fn finish(&self) -> u64 {
                self.0
            }
            fn write(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 ^= u64::from(b);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        for (id, m) in &self.machines {
            id.hash(&mut h);
            m.committed.digest().hash(&mut h);
            m.guess.digest().hash(&mut h);
            m.completed.hash(&mut h);
            for p in &m.pending {
                p.id.hash(&mut h);
                p.shared.to_string().hash(&mut h);
            }
            m.local.len().hash(&mut h);
        }
        h.finish()
    }
}

/// Computes `[P](sc)` for a machine: the committed state with the pending
/// operations applied in order (used by the invariant checker).
pub(crate) fn replay_pending(m: &SemMachine, registry: &OpRegistry) -> ObjectStore {
    let mut s = ObjectStore::new();
    s.copy_from(&m.committed);
    for p in &m.pending {
        let _ = execute(&p.shared, &mut s, registry);
    }
    s
}

/// Convenience: a `Value` digest of a machine's local log (tests).
#[allow(dead_code)]
pub(crate) fn local_digest(local: &SemLocal) -> Value {
    Value::from(
        local
            .iter()
            .map(|n| match n {
                LocalNote::Completed(id, b) => Value::from(format!("{id}:{b}")),
                LocalNote::GuessDigest(d) => Value::from(*d as i64),
            })
            .collect::<Vec<Value>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::check_invariants;
    use crate::testmodel::{counter_object, counter_system};
    use guesstimate_core::args;

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    #[test]
    fn issue_updates_guess_only() {
        let mut sys = counter_system(2, 0);
        let obj = counter_object();
        assert!(sys
            .issue(m(0), SharedOp::primitive(obj, "add", args![4]))
            .unwrap());
        let m0 = sys.machine(m(0)).unwrap();
        assert_ne!(m0.guess.digest(), m0.committed.digest());
        assert_eq!(m0.pending.len(), 1);
        let m1 = sys.machine(m(1)).unwrap();
        assert_eq!(m1.pending.len(), 0);
        assert_eq!(m1.guess.digest(), m1.committed.digest());
        check_invariants(&sys).unwrap();
    }

    #[test]
    fn failed_issue_is_dropped() {
        let mut sys = counter_system(2, 0);
        let obj = counter_object();
        assert!(!sys
            .issue(m(0), SharedOp::primitive(obj, "add", args![-1]))
            .unwrap());
        assert_eq!(sys.machine(m(0)).unwrap().pending.len(), 0);
        check_invariants(&sys).unwrap();
    }

    #[test]
    fn commit_applies_everywhere_and_runs_completion() {
        let mut sys = counter_system(3, 0);
        let obj = counter_object();
        sys.issue(m(1), SharedOp::primitive(obj, "add", args![2]))
            .unwrap();
        assert!(sys.commit(m(1)).unwrap());
        for i in 0..3 {
            let mm = sys.machine(m(i)).unwrap();
            assert_eq!(mm.completed.len(), 1);
            assert_eq!(mm.committed.digest(), mm.guess.digest());
        }
        let issuer = sys.machine(m(1)).unwrap();
        assert_eq!(
            issuer.local,
            vec![LocalNote::Completed(OpId::new(m(1), 0), true)]
        );
        assert!(sys.machine(m(0)).unwrap().local.is_empty());
        check_invariants(&sys).unwrap();
    }

    #[test]
    fn commit_on_empty_queue_is_noop() {
        let mut sys = counter_system(2, 0);
        assert!(!sys.commit(m(0)).unwrap());
        assert!(sys.quiescent());
    }

    #[test]
    fn r3_has_no_success_guard() {
        // An op that succeeds at issue but fails at commit still commits
        // (and the completion sees `false`).
        let mut sys = counter_system(2, 0);
        let obj = counter_object();
        // Machine 0 and 1 both claim the last unit (cap 1).
        sys.issue(m(0), SharedOp::primitive(obj, "add_capped", args![1, 1]))
            .unwrap();
        sys.issue(m(1), SharedOp::primitive(obj, "add_capped", args![1, 1]))
            .unwrap();
        assert!(sys.commit(m(0)).unwrap());
        assert!(sys.commit(m(1)).unwrap());
        check_invariants(&sys).unwrap();
        let loser = sys.machine(m(1)).unwrap();
        assert_eq!(
            loser.local,
            vec![LocalNote::Completed(OpId::new(m(1), 0), false)]
        );
        // Both machines' completed sequences agree.
        assert_eq!(
            sys.machine(m(0)).unwrap().completed,
            sys.machine(m(1)).unwrap().completed
        );
    }

    #[test]
    fn interleaved_commits_preserve_invariants() {
        let mut sys = counter_system(3, 0);
        let obj = counter_object();
        for i in 0..3 {
            for k in 0..3 {
                sys.issue(m(i), SharedOp::primitive(obj, "add", args![k]))
                    .unwrap();
                check_invariants(&sys).unwrap();
            }
        }
        // Commit in a scrambled machine order.
        for &i in &[2u32, 0, 1, 1, 0, 2, 0, 1, 2] {
            assert!(sys.commit(m(i)).unwrap());
            check_invariants(&sys).unwrap();
        }
        assert!(sys.quiescent());
    }

    #[test]
    fn local_op_records_digest() {
        let mut sys = counter_system(1, 0);
        sys.local(m(0)).unwrap();
        let mm = sys.machine(m(0)).unwrap();
        assert_eq!(mm.local.len(), 1);
        assert!(matches!(mm.local[0], LocalNote::GuessDigest(_)));
        // local_digest is deterministic
        assert_eq!(local_digest(&mm.local), local_digest(&mm.local.clone()));
    }

    #[test]
    fn digest_changes_with_state() {
        let mut sys = counter_system(2, 0);
        let d0 = sys.digest();
        let obj = counter_object();
        sys.issue(m(0), SharedOp::primitive(obj, "add", args![1]))
            .unwrap();
        let d1 = sys.digest();
        assert_ne!(d0, d1);
        sys.commit(m(0)).unwrap();
        assert_ne!(d1, sys.digest());
    }

    #[test]
    fn issue_forced_keeps_caller_ids_and_advances_seq() {
        let mut sys = counter_system(2, 0);
        let obj = counter_object();
        let forced = OpId::new(m(0), 7);
        sys.issue_forced(m(0), forced, SharedOp::primitive(obj, "add", args![2]))
            .unwrap();
        check_invariants(&sys).unwrap();
        assert_eq!(sys.machine(m(0)).unwrap().pending[0].id, forced);
        // A subsequently minted id must not collide with the forced one.
        assert!(sys
            .issue(m(0), SharedOp::primitive(obj, "add", args![1]))
            .unwrap());
        assert_eq!(sys.machine(m(0)).unwrap().pending[1].id, OpId::new(m(0), 8));
        assert!(sys.commit(m(0)).unwrap());
        assert_eq!(sys.machine(m(1)).unwrap().completed, vec![forced]);
        check_invariants(&sys).unwrap();
    }

    #[test]
    fn materialize_installs_everywhere() {
        let mut sys = counter_system(2, 0);
        let new_obj = guesstimate_core::ObjectId::new(m(1), 5);
        let create_id = OpId::new(m(1), 0);
        // Pending work on machine 0 must survive the rebuild of sg.
        let obj = counter_object();
        sys.issue(m(0), SharedOp::primitive(obj, "add", args![3]))
            .unwrap();
        sys.materialize(create_id, new_obj, "SemCounter", &Value::from(9i64))
            .unwrap();
        check_invariants(&sys).unwrap();
        for i in 0..2 {
            let mm = sys.machine(m(i)).unwrap();
            assert!(mm.committed.contains(new_obj));
            assert_eq!(mm.completed, vec![create_id]);
        }
        // Ops on the fresh object now commit cleanly.
        sys.issue(m(1), SharedOp::primitive(new_obj, "add", args![1]))
            .unwrap();
        assert!(sys.commit(m(1)).unwrap());
        check_invariants(&sys).unwrap();
    }

    #[test]
    fn materialize_unknown_type_errors() {
        let mut sys = counter_system(1, 0);
        let err = sys
            .materialize(
                OpId::new(m(0), 0),
                guesstimate_core::ObjectId::new(m(0), 9),
                "NoSuchType",
                &Value::from(0i64),
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::UnknownType(_)));
    }

    #[test]
    fn clone_is_independent() {
        let mut sys = counter_system(2, 0);
        let obj = counter_object();
        let snapshot = sys.clone();
        sys.issue(m(0), SharedOp::primitive(obj, "add", args![1]))
            .unwrap();
        assert_ne!(sys.digest(), snapshot.digest());
    }
}
