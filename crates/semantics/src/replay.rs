//! Commit-order replay: the refinement bridge between runtime and semantics.
//!
//! The committed state of any machine is, by the semantics, exactly the
//! result of executing the completed sequence `C` from the initial state
//! (§3: "The committed state sc is obtained by executing the sequence of
//! completed operations C from the initial state"). [`replay_in_commit_order`]
//! computes that state. Integration tests extract the committed history from
//! a *runtime* run (with `MachineConfig::record_history`) and check that the
//! runtime's committed stores equal this replay — i.e. that the
//! implementation refines the semantics.

use guesstimate_core::{execute, ObjectStore, OpRegistry, SharedOp};

/// Replays a committed sequence of shared operations from `initial`,
/// returning the resulting committed state.
///
/// Failed operations (returning `false`) leave the state unchanged, exactly
/// as at commit time; execution errors (unknown objects/methods) are treated
/// as failures, mirroring the runtime's behavior for operations whose target
/// object was concurrently never created.
pub fn replay_in_commit_order(
    initial: &ObjectStore,
    ops: &[SharedOp],
    registry: &OpRegistry,
) -> ObjectStore {
    let mut state = ObjectStore::new();
    state.copy_from(initial);
    for op in ops {
        let _ = execute(op, &mut state, registry);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testmodel::{counter_object, counter_registry, Counter};
    use guesstimate_core::args;

    #[test]
    fn replay_matches_incremental_execution() {
        let registry = counter_registry();
        let obj = counter_object();
        let mut initial = ObjectStore::new();
        initial.insert(obj, Box::new(Counter { n: 0 }));
        let ops = vec![
            SharedOp::primitive(obj, "add", args![3]),
            SharedOp::primitive(obj, "add_capped", args![5, 7]),
            SharedOp::primitive(obj, "add", args![-1]),
        ];
        let replayed = replay_in_commit_order(&initial, &ops, &registry);
        // add(3) = 3; add_capped(5,7) fails (3+5 > 7); add(-1) = 2.
        assert_eq!(replayed.get_as::<Counter>(obj).unwrap().n, 2);
    }

    #[test]
    fn failed_ops_do_not_change_state() {
        let registry = counter_registry();
        let obj = counter_object();
        let mut initial = ObjectStore::new();
        initial.insert(obj, Box::new(Counter { n: 0 }));
        let ops = vec![SharedOp::primitive(obj, "add", args![-5])];
        let replayed = replay_in_commit_order(&initial, &ops, &registry);
        assert_eq!(replayed.digest(), initial.digest());
    }

    #[test]
    fn unknown_objects_are_skipped() {
        let registry = counter_registry();
        let initial = ObjectStore::new();
        let bogus = counter_object();
        let ops = vec![SharedOp::primitive(bogus, "add", args![1])];
        let replayed = replay_in_commit_order(&initial, &ops, &registry);
        assert_eq!(replayed.digest(), initial.digest());
    }
}
