//! A minimal shared-object universe for semantics tests and doc examples.
//!
//! Public (not test-gated) because doc tests and downstream integration
//! tests use it to instantiate small systems.

use std::sync::Arc;

use guesstimate_core::{GState, MachineId, ObjectId, ObjectStore, OpRegistry, RestoreError, Value};

use crate::model::SemSystem;

/// A counter with a non-negativity precondition.
#[derive(Clone, Default, Debug, PartialEq)]
pub struct Counter {
    /// The counter's value.
    pub n: i64,
}

impl GState for Counter {
    const TYPE_NAME: &'static str = "SemCounter";
    fn snapshot(&self) -> Value {
        Value::from(self.n)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        self.n = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
        Ok(())
    }
}

/// The registry used by the test universe: `add(d)` (fails when the result
/// would be negative) and `add_capped(d, cap)` (additionally fails above
/// `cap` — an easy source of commit-time conflicts).
pub fn counter_registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Counter>();
    r.register_method::<Counter>("add", |c, a| {
        let Some(d) = a.i64(0) else { return false };
        if c.n + d < 0 {
            return false;
        }
        c.n += d;
        true
    });
    r.register_method::<Counter>("add_capped", |c, a| {
        let (Some(d), Some(cap)) = (a.i64(0), a.i64(1)) else {
            return false;
        };
        if c.n + d < 0 || c.n + d > cap {
            return false;
        }
        c.n += d;
        true
    });
    r
}

/// The single shared object's id in the test universe.
pub fn counter_object() -> ObjectId {
    ObjectId::new(MachineId::new(0), 0)
}

/// A fresh system of `n` machines sharing one counter starting at `init`.
pub fn counter_system(n: u32, init: i64) -> SemSystem {
    let mut store = ObjectStore::new();
    store.insert(counter_object(), Box::new(Counter { n: init }));
    SemSystem::new(n, Arc::new(counter_registry()), &store)
}
