//! Runtime conformance checking: the "runtime checks" half of Spec#.
//!
//! Methods registered through [`register_checked`] are wrapped so that
//! *every* execution — at issue time on the guesstimated state, at replay,
//! and at commit time on every machine's committed state — is checked
//! against the model's frame condition and the method's contract. Detected
//! violations are recorded in a shared [`ConformanceLog`] (they indicate
//! application bugs of exactly the kind the paper caught with Spec#, e.g.
//! the off-by-one in the Sudoku row check).

use std::fmt;
use std::sync::{Arc, Mutex};

use guesstimate_core::{ArgView, GState, OpRegistry, Value};

use crate::contract::MethodContract;

/// What a recorded violation violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The method returned `false` but modified the state (breaks the
    /// model's universal frame condition, §3).
    Frame,
    /// The method returned `true` but `(pre, post) ∉ φ`.
    Postcondition,
    /// The object invariant held before and not after.
    Invariant,
    /// A named domain assertion failed.
    Assertion,
}

/// One recorded conformance violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The shared-object type.
    pub type_name: String,
    /// The offending method.
    pub method: String,
    /// What was violated.
    pub kind: ViolationKind,
    /// Name of the failed assertion (for [`ViolationKind::Assertion`]).
    pub assertion: Option<String>,
    /// The argument vector of the offending execution.
    pub args: Vec<Value>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}::{} violated {:?}",
            self.type_name, self.method, self.kind
        )?;
        if let Some(a) = &self.assertion {
            write!(f, " ({a})")?;
        }
        Ok(())
    }
}

/// Shared, thread-safe sink for conformance violations.
///
/// Clone it freely; all clones share the same log.
#[derive(Debug, Clone, Default)]
pub struct ConformanceLog {
    inner: Arc<Mutex<Vec<Violation>>>,
}

impl ConformanceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ConformanceLog::default()
    }

    /// True if no violations were recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("log lock").is_empty()
    }

    /// Number of recorded violations.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("log lock").len()
    }

    /// Snapshot of all recorded violations.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().expect("log lock").clone()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.inner.lock().expect("log lock").clear();
    }

    fn record(&self, v: Violation) {
        self.inner.lock().expect("log lock").push(v);
    }
}

/// Registers `method` for `T` with conformance checking wrapped around `f`.
///
/// Functionally identical to [`OpRegistry::register_method`], plus: each
/// execution snapshots the object before and after, checks the frame
/// condition, the contract's postcondition, invariant and assertions, and
/// records violations in `log`. The wrapped method's boolean result is
/// passed through unchanged — checking never alters semantics.
///
/// This costs two snapshots per execution; production deployments register
/// plainly and run the checked registry in tests, exactly as Spec# moves
/// unproven assertions into (removable) runtime checks.
pub fn register_checked<T: GState>(
    registry: &mut OpRegistry,
    method: &'static str,
    contract: MethodContract,
    log: &ConformanceLog,
    f: impl Fn(&mut T, ArgView<'_>) -> bool + Send + Sync + 'static,
) {
    let log = log.clone();
    registry.register_method::<T>(method, move |obj, argv| {
        let pre = GState::snapshot(obj);
        let result = f(obj, argv);
        let post = GState::snapshot(obj);
        let args: Vec<Value> = argv.as_slice().to_vec();
        let mk = |kind, assertion: Option<String>| Violation {
            type_name: T::TYPE_NAME.to_owned(),
            method: method.to_owned(),
            kind,
            assertion,
            args: args.clone(),
        };
        if !result && pre != post {
            log.record(mk(ViolationKind::Frame, None));
        }
        if result {
            if let Some(p) = &contract.post {
                if !p(&pre, &post, &args) {
                    log.record(mk(ViolationKind::Postcondition, None));
                }
            }
        }
        if let Some(inv) = &contract.invariant {
            if inv(&pre) && !inv(&post) {
                log.record(mk(ViolationKind::Invariant, None));
            }
        }
        if !contract.assertions.is_empty() {
            let case = crate::contract::ExecCase {
                pre,
                args: args.clone(),
                result,
                post,
            };
            for a in &contract.assertions {
                if !a.holds(&case) {
                    log.record(mk(ViolationKind::Assertion, Some(a.name().to_owned())));
                }
            }
        }
        result
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::RestoreError;
    use guesstimate_core::{args, execute, MachineId, ObjectId, ObjectStore, SharedOp};

    /// Deliberately buggy object: `bad_dec` mutates state even when it
    /// reports failure (frame violation); `overflowing_add` breaks its
    /// postcondition on a boundary.
    #[derive(Clone, Default)]
    struct Gauge(i64);
    impl GState for Gauge {
        const TYPE_NAME: &'static str = "Gauge";
        fn snapshot(&self) -> Value {
            Value::from(self.0)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
            Ok(())
        }
    }

    fn setup(
        contract_add: MethodContract,
        contract_dec: MethodContract,
    ) -> (OpRegistry, ConformanceLog, ObjectId, ObjectStore) {
        let mut reg = OpRegistry::new();
        reg.register_type::<Gauge>();
        let log = ConformanceLog::new();
        register_checked::<Gauge>(&mut reg, "add", contract_add, &log, |g, a| {
            let Some(d) = a.i64(0) else { return false };
            // BUG: claims to cap at 10 but actually allows 11.
            if g.0 + d > 11 {
                return false;
            }
            g.0 += d;
            true
        });
        register_checked::<Gauge>(&mut reg, "bad_dec", contract_dec, &log, |g, _a| {
            g.0 -= 1; // BUG: mutates before checking
            if g.0 < 0 {
                return false;
            }
            true
        });
        let id = ObjectId::new(MachineId::new(0), 0);
        let mut store = ObjectStore::new();
        store.insert(id, Box::new(Gauge(0)));
        (reg, log, id, store)
    }

    #[test]
    fn clean_executions_record_nothing() {
        let contract =
            MethodContract::new().with_post(|pre, post, _| post.as_i64() >= pre.as_i64());
        let (reg, log, id, mut store) = setup(contract, MethodContract::new());
        execute(&SharedOp::primitive(id, "add", args![5]), &mut store, &reg).unwrap();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn postcondition_violation_is_caught() {
        // Contract says result ≤ 10; the buggy impl allows 11.
        let contract =
            MethodContract::new().with_post(|_, post, _| post.as_i64().unwrap_or(0) <= 10);
        let (reg, log, id, mut store) = setup(contract, MethodContract::new());
        execute(&SharedOp::primitive(id, "add", args![11]), &mut store, &reg).unwrap();
        let vs = log.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, ViolationKind::Postcondition);
        assert!(vs[0].to_string().contains("Gauge::add"));
    }

    #[test]
    fn frame_violation_is_caught() {
        let (reg, log, id, mut store) = setup(MethodContract::new(), MethodContract::new());
        // Gauge starts at 0; bad_dec fails but leaves -1 behind.
        let out = execute(
            &SharedOp::primitive(id, "bad_dec", args![]),
            &mut store,
            &reg,
        )
        .unwrap();
        assert!(!out.is_success());
        let vs = log.violations();
        assert_eq!(vs[0].kind, ViolationKind::Frame);
    }

    #[test]
    fn invariant_violation_is_caught() {
        let contract_dec = MethodContract::new().with_invariant(|s| s.as_i64().unwrap_or(-1) >= 0);
        let (reg, log, id, mut store) = setup(MethodContract::new(), contract_dec);
        execute(
            &SharedOp::primitive(id, "bad_dec", args![]),
            &mut store,
            &reg,
        )
        .unwrap();
        assert!(log
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::Invariant));
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn named_assertion_violation_carries_name() {
        let contract = MethodContract::new().with_assertion("never-negative-delta", |c| {
            c.args.first().and_then(Value::as_i64).unwrap_or(0) >= 0
        });
        let (reg, log, id, mut store) = setup(contract, MethodContract::new());
        execute(&SharedOp::primitive(id, "add", args![-1]), &mut store, &reg).unwrap();
        let vs = log.violations();
        assert_eq!(vs[0].kind, ViolationKind::Assertion);
        assert_eq!(vs[0].assertion.as_deref(), Some("never-negative-delta"));
        assert!(vs[0].to_string().contains("never-negative-delta"));
    }

    #[test]
    fn log_clones_share_state() {
        let log = ConformanceLog::new();
        let log2 = log.clone();
        log.record(Violation {
            type_name: "T".into(),
            method: "m".into(),
            kind: ViolationKind::Frame,
            assertion: None,
            args: vec![],
        });
        assert_eq!(log2.len(), 1);
    }
}
