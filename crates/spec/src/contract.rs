//! Executable contracts: postconditions, invariants, named assertions.

use std::fmt;
use std::sync::Arc;

use guesstimate_core::Value;

/// Postcondition relation `φ ⊆ S × S` (with access to the argument vector
/// for precision): called as `post(pre, post, args)`.
pub(crate) type PostPred = Arc<dyn Fn(&Value, &Value, &[Value]) -> bool + Send + Sync>;

/// Object invariant over a canonical snapshot.
pub(crate) type InvPred = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// Predicate over a full execution case.
pub(crate) type CasePred = Arc<dyn Fn(&ExecCase) -> bool + Send + Sync>;

/// One observed (or enumerated) execution of a shared operation: the unit
/// both the runtime conformance checker and the static classifier judge.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecCase {
    /// Canonical snapshot before execution.
    pub pre: Value,
    /// Argument vector.
    pub args: Vec<Value>,
    /// The operation's boolean result.
    pub result: bool,
    /// Canonical snapshot after execution.
    pub post: Value,
}

/// The contract of one shared-operation method.
///
/// Built with a fluent API; every component is optional (the frame
/// condition — `false` ⇒ state unchanged — is part of the model itself and
/// always checked).
#[derive(Clone, Default)]
pub struct MethodContract {
    pub(crate) post: Option<PostPred>,
    pub(crate) invariant: Option<InvPred>,
    pub(crate) assertions: Vec<Assertion>,
}

impl fmt::Debug for MethodContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MethodContract")
            .field("has_post", &self.post.is_some())
            .field("has_invariant", &self.invariant.is_some())
            .field("assertions", &self.assertions.len())
            .finish()
    }
}

impl MethodContract {
    /// An empty contract (only the universal frame condition applies).
    pub fn new() -> Self {
        MethodContract::default()
    }

    /// Sets the postcondition `φ`: must hold whenever the method returns
    /// `true`. Called as `post(pre_snapshot, post_snapshot, args)`.
    pub fn with_post(
        mut self,
        post: impl Fn(&Value, &Value, &[Value]) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.post = Some(Arc::new(post));
        self
    }

    /// Sets the object invariant: must hold of the post state of every
    /// execution whose pre state satisfied it.
    pub fn with_invariant(mut self, inv: impl Fn(&Value) -> bool + Send + Sync + 'static) -> Self {
        self.invariant = Some(Arc::new(inv));
        self
    }

    /// Adds a named domain assertion over execution cases.
    pub fn with_assertion(
        mut self,
        name: impl Into<String>,
        check: impl Fn(&ExecCase) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.assertions.push(Assertion::new(name, check));
        self
    }

    /// Adds a pre-built assertion (e.g. a state-independent one).
    pub fn with_assertion_obj(mut self, a: Assertion) -> Self {
        self.assertions.push(a);
        self
    }
}

/// A named assertion over execution cases — the unit the verifier counts
/// and classifies (Spec# turns each contract into many such assertions).
#[derive(Clone)]
pub struct Assertion {
    pub(crate) name: String,
    pub(crate) check: CasePred,
    pub(crate) state_independent: bool,
}

impl Assertion {
    /// Creates a named assertion.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&ExecCase) -> bool + Send + Sync + 'static,
    ) -> Self {
        Assertion {
            name: name.into(),
            check: Arc::new(check),
            state_independent: false,
        }
    }

    /// Marks the assertion as *state-independent*: its truth depends only
    /// on the argument vector (e.g. a bounds guard). The verifier may then
    /// classify it `Verified` from an exhaustive *argument* enumeration
    /// alone, even over a sampled state space — the analog of Boogie
    /// discharging a path condition that never reads the heap.
    pub fn assume_state_independent(mut self) -> Self {
        self.state_independent = true;
        self
    }

    /// Whether the assertion was marked state-independent.
    pub fn is_state_independent(&self) -> bool {
        self.state_independent
    }

    /// The assertion's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the assertion on a case.
    pub fn holds(&self, case: &ExecCase) -> bool {
        (self.check)(case)
    }
}

impl fmt::Debug for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assertion({:?})", self.name)
    }
}

/// One method's contract together with its name and the argument vectors
/// the verifier should enumerate for it.
#[derive(Debug, Clone)]
pub struct MethodSpec {
    /// Registered method name.
    pub method: String,
    /// The contract.
    pub contract: MethodContract,
    /// Argument vectors to enumerate during verification.
    pub arg_space: Vec<Vec<Value>>,
    /// True if `arg_space` covers *all* relevant argument vectors (up to
    /// symmetry); required for a `Verified` classification.
    pub args_exhaustive: bool,
}

impl MethodSpec {
    /// Creates a method spec.
    pub fn new(method: impl Into<String>, contract: MethodContract) -> Self {
        MethodSpec {
            method: method.into(),
            contract,
            arg_space: vec![vec![]],
            args_exhaustive: true,
        }
    }

    /// Sets the argument space.
    pub fn with_args(mut self, args: Vec<Vec<Value>>, exhaustive: bool) -> Self {
        self.arg_space = args;
        self.args_exhaustive = exhaustive;
        self
    }
}

/// The full specification of one shared-object type: per-method contracts
/// plus a type-level invariant.
#[derive(Debug, Clone)]
pub struct SpecSuite {
    /// The registered type name.
    pub type_name: String,
    /// Type-level object invariant (checked for every method).
    pub invariant: Option<InvariantSpec>,
    /// Per-method contracts.
    pub methods: Vec<MethodSpec>,
}

/// A named type-level invariant.
#[derive(Clone)]
pub struct InvariantSpec {
    pub(crate) name: String,
    pub(crate) pred: InvPred,
}

impl fmt::Debug for InvariantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InvariantSpec({:?})", self.name)
    }
}

impl InvariantSpec {
    /// Creates a named invariant.
    pub fn new(
        name: impl Into<String>,
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> Self {
        InvariantSpec {
            name: name.into(),
            pred: Arc::new(pred),
        }
    }
}

impl SpecSuite {
    /// Creates an empty suite for a type.
    pub fn new(type_name: impl Into<String>) -> Self {
        SpecSuite {
            type_name: type_name.into(),
            invariant: None,
            methods: Vec::new(),
        }
    }

    /// Sets the type-level invariant.
    pub fn with_invariant(
        mut self,
        name: impl Into<String>,
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.invariant = Some(InvariantSpec::new(name, pred));
        self
    }

    /// Adds a method spec.
    pub fn with_method(mut self, m: MethodSpec) -> Self {
        self.methods.push(m);
        self
    }

    /// Total number of assertions the verifier will classify for this suite
    /// (frame + post + invariant + domain assertions, per method).
    pub fn assertion_count(&self) -> usize {
        self.methods
            .iter()
            .map(|m| {
                1 // frame
                    + usize::from(m.contract.post.is_some())
                    + usize::from(self.invariant.is_some() || m.contract.invariant.is_some())
                    + m.contract.assertions.len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(pre: i64, post: i64, result: bool) -> ExecCase {
        ExecCase {
            pre: Value::from(pre),
            args: vec![],
            result,
            post: Value::from(post),
        }
    }

    #[test]
    fn contract_builder_accumulates() {
        let c = MethodContract::new()
            .with_post(|_, _, _| true)
            .with_invariant(|_| true)
            .with_assertion("a1", |_| true)
            .with_assertion("a2", |_| false);
        assert!(c.post.is_some());
        assert!(c.invariant.is_some());
        assert_eq!(c.assertions.len(), 2);
        assert!(format!("{c:?}").contains("assertions: 2"));
    }

    #[test]
    fn assertion_evaluates() {
        let a = Assertion::new("monotone", |c: &ExecCase| {
            !c.result || c.post.as_i64() >= c.pre.as_i64()
        });
        assert_eq!(a.name(), "monotone");
        assert!(a.holds(&case(1, 2, true)));
        assert!(!a.holds(&case(2, 1, true)));
        assert!(a.holds(&case(2, 1, false)), "vacuous on failure");
        assert!(format!("{a:?}").contains("monotone"));
    }

    #[test]
    fn suite_counts_assertions() {
        let suite = SpecSuite::new("T")
            .with_invariant("inv", |_| true)
            .with_method(MethodSpec::new(
                "f",
                MethodContract::new().with_post(|_, _, _| true),
            ))
            .with_method(MethodSpec::new(
                "g",
                MethodContract::new().with_assertion("extra", |_| true),
            ));
        // f: frame + post + invariant = 3; g: frame + invariant + extra = 3.
        assert_eq!(suite.assertion_count(), 6);
    }

    #[test]
    fn method_spec_args_default_to_single_empty_vector() {
        let m = MethodSpec::new("f", MethodContract::new());
        assert_eq!(m.arg_space, vec![Vec::<Value>::new()]);
        assert!(m.args_exhaustive);
        let m = m.with_args(vec![vec![Value::from(1)]], false);
        assert_eq!(m.arg_space.len(), 1);
        assert!(!m.args_exhaustive);
    }
}
