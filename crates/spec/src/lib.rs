//! # guesstimate-spec
//!
//! Specifications for GUESSTIMATE shared operations.
//!
//! §3 of the paper associates with every shared operation `s` a
//! specification `φs ⊆ S × S`; `s` *conforms* to `φs` iff
//!
//! 1. whenever `s(s1) = (s2, true)`, the pair `(s1, s2) ∈ φs`, and
//! 2. whenever `s(s1) = (s2, false)`, `s1 = s2` (failed operations do not
//!    modify the shared state).
//!
//! The authors wrote such specifications in **Spec#** and discharged them
//! with the **Boogie** verifier (§5/§6): Spec# translated the Sudoku
//! contracts into 323 assertions of which Boogie proved 271 and turned the
//! remaining 52 into runtime checks. Neither tool exists for Rust, so this
//! crate rebuilds the same workflow:
//!
//! * [`contract`](MethodContract) — executable contracts: a postcondition
//!   relation `φ` over canonical [`Value`] snapshots, plus object
//!   invariants, plus arbitrary named *assertions* over execution cases.
//! * [`conformance`](register_checked) — the runtime-check half of Spec#:
//!   registering a method through [`register_checked`] wraps it so every
//!   execution (issue, replay, commit — on any machine) verifies frame,
//!   postcondition and invariant, recording violations in a
//!   [`ConformanceLog`].
//! * [`verifier`](verify_suite) — the Boogie analog: a bounded-exhaustive
//!   classifier that evaluates every assertion of a [`SpecSuite`] over an
//!   enumerated [`CaseSpace`] and classifies it as **Verified** (holds on
//!   all cases, enumeration complete), **RuntimeCheck** (no counterexample,
//!   but the space was sampled rather than exhausted) or **Refuted**
//!   (counterexample found) — the same three-way split Spec#/Boogie
//!   produce, regenerated as a table by the benchmark harness.
//!
//! ## Example
//!
//! ```
//! use guesstimate_core::{args, GState, OpRegistry, RestoreError, Value};
//! use guesstimate_spec::{
//!     register_checked, ConformanceLog, MethodContract,
//! };
//! use std::sync::Arc;
//!
//! #[derive(Clone, Default)]
//! struct Tank(i64);
//! impl GState for Tank {
//!     const TYPE_NAME: &'static str = "Tank";
//!     fn snapshot(&self) -> Value { Value::from(self.0) }
//!     fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
//!         self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
//!         Ok(())
//!     }
//! }
//!
//! let mut reg = OpRegistry::new();
//! reg.register_type::<Tank>();
//! let log = ConformanceLog::new();
//! // φ_fill: on success the level strictly increases and stays ≤ 10.
//! let contract = MethodContract::new()
//!     .with_post(|pre, post, _args| {
//!         post.as_i64() > pre.as_i64() && post.as_i64().unwrap() <= 10
//!     })
//!     .with_invariant(|s| (0..=10).contains(&s.as_i64().unwrap_or(-1)));
//! register_checked::<Tank>(&mut reg, "fill", contract, &log, |t, a| {
//!     let Some(d) = a.i64(0) else { return false };
//!     if d <= 0 || t.0 + d > 10 { return false; }
//!     t.0 += d;
//!     true
//! });
//!
//! // Execute through the registry as the runtime would.
//! use guesstimate_core::{execute, MachineId, ObjectId, ObjectStore, SharedOp};
//! let id = ObjectId::new(MachineId::new(0), 0);
//! let mut store = ObjectStore::new();
//! store.insert(id, Box::new(Tank(0)));
//! execute(&SharedOp::primitive(id, "fill", args![4]), &mut store, &reg).unwrap();
//! assert!(log.is_empty(), "no conformance violations");
//! ```

#![warn(missing_docs)]

mod conformance;
mod contract;
mod verifier;

pub use conformance::{register_checked, ConformanceLog, Violation, ViolationKind};
pub use contract::{Assertion, ExecCase, InvariantSpec, MethodContract, MethodSpec, SpecSuite};
pub use verifier::{verify_suite, CaseSpace, ClassifiedAssertion, Verdict, VerificationReport};

pub use guesstimate_core::Value;
