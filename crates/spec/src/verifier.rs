//! The Boogie analog: bounded-exhaustive assertion classification.
//!
//! Boogie classifies Spec# assertions into "provably correct", "provably
//! failing" and "other" (which Spec# turns into runtime checks). Without a
//! theorem prover, we recover the same three-way split by *evaluation over
//! an enumerated case space*:
//!
//! * **Verified** — the assertion holds on every enumerated case *and* the
//!   enumeration was complete (the state and argument spaces were marked
//!   exhaustive and no cap was hit), so the evaluation constitutes a proof
//!   for the finite domain.
//! * **RuntimeCheck** — no counterexample, but the space was sampled or
//!   truncated; the assertion remains a runtime check (see
//!   [`crate::register_checked`]).
//! * **Refuted** — a counterexample was found.

use guesstimate_core::{execute, MachineId, ObjectId, ObjectStore, OpRegistry, SharedOp, Value};

use crate::contract::{ExecCase, SpecSuite};

/// The state space over which a suite is verified.
#[derive(Debug, Clone)]
pub struct CaseSpace {
    /// Canonical state snapshots to instantiate the object from.
    pub states: Vec<Value>,
    /// True if `states` covers the whole (abstracted) state space; required
    /// for a `Verified` classification.
    pub states_exhaustive: bool,
    /// Cap on `states × args` cases evaluated per assertion; exceeding it
    /// demotes survivors to `RuntimeCheck`.
    pub max_cases: usize,
}

impl CaseSpace {
    /// An exhaustive space over the given states.
    pub fn exhaustive(states: Vec<Value>) -> Self {
        CaseSpace {
            states,
            states_exhaustive: true,
            max_cases: usize::MAX,
        }
    }

    /// A sampled (non-exhaustive) space.
    pub fn sampled(states: Vec<Value>, max_cases: usize) -> Self {
        CaseSpace {
            states,
            states_exhaustive: false,
            max_cases,
        }
    }
}

/// Classification verdict for one assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Holds on all cases of a complete enumeration.
    Verified,
    /// No counterexample, but enumeration was incomplete.
    RuntimeCheck,
    /// Counterexample found.
    Refuted,
}

/// One classified assertion.
#[derive(Debug, Clone)]
pub struct ClassifiedAssertion {
    /// The method the assertion belongs to.
    pub method: String,
    /// The assertion's name (`frame`, `post`, `invariant`, or a domain
    /// assertion's name).
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Cases evaluated.
    pub cases: usize,
    /// A counterexample, when refuted.
    pub counterexample: Option<ExecCase>,
}

/// The verifier's output for one suite.
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// All classified assertions.
    pub assertions: Vec<ClassifiedAssertion>,
}

impl VerificationReport {
    /// Total number of assertions.
    pub fn total(&self) -> usize {
        self.assertions.len()
    }

    /// Number classified `Verified`.
    pub fn verified(&self) -> usize {
        self.count(Verdict::Verified)
    }

    /// Number left as runtime checks.
    pub fn runtime_checks(&self) -> usize {
        self.count(Verdict::RuntimeCheck)
    }

    /// Number refuted (compile-time warnings, in Spec# terms).
    pub fn refuted(&self) -> usize {
        self.count(Verdict::Refuted)
    }

    fn count(&self, v: Verdict) -> usize {
        self.assertions.iter().filter(|a| a.verdict == v).count()
    }

    /// Renders the per-method breakdown as an aligned text table
    /// (method, total, verified, runtime checks, refuted).
    pub fn format_table(&self) -> String {
        use std::collections::BTreeMap;
        use std::fmt::Write as _;
        let mut per: BTreeMap<&str, [usize; 4]> = BTreeMap::new();
        for a in &self.assertions {
            let row = per.entry(a.method.as_str()).or_default();
            row[0] += 1;
            match a.verdict {
                Verdict::Verified => row[1] += 1,
                Verdict::RuntimeCheck => row[2] += 1,
                Verdict::Refuted => row[3] += 1,
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>9} {:>15} {:>8}",
            "method", "total", "verified", "runtime_checks", "refuted"
        );
        for (m, row) in &per {
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>9} {:>15} {:>8}",
                m, row[0], row[1], row[2], row[3]
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>9} {:>15} {:>8}",
            "TOTAL",
            self.total(),
            self.verified(),
            self.runtime_checks(),
            self.refuted()
        );
        out
    }
}

/// Verifies a [`SpecSuite`] against a registry over a case space.
///
/// For every method of the suite and every assertion attached to it
/// (the universal *frame* assertion, the *post* assertion when a
/// postcondition is present, the *invariant* assertion when a type- or
/// method-level invariant is present, and every named domain assertion),
/// enumerate `states × method.arg_space`, execute the real registered
/// implementation on a scratch object, and classify.
///
/// # Panics
///
/// Panics if the suite's type or one of its methods is not registered —
/// verification of unregistered code is meaningless.
pub fn verify_suite(
    registry: &OpRegistry,
    suite: &SpecSuite,
    space: &CaseSpace,
) -> VerificationReport {
    assert!(
        registry.has_type(&suite.type_name),
        "verify_suite: type {:?} not registered",
        suite.type_name
    );
    let scratch_id = ObjectId::new(MachineId::new(u32::MAX), u64::MAX);
    let mut report = VerificationReport::default();
    for method in &suite.methods {
        assert!(
            registry.has_method(&suite.type_name, &method.method),
            "verify_suite: method {:?} not registered for {:?}",
            method.method,
            suite.type_name
        );
        // Enumerate all cases once per method, then evaluate every
        // assertion against them.
        let mut cases: Vec<ExecCase> = Vec::new();
        let mut truncated = false;
        'outer: for state in &space.states {
            for argv in &method.arg_space {
                if cases.len() >= space.max_cases {
                    truncated = true;
                    break 'outer;
                }
                let mut obj = registry
                    .construct(&suite.type_name)
                    .expect("type registered");
                if obj.restore(state).is_err() {
                    // Malformed state in the space: skip rather than crash.
                    continue;
                }
                let mut store = ObjectStore::new();
                store.insert(scratch_id, obj);
                let op = SharedOp::primitive(scratch_id, method.method.clone(), argv.clone());
                let result = execute(&op, &mut store, registry)
                    .expect("registered method")
                    .is_success();
                let post = store.get(scratch_id).expect("object present").snapshot();
                cases.push(ExecCase {
                    pre: state.clone(),
                    args: argv.clone(),
                    result,
                    post,
                });
            }
        }
        let complete = space.states_exhaustive && method.args_exhaustive && !truncated;
        // State-independent assertions only need the argument space to be
        // complete (they never read the state).
        let complete_si = method.args_exhaustive && !truncated;

        let mut classify = |name: &str, pred: &dyn Fn(&ExecCase) -> bool, si: bool| {
            let counterexample = cases.iter().find(|c| !pred(c)).cloned();
            let complete = if si { complete_si } else { complete };
            let verdict = match (&counterexample, complete) {
                (Some(_), _) => Verdict::Refuted,
                (None, true) => Verdict::Verified,
                (None, false) => Verdict::RuntimeCheck,
            };
            report.assertions.push(ClassifiedAssertion {
                method: method.method.clone(),
                name: name.to_owned(),
                verdict,
                cases: cases.len(),
                counterexample,
            });
        };

        // Universal frame condition.
        classify("frame", &|c: &ExecCase| c.result || c.pre == c.post, false);
        // Postcondition.
        if let Some(post) = &method.contract.post {
            classify(
                "post",
                &|c: &ExecCase| !c.result || post(&c.pre, &c.post, &c.args),
                false,
            );
        }
        // Invariant (method-level overrides type-level).
        let inv = method
            .contract
            .invariant
            .clone()
            .or_else(|| suite.invariant.as_ref().map(|i| i.pred.clone()));
        if let Some(inv) = inv {
            classify(
                "invariant",
                &|c: &ExecCase| !inv(&c.pre) || inv(&c.post),
                false,
            );
        }
        // Domain assertions.
        for a in &method.contract.assertions {
            classify(
                a.name(),
                &|c: &ExecCase| a.holds(c),
                a.is_state_independent(),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{MethodContract, MethodSpec};
    use guesstimate_core::{args, GState, RestoreError};

    #[derive(Clone, Default)]
    struct Bin(i64);
    impl GState for Bin {
        const TYPE_NAME: &'static str = "Bin";
        fn snapshot(&self) -> Value {
            Value::from(self.0)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
            Ok(())
        }
    }

    fn registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Bin>();
        // put(d): capacity 3; correct implementation.
        r.register_method::<Bin>("put", |b, a| {
            let Some(d) = a.i64(0) else { return false };
            if d < 0 || b.0 + d > 3 {
                return false;
            }
            b.0 += d;
            true
        });
        // leaky(d): BUG — mutates then fails for d == 2.
        r.register_method::<Bin>("leaky", |b, a| {
            let Some(d) = a.i64(0) else { return false };
            b.0 += d;
            if d == 2 {
                return false;
            }
            true
        });
        r
    }

    fn full_space() -> CaseSpace {
        CaseSpace::exhaustive((0..=3).map(Value::from).collect())
    }

    fn all_args() -> Vec<Vec<Value>> {
        (0..=3).map(|d| args![d]).collect()
    }

    #[test]
    fn correct_method_is_fully_verified() {
        let suite = SpecSuite::new("Bin")
            .with_invariant("0 <= n <= 3", |s| {
                (0..=3).contains(&s.as_i64().unwrap_or(-1))
            })
            .with_method(
                MethodSpec::new(
                    "put",
                    MethodContract::new().with_post(|pre, post, a| {
                        post.as_i64() == pre.as_i64().zip(a[0].as_i64()).map(|(x, y)| x + y)
                    }),
                )
                .with_args(all_args(), true),
            );
        let report = verify_suite(&registry(), &suite, &full_space());
        assert_eq!(report.total(), 3); // frame + post + invariant
        assert_eq!(report.verified(), 3);
        assert_eq!(report.refuted(), 0);
        assert_eq!(report.runtime_checks(), 0);
    }

    #[test]
    fn buggy_method_is_refuted_with_counterexample() {
        let suite = SpecSuite::new("Bin").with_method(
            MethodSpec::new("leaky", MethodContract::new()).with_args(all_args(), true),
        );
        let report = verify_suite(&registry(), &suite, &full_space());
        let frame = &report.assertions[0];
        assert_eq!(frame.verdict, Verdict::Refuted);
        let ce = frame.counterexample.as_ref().unwrap();
        assert_eq!(ce.args, args![2]);
        assert!(!ce.result);
        assert_ne!(ce.pre, ce.post);
    }

    #[test]
    fn sampled_space_demotes_to_runtime_check() {
        let space = CaseSpace::sampled((0..=3).map(Value::from).collect(), 1_000);
        let suite = SpecSuite::new("Bin")
            .with_method(MethodSpec::new("put", MethodContract::new()).with_args(all_args(), true));
        let report = verify_suite(&registry(), &suite, &space);
        assert_eq!(report.runtime_checks(), 1);
        assert_eq!(report.verified(), 0);
    }

    #[test]
    fn case_cap_truncates_and_demotes() {
        let mut space = full_space();
        space.max_cases = 2;
        let suite = SpecSuite::new("Bin")
            .with_method(MethodSpec::new("put", MethodContract::new()).with_args(all_args(), true));
        let report = verify_suite(&registry(), &suite, &space);
        assert_eq!(report.assertions[0].cases, 2);
        assert_eq!(report.runtime_checks(), 1);
    }

    #[test]
    fn non_exhaustive_args_demote() {
        let suite = SpecSuite::new("Bin").with_method(
            MethodSpec::new("put", MethodContract::new()).with_args(vec![args![1]], false),
        );
        let report = verify_suite(&registry(), &suite, &full_space());
        assert_eq!(report.runtime_checks(), 1);
    }

    #[test]
    fn domain_assertions_are_counted_and_named() {
        let suite = SpecSuite::new("Bin").with_method(
            MethodSpec::new(
                "put",
                MethodContract::new()
                    .with_assertion("never-decreases", |c| {
                        !c.result || c.post.as_i64() >= c.pre.as_i64()
                    })
                    .with_assertion("bogus-always-zero", |c| c.post.as_i64() == Some(0)),
            )
            .with_args(all_args(), true),
        );
        let report = verify_suite(&registry(), &suite, &full_space());
        assert_eq!(report.total(), 3); // frame + 2 domain
        let by_name: std::collections::HashMap<_, _> = report
            .assertions
            .iter()
            .map(|a| (a.name.clone(), a.verdict))
            .collect();
        assert_eq!(by_name["never-decreases"], Verdict::Verified);
        assert_eq!(by_name["bogus-always-zero"], Verdict::Refuted);
        assert_eq!(by_name["frame"], Verdict::Verified);
    }

    #[test]
    fn format_table_breaks_down_per_method() {
        let suite = SpecSuite::new("Bin")
            .with_method(MethodSpec::new("put", MethodContract::new()).with_args(all_args(), true))
            .with_method(
                MethodSpec::new("leaky", MethodContract::new()).with_args(all_args(), true),
            );
        let report = verify_suite(&registry(), &suite, &full_space());
        let table = report.format_table();
        assert!(table.contains("put"));
        assert!(table.contains("leaky"));
        assert!(table.contains("TOTAL"));
        assert_eq!(table.lines().count(), 4, "header + 2 methods + total");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_method_panics() {
        let suite =
            SpecSuite::new("Bin").with_method(MethodSpec::new("ghost", MethodContract::new()));
        verify_suite(&registry(), &suite, &full_space());
    }

    #[test]
    fn malformed_states_are_skipped() {
        let space = CaseSpace::exhaustive(vec![Value::from("not an int"), Value::from(1)]);
        let suite = SpecSuite::new("Bin").with_method(
            MethodSpec::new("put", MethodContract::new()).with_args(vec![args![1]], true),
        );
        let report = verify_suite(&registry(), &suite, &space);
        assert_eq!(report.assertions[0].cases, 1);
    }
}
