//! Chrome trace-format (Trace Event Format) export.
//!
//! Converts a protocol [`TraceRecord`] stream plus the per-op spans
//! into the JSON object format understood by `chrome://tracing` and
//! Perfetto: one *track* (tid) per machine carrying instant events for
//! protocol transitions, and one *async span* per operation stretching
//! from issue to completion. Timestamps are microseconds — exactly
//! [`guesstimate_net::SimTime::as_micros`], so virtual time maps 1:1 onto the viewer's
//! timeline.

use std::collections::BTreeSet;

use guesstimate_net::TraceRecord;

use crate::metrics::escape_json;
use crate::spans::OpSpan;

/// Renders records + spans as a Chrome trace-format JSON document.
pub fn render(records: &[TraceRecord], spans: &[OpSpan]) -> String {
    let mut events: Vec<String> = Vec::new();

    // One named track per machine (metadata events).
    let mut machines: BTreeSet<u32> = BTreeSet::new();
    for r in records {
        machines.insert(r.source.index());
    }
    for s in spans {
        machines.insert(s.op.machine().index());
    }
    for m in &machines {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{m},\
             \"args\":{{\"name\":\"machine-{m}\"}}}}"
        ));
    }

    // Protocol transitions as thread-scoped instant events.
    for r in records {
        let round_arg = match r.event.round() {
            Some(round) => format!("{{\"round\":{round}}}"),
            None => "{}".to_owned(),
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
            escape_json(r.event.name()),
            r.at.as_micros(),
            r.source.index(),
            round_arg,
        ));
    }

    // One async span per op: issue (or first observable instant) → the
    // completion callback. Uncommitted spans render as zero-length with
    // a status arg so lost ops are still visible on the timeline. Every
    // begin is paired with an end in the same iteration, so a run cut
    // short at shutdown never leaves a dangling async span.
    for s in spans {
        let Some(begin) = s
            .issued_at
            .or(s.flushed_at)
            .or(s.committed_at)
            .or(s.completed_at)
        else {
            continue;
        };
        let end = s
            .completed_at
            .or(s.committed_at)
            .unwrap_or(begin)
            .max(begin);
        let status = if s.committed() {
            "committed"
        } else if s.lost {
            "lost"
        } else {
            "in-flight"
        };
        let name = s.op.to_string();
        let mut args = format!("\"exec_count\":{},\"status\":\"{status}\"", s.exec_count);
        if let Some(r) = s.commit_round {
            args.push_str(&format!(",\"round\":{r}"));
        }
        if let Some(f) = s.flushed_at {
            args.push_str(&format!(",\"flushed_ts\":{}", f.as_micros()));
        }
        let common = format!(
            "\"cat\":\"op\",\"id\":\"{name}\",\"pid\":0,\"tid\":{}",
            s.op.machine().index()
        );
        events.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"b\",\"ts\":{},{common},\"args\":{{{args}}}}}",
            begin.as_micros()
        ));
        events.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"e\",\"ts\":{},{common},\"args\":{{}}}}",
            end.as_micros()
        ));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use guesstimate_core::{MachineId, OpId};
    use guesstimate_net::{SimTime, TraceEvent};

    use super::*;
    use crate::spans::SpanBook;

    #[test]
    fn render_produces_tracks_instants_and_async_pairs() {
        let records = vec![TraceRecord {
            at: SimTime::from_millis(3),
            source: MachineId::new(0),
            event: TraceEvent::RoundStarted {
                round: 1,
                participants: 2,
            },
        }];
        let mut book = SpanBook::new();
        let op = OpId::new(MachineId::new(1), 0);
        book.issued(op, Some(SimTime::from_millis(1)));
        book.flushed(op, SimTime::from_millis(2));
        book.committed(op, 1, 2, SimTime::from_millis(5));
        book.completed(op, SimTime::from_millis(5));
        let json = render(&records, &book.snapshot());

        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Tracks for both machines (0 from the record, 1 from the span).
        assert!(json.contains("\"args\":{\"name\":\"machine-0\"}"));
        assert!(json.contains("\"args\":{\"name\":\"machine-1\"}"));
        // The protocol instant at t=3ms on machine 0's track.
        assert!(json.contains("\"name\":\"round_started\""));
        assert!(json.contains("\"ts\":3000"));
        // The async pair: begin at issue, end at completion.
        assert!(json.contains("\"ph\":\"b\",\"ts\":1000"));
        assert!(json.contains("\"ph\":\"e\",\"ts\":5000"));
        assert!(json.contains("\"exec_count\":2"));
        assert!(json.contains("\"status\":\"committed\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn lost_span_renders_zero_length_with_status() {
        let mut book = SpanBook::new();
        let op = OpId::new(MachineId::new(2), 4);
        book.issued(op, Some(SimTime::from_millis(7)));
        book.machine_restarted(MachineId::new(2));
        let json = render(&[], &book.snapshot());
        assert!(json.contains("\"status\":\"lost\""));
        assert!(json.contains("\"ph\":\"b\",\"ts\":7000"));
        assert!(json.contains("\"ph\":\"e\",\"ts\":7000"));
    }

    #[test]
    fn empty_inputs_render_a_valid_document() {
        assert_eq!(
            render(&[], &[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn committed_but_never_completed_ends_at_commit() {
        // A run cut short at shutdown: the op committed but its
        // completion callback never ran. The async span must still
        // close (at the commit instant), not dangle.
        let mut book = SpanBook::new();
        let op = OpId::new(MachineId::new(0), 3);
        book.issued(op, Some(SimTime::from_millis(2)));
        book.committed(op, 1, 2, SimTime::from_millis(9));
        let json = render(&[], &book.snapshot());
        assert!(json.contains("\"ph\":\"b\",\"ts\":2000"));
        assert!(json.contains("\"ph\":\"e\",\"ts\":9000"));
        assert_eq!(
            json.matches("\"ph\":\"b\"").count(),
            json.matches("\"ph\":\"e\"").count()
        );
    }

    #[test]
    fn every_begin_has_a_matching_end_across_statuses() {
        let mut book = SpanBook::new();
        // Committed + completed.
        book.issued(
            OpId::new(MachineId::new(0), 0),
            Some(SimTime::from_millis(1)),
        );
        book.committed(
            OpId::new(MachineId::new(0), 0),
            1,
            1,
            SimTime::from_millis(4),
        );
        book.completed(OpId::new(MachineId::new(0), 0), SimTime::from_millis(4));
        // In-flight at shutdown (flushed, never committed).
        book.issued(
            OpId::new(MachineId::new(1), 0),
            Some(SimTime::from_millis(2)),
        );
        book.flushed(OpId::new(MachineId::new(1), 0), SimTime::from_millis(3));
        // Lost to a restart.
        book.issued(
            OpId::new(MachineId::new(2), 0),
            Some(SimTime::from_millis(2)),
        );
        book.machine_restarted(MachineId::new(2));
        // Untimed issue (no observable instant): contributes no span.
        book.issued(OpId::new(MachineId::new(3), 0), None);
        let json = render(&[], &book.snapshot());
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 3);
        assert!(json.contains("\"status\":\"in-flight\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
