//! The [`Telemetry`] handle: the one type the runtime, drivers, bench
//! harness and model checker carry.
//!
//! A handle is either **enabled** (it owns a [`Registry`] of
//! instruments plus a [`SpanBook`]) or the **no-op** default. The no-op
//! costs exactly one branch per hook — `inner` is `None`, every hook
//! returns immediately, nothing allocates — which is what lets the
//! protocol keep its hooks unconditionally wired without observable
//! overhead (see the zero-overhead test in `tests/`).

use std::collections::BTreeMap;
use std::sync::Arc;

use guesstimate_core::{MachineId, OpId};
use guesstimate_net::{NetMetrics, SimTime, TraceRecord};

use crate::chrome;
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::spans::{OpSpan, SpanBook};

/// The instruments behind an enabled [`Telemetry`] handle.
///
/// All fields are pre-registered `Arc` handles into `registry`; hooks
/// never look anything up by name.
#[derive(Debug)]
pub struct TelemetryInner {
    registry: Registry,
    spans: parking_lot::Mutex<SpanBook>,

    ops_issued: Arc<Counter>,
    ops_flushed: Arc<Counter>,
    ops_committed: Arc<Counter>,
    ops_committed_async: Arc<Counter>,
    ops_completed: Arc<Counter>,
    ops_lost: Arc<Counter>,
    restarts: Arc<Counter>,

    commit_lag_us: Arc<Histogram>,
    commit_lag_round_us: Arc<Histogram>,
    commit_lag_async_us: Arc<Histogram>,
    exec_count: Arc<Histogram>,

    rounds: Arc<Counter>,
    resends: Arc<Counter>,
    removals: Arc<Counter>,
    round_duration_us: Arc<Histogram>,
    stage_flush_us: Arc<Histogram>,
    stage_apply_us: Arc<Histogram>,
    stage_completion_us: Arc<Histogram>,

    pending_depth: Arc<Gauge>,
    pending_depth_peak: Arc<Gauge>,
    pending_depth_dist: Arc<Histogram>,
    divergence: Arc<Gauge>,
    divergence_peak: Arc<Gauge>,
    divergence_dist: Arc<Histogram>,

    net_sent: Arc<Counter>,
    net_delivered: Arc<Counter>,
    net_dropped: Arc<Counter>,
    net_duplicated: Arc<Counter>,
    net_timers: Arc<Counter>,
    net_bytes_sent: Arc<Counter>,
    net_bytes_delivered: Arc<Counter>,

    mc_schedules: Arc<Counter>,
    mc_pruned: Arc<Counter>,
    mc_oracle_checks: Arc<Counter>,

    /// Per-shard commit counters, registered lazily: shard labels are
    /// data-dependent (keyed shards embed argument values), so they
    /// cannot be pre-registered like the instruments above.
    shard_ops: parking_lot::Mutex<BTreeMap<String, Arc<Counter>>>,

    /// Dedicated counter for `Cross`-routed commits (the shard router's
    /// fallback): one bump per committed op whose route left every shard.
    cross_routes: Arc<Counter>,

    /// Per-sync-group instrument sets, registered lazily by group label
    /// (multi-group mode; see `Telemetry::for_group`).
    groups: parking_lot::Mutex<BTreeMap<String, Arc<GroupInstruments>>>,
}

/// The per-group split of the round/commit instruments: one set per sync
/// group label, shared by every handle derived via [`Telemetry::for_group`].
/// Aggregate (unlabeled) instruments keep recording as before; these add
/// the `group`-labeled view.
#[derive(Debug)]
struct GroupInstruments {
    ops_committed: Arc<Counter>,
    commit_lag_us: Arc<Histogram>,
    rounds: Arc<Counter>,
    round_duration_us: Arc<Histogram>,
    stage_flush_us: Arc<Histogram>,
    stage_apply_us: Arc<Histogram>,
    stage_completion_us: Arc<Histogram>,
}

impl GroupInstruments {
    fn new(registry: &Registry, label: &str) -> Self {
        let labels = &[("group", label)];
        GroupInstruments {
            ops_committed: registry.counter_with_labels(
                "guesstimate_group_ops_committed_total",
                "Own operations committed, by sync group",
                labels,
            ),
            commit_lag_us: registry.histogram_with_labels(
                "guesstimate_group_commit_lag_us",
                "Issue-to-commit lag, microseconds, by sync group",
                labels,
            ),
            rounds: registry.counter_with_labels(
                "guesstimate_group_rounds_total",
                "Sync rounds completed, by sync group",
                labels,
            ),
            round_duration_us: registry.histogram_with_labels(
                "guesstimate_group_round_duration_us",
                "Full sync round duration, microseconds, by sync group",
                labels,
            ),
            stage_flush_us: registry.histogram_with_labels(
                "guesstimate_group_stage_flush_us",
                "Stage 1 (AddUpdatesToMesh) duration, microseconds, by sync group",
                labels,
            ),
            stage_apply_us: registry.histogram_with_labels(
                "guesstimate_group_stage_apply_us",
                "Stage 2 (ApplyUpdatesFromMesh) duration, microseconds, by sync group",
                labels,
            ),
            stage_completion_us: registry.histogram_with_labels(
                "guesstimate_group_stage_completion_us",
                "Stage 3 (FlagCompletion) duration, microseconds, by sync group",
                labels,
            ),
        }
    }
}

/// Per-group round/commit sums, read back by the shard-scaling bench to
/// assert the stage-partition invariant group by group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupRoundStats {
    /// Rounds completed in this group.
    pub rounds: u64,
    /// Sum of full round durations, microseconds.
    pub duration_us: u64,
    /// Sum of stage-1 durations, microseconds.
    pub flush_us: u64,
    /// Sum of stage-2 durations, microseconds.
    pub apply_us: u64,
    /// Sum of stage-3 durations, microseconds.
    pub completion_us: u64,
    /// Own operations committed in this group.
    pub ops_committed: u64,
    /// Commit-lag samples recorded in this group (one per committed op).
    pub lag_samples: u64,
}

impl TelemetryInner {
    fn new() -> Self {
        let registry = Registry::new();
        let c = |name: &str, help: &str| registry.counter(name, help);
        let g = |name: &str, help: &str| registry.gauge(name, help);
        let h = |name: &str, help: &str| registry.histogram(name, help);
        TelemetryInner {
            ops_issued: c("guesstimate_ops_issued_total", "Operations issued on sg"),
            ops_flushed: c(
                "guesstimate_ops_flushed_total",
                "Operation flush broadcasts (re-flushes counted)",
            ),
            ops_committed: c(
                "guesstimate_ops_committed_total",
                "Own operations committed into sc on their issuing machine",
            ),
            ops_committed_async: c(
                "guesstimate_ops_committed_async_total",
                "Own operations committed through the hybrid async path (subset of ops_committed)",
            ),
            ops_completed: c(
                "guesstimate_ops_completed_total",
                "Completion callbacks delivered",
            ),
            ops_lost: c(
                "guesstimate_ops_lost_total",
                "Uncommitted operations dropped by a machine restart",
            ),
            restarts: c("guesstimate_restarts_total", "Machine protocol restarts"),
            commit_lag_us: h(
                "guesstimate_commit_lag_us",
                "Virtual time from issue to commit, microseconds (one sample per committed own op)",
            ),
            commit_lag_round_us: h(
                "guesstimate_commit_lag_round_us",
                "Issue-to-commit lag of round-serialized ops, microseconds",
            ),
            commit_lag_async_us: h(
                "guesstimate_commit_lag_async_us",
                "Issue-to-commit lag of hybrid async-path ops, microseconds",
            ),
            exec_count: h(
                "guesstimate_exec_count",
                "Executions per committed operation on its issuing machine (paper bound: 3)",
            ),
            rounds: c("guesstimate_rounds_total", "Sync rounds completed"),
            resends: c(
                "guesstimate_resends_total",
                "Stage kickoff re-sends to stragglers",
            ),
            removals: c(
                "guesstimate_removals_total",
                "Machines removed from a round as unresponsive",
            ),
            round_duration_us: h(
                "guesstimate_round_duration_us",
                "Full sync round duration, microseconds",
            ),
            stage_flush_us: h(
                "guesstimate_stage_flush_us",
                "Stage 1 (AddUpdatesToMesh) duration, microseconds",
            ),
            stage_apply_us: h(
                "guesstimate_stage_apply_us",
                "Stage 2 (ApplyUpdatesFromMesh) duration, microseconds",
            ),
            stage_completion_us: h(
                "guesstimate_stage_completion_us",
                "Stage 3 (FlagCompletion) duration, microseconds",
            ),
            pending_depth: g(
                "guesstimate_pending_depth",
                "Pending-list depth at the most recent flush",
            ),
            pending_depth_peak: g(
                "guesstimate_pending_depth_peak",
                "Largest pending-list depth observed at a flush",
            ),
            pending_depth_dist: h(
                "guesstimate_pending_depth_dist",
                "Pending-list depth sampled at each flush",
            ),
            divergence: g(
                "guesstimate_sg_sc_divergence",
                "Ops applied to sg but not yet in sc, sampled after the most recent round apply",
            ),
            divergence_peak: g(
                "guesstimate_sg_sc_divergence_peak",
                "Largest sg/sc divergence observed at a round boundary",
            ),
            divergence_dist: h(
                "guesstimate_sg_sc_divergence_dist",
                "sg/sc divergence sampled at each round apply",
            ),
            net_sent: c(
                "guesstimate_net_sent_total",
                "Point-to-point deliveries attempted",
            ),
            net_delivered: c(
                "guesstimate_net_delivered_total",
                "Deliveries that reached on_message",
            ),
            net_dropped: c(
                "guesstimate_net_dropped_total",
                "Deliveries dropped by the fault plan",
            ),
            net_duplicated: c(
                "guesstimate_net_duplicated_total",
                "Extra deliveries injected by duplication faults",
            ),
            net_timers: c("guesstimate_net_timers_total", "Timer callbacks fired"),
            net_bytes_sent: c(
                "guesstimate_net_bytes_sent_total",
                "Estimated payload bytes handed to the transport",
            ),
            net_bytes_delivered: c(
                "guesstimate_net_bytes_delivered_total",
                "Estimated payload bytes delivered to on_message",
            ),
            mc_schedules: c(
                "guesstimate_mc_schedules_total",
                "Model-checker schedules fully explored",
            ),
            mc_pruned: c(
                "guesstimate_mc_pruned_total",
                "Model-checker branches pruned by partial-order reduction",
            ),
            mc_oracle_checks: c(
                "guesstimate_mc_oracle_checks_total",
                "Model-checker oracle evaluations",
            ),
            shard_ops: parking_lot::Mutex::new(BTreeMap::new()),
            cross_routes: c(
                "guesstimate_cross_routes_total",
                "Committed operations the shard router routed Cross (fallback)",
            ),
            groups: parking_lot::Mutex::new(BTreeMap::new()),
            spans: parking_lot::Mutex::new(SpanBook::new()),
            registry,
        }
    }
}

/// A cloneable telemetry handle; the default is a no-op.
///
/// Clones share the same instruments, so one handle can be installed
/// into every machine of a cluster plus the driver and the bench
/// harness, and a single snapshot sees everything.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
    /// When present, round/commit hooks additionally record into this
    /// group's labeled instruments (see [`Telemetry::for_group`]).
    group: Option<Arc<GroupInstruments>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// An enabled handle with a fresh instrument set.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner::new())),
            group: None,
        }
    }

    /// The no-op handle: every hook is a single branch, nothing is
    /// recorded, exports are empty.
    pub fn noop() -> Self {
        Telemetry {
            inner: None,
            group: None,
        }
    }

    /// A handle scoped to one sync group: it shares this handle's
    /// aggregate instruments and additionally splits round durations,
    /// stage durations, committed-op counts and commit lag into
    /// `group`-labeled instruments (multi-group mode — one derived handle
    /// per [`GroupId`]-keyed round-protocol instance).
    ///
    /// Deriving from a no-op handle stays a no-op.
    ///
    /// [`GroupId`]: GroupRoundStats
    pub fn for_group(&self, label: &str) -> Telemetry {
        let Some(inner) = &self.inner else {
            return Telemetry::noop();
        };
        let gi = {
            let mut groups = inner.groups.lock();
            Arc::clone(
                groups
                    .entry(label.to_owned())
                    .or_insert_with(|| Arc::new(GroupInstruments::new(&inner.registry, label))),
            )
        };
        Telemetry {
            inner: Some(Arc::clone(inner)),
            group: Some(gi),
        }
    }

    /// Per-group round/commit sums for one group label, or `None` if no
    /// handle for that group was derived (or this handle is no-op).
    pub fn group_round_stats(&self, label: &str) -> Option<GroupRoundStats> {
        let inner = self.inner.as_ref()?;
        let groups = inner.groups.lock();
        let gi = groups.get(label)?;
        Some(GroupRoundStats {
            rounds: gi.rounds.get(),
            duration_us: gi.round_duration_us.sum(),
            flush_us: gi.stage_flush_us.sum(),
            apply_us: gi.stage_apply_us.sum(),
            completion_us: gi.stage_completion_us.sum(),
            ops_committed: gi.ops_committed.get(),
            lag_samples: gi.commit_lag_us.count(),
        })
    }

    /// The group labels that have derived handles, sorted.
    pub fn group_labels(&self) -> Vec<String> {
        match &self.inner {
            Some(inner) => inner.groups.lock().keys().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ---- op lifecycle hooks (called by `runtime`) --------------------

    /// An operation was issued on `sg`. `at` is `None` on untimed
    /// paths (instance creation).
    pub fn op_issued(&self, op: OpId, at: Option<SimTime>) {
        let Some(inner) = &self.inner else { return };
        inner.ops_issued.inc();
        inner.spans.lock().issued(op, at);
    }

    /// An operation was broadcast in a stage-1 flush. Idempotent per
    /// span: a re-flush bumps the counter but keeps one span.
    pub fn op_flushed(&self, op: OpId, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        inner.ops_flushed.inc();
        inner.spans.lock().flushed(op, at);
    }

    /// An own operation was committed into `sc` with the machine's
    /// authoritative execution count.
    ///
    /// This is where the paper's ≤3 bound is asserted *outside* the
    /// test suite: an enabled telemetry handle turns every committed op
    /// into a live check.
    pub fn op_committed(&self, op: OpId, round: u64, exec_count: u32, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        assert!(
            exec_count <= 3,
            "{op} executed {exec_count} times; the paper bounds executions by 3"
        );
        inner.ops_committed.inc();
        inner.exec_count.observe(u64::from(exec_count));
        let mut spans = inner.spans.lock();
        spans.committed(op, round, exec_count, at);
        // One commit-lag sample per committed own op — by construction
        // the histogram's count equals ops_committed exactly. Untimed
        // issues contribute a zero-lag sample.
        let lag = spans
            .get(op)
            .and_then(|s| s.commit_lag())
            .unwrap_or(SimTime::ZERO);
        drop(spans);
        inner.commit_lag_us.observe(lag.as_micros());
        inner.commit_lag_round_us.observe(lag.as_micros());
        if let Some(g) = &self.group {
            g.ops_committed.inc();
            g.commit_lag_us.observe(lag.as_micros());
        }
    }

    /// An own operation was committed through the hybrid async path
    /// (commute-first commit — no round). Same accounting contract as
    /// [`Telemetry::op_committed`]: bumps `ops_committed`, asserts the
    /// ≤3 execution bound, contributes exactly one combined commit-lag
    /// sample, and additionally feeds the async-path counter and
    /// histogram so the two paths' latencies can be compared.
    pub fn op_committed_async(&self, op: OpId, exec_count: u32, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        assert!(
            exec_count <= 3,
            "{op} executed {exec_count} times; the paper bounds executions by 3"
        );
        inner.ops_committed.inc();
        inner.ops_committed_async.inc();
        inner.exec_count.observe(u64::from(exec_count));
        let mut spans = inner.spans.lock();
        spans.committed_async(op, exec_count, at);
        let lag = spans
            .get(op)
            .and_then(|s| s.commit_lag())
            .unwrap_or(SimTime::ZERO);
        drop(spans);
        inner.commit_lag_us.observe(lag.as_micros());
        inner.commit_lag_async_us.observe(lag.as_micros());
        if let Some(g) = &self.group {
            g.ops_committed.inc();
            g.commit_lag_us.observe(lag.as_micros());
        }
    }

    /// An operation's completion callback ran.
    pub fn op_completed(&self, op: OpId, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        inner.ops_completed.inc();
        inner.spans.lock().completed(op, at);
    }

    /// An operation was committed into shard `shard` (the rendered
    /// [`guesstimate_core::ShardId`]; called by the runtime's commit
    /// sites when a shard plan is installed). The counter for a label is
    /// registered on first use — shard labels are data-dependent, so
    /// they cannot be pre-registered.
    pub fn shard_op(&self, shard: &str) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.shard_ops.lock();
        let counter = map.entry(shard.to_owned()).or_insert_with(|| {
            inner.registry.counter_with_labels(
                "guesstimate_shard_ops_total",
                "Operations committed, by routed shard",
                &[("shard", shard)],
            )
        });
        counter.inc();
    }

    /// A committed operation's shard route was `Cross` — the router's
    /// fallback path, serialized by a coordinated round in multi-group
    /// mode. Called by the runtime's commit sites alongside
    /// [`Telemetry::shard_op`].
    pub fn cross_route(&self) {
        let Some(inner) = &self.inner else { return };
        inner.cross_routes.inc();
    }

    /// `machine` restarted: its uncommitted spans are lost.
    pub fn machine_restarted(&self, machine: MachineId, pending_lost: u64) {
        let Some(inner) = &self.inner else { return };
        inner.restarts.inc();
        inner.ops_lost.add(pending_lost);
        inner.spans.lock().machine_restarted(machine);
    }

    // ---- round / health hooks (called by `runtime::protocol`) --------

    /// Pending-list depth sampled when a machine flushes.
    pub fn pending_depth(&self, depth: u64) {
        let Some(inner) = &self.inner else { return };
        let d = i64::try_from(depth).unwrap_or(i64::MAX);
        inner.pending_depth.set(d);
        inner.pending_depth_peak.set_max(d);
        inner.pending_depth_dist.observe(depth);
    }

    /// `sg`/`sc` divergence (ops applied to `sg` not yet in `sc` — by
    /// the guess invariant, exactly the pending-list length) sampled
    /// after a machine applied a committed round.
    pub fn divergence(&self, remaining_pending: u64) {
        let Some(inner) = &self.inner else { return };
        let d = i64::try_from(remaining_pending).unwrap_or(i64::MAX);
        inner.divergence.set(d);
        inner.divergence_peak.set_max(d);
        inner.divergence_dist.observe(remaining_pending);
    }

    /// The master finished a sync round. The three stage durations sum
    /// exactly to `duration`.
    #[allow(clippy::too_many_arguments)]
    pub fn round_finished(
        &self,
        duration: SimTime,
        flush: SimTime,
        apply: SimTime,
        completion: SimTime,
        resends: u64,
        removals: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.rounds.inc();
        inner.resends.add(resends);
        inner.removals.add(removals);
        inner.round_duration_us.observe(duration.as_micros());
        inner.stage_flush_us.observe(flush.as_micros());
        inner.stage_apply_us.observe(apply.as_micros());
        inner.stage_completion_us.observe(completion.as_micros());
        if let Some(g) = &self.group {
            g.rounds.inc();
            g.round_duration_us.observe(duration.as_micros());
            g.stage_flush_us.observe(flush.as_micros());
            g.stage_apply_us.observe(apply.as_micros());
            g.stage_completion_us.observe(completion.as_micros());
        }
    }

    // ---- driver / checker hooks --------------------------------------

    /// Folds a driver's transport counters in. Call once per run per
    /// driver (the counters add, they do not overwrite).
    pub fn record_net(&self, m: &NetMetrics) {
        let Some(inner) = &self.inner else { return };
        inner.net_sent.add(m.sent);
        inner.net_delivered.add(m.delivered);
        inner.net_dropped.add(m.dropped);
        inner.net_duplicated.add(m.duplicated);
        inner.net_timers.add(m.timers_fired);
        inner.net_bytes_sent.add(m.bytes_sent);
        inner.net_bytes_delivered.add(m.bytes_delivered);
    }

    /// The model checker fully explored one schedule.
    pub fn mc_schedule(&self) {
        let Some(inner) = &self.inner else { return };
        inner.mc_schedules.inc();
    }

    /// The model checker pruned a branch.
    pub fn mc_pruned(&self) {
        let Some(inner) = &self.inner else { return };
        inner.mc_pruned.inc();
    }

    /// The model checker evaluated its oracles once.
    pub fn mc_oracle_check(&self) {
        let Some(inner) = &self.inner else { return };
        inner.mc_oracle_checks.inc();
    }

    // ---- exports -----------------------------------------------------

    /// Prometheus text exposition of every instrument (empty when
    /// no-op).
    pub fn render_prometheus(&self) -> String {
        match &self.inner {
            Some(inner) => inner.registry.render_prometheus(),
            None => String::new(),
        }
    }

    /// JSON snapshot of every instrument (`{"metrics":[]}` when no-op).
    pub fn render_json(&self) -> String {
        match &self.inner {
            Some(inner) => inner.registry.render_json(),
            None => "{\"metrics\":[]}".to_owned(),
        }
    }

    /// Chrome trace-format JSON combining a protocol trace with this
    /// handle's op spans (loadable in `chrome://tracing` / Perfetto).
    pub fn render_chrome_trace(&self, records: &[TraceRecord]) -> String {
        chrome::render(records, &self.spans())
    }

    /// Snapshot of every op span, in `OpId` order (empty when no-op).
    pub fn spans(&self) -> Vec<OpSpan> {
        match &self.inner {
            Some(inner) => inner.spans.lock().snapshot(),
            None => Vec::new(),
        }
    }

    /// The largest per-op execution count seen (0 when no-op/empty).
    pub fn max_exec_count(&self) -> u32 {
        match &self.inner {
            Some(inner) => inner.spans.lock().max_exec_count(),
            None => 0,
        }
    }

    /// Committed-op count (0 when no-op).
    pub fn ops_committed(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ops_committed.get())
    }

    /// Async-path committed-op count (subset of [`Self::ops_committed`];
    /// 0 when no-op).
    pub fn ops_committed_async(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.ops_committed_async.get())
    }

    /// Number of commit-lag samples (equals [`Self::ops_committed`] by
    /// construction; 0 when no-op).
    pub fn commit_lag_count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.commit_lag_us.count())
    }

    /// `Cross`-routed commit count (0 when no-op or no plan installed).
    pub fn cross_routes(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.cross_routes.get())
    }

    /// Per-shard committed-op counts, sorted by shard label (empty when
    /// no-op or no shard plan was installed).
    pub fn shard_ops(&self) -> Vec<(String, u64)> {
        match &self.inner {
            Some(inner) => inner
                .shard_ops
                .lock()
                .iter()
                .map(|(label, c)| (label.clone(), c.get()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of exec-count samples strictly above `n` (0 when no-op).
    pub fn exec_count_above(&self, n: u64) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.exec_count.count_above(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(m: u32, seq: u64) -> OpId {
        OpId::new(MachineId::new(m), seq)
    }

    #[test]
    fn noop_records_nothing_and_exports_empty() {
        let t = Telemetry::noop();
        t.op_issued(op(0, 0), Some(SimTime::ZERO));
        t.op_committed(op(0, 0), 0, 1, SimTime::ZERO);
        t.round_finished(
            SimTime::from_millis(1),
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::from_millis(1),
            0,
            0,
        );
        assert!(!t.enabled());
        assert_eq!(t.render_prometheus(), "");
        assert_eq!(t.render_json(), "{\"metrics\":[]}");
        assert!(t.spans().is_empty());
        assert_eq!(t.ops_committed(), 0);
    }

    #[test]
    fn clones_share_instruments() {
        let t = Telemetry::new();
        let u = t.clone();
        t.op_issued(op(0, 0), Some(SimTime::from_millis(1)));
        u.op_committed(op(0, 0), 0, 2, SimTime::from_millis(9));
        assert_eq!(t.ops_committed(), 1);
        assert_eq!(t.commit_lag_count(), 1);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.max_exec_count(), 2);
    }

    #[test]
    fn commit_lag_count_matches_committed_even_untimed() {
        let t = Telemetry::new();
        t.op_issued(op(0, 0), None); // untimed issue → zero-lag sample
        t.op_committed(op(0, 0), 0, 1, SimTime::from_millis(5));
        t.op_issued(op(0, 1), Some(SimTime::from_millis(2)));
        t.op_committed(op(0, 1), 1, 1, SimTime::from_millis(9));
        assert_eq!(t.ops_committed(), 2);
        assert_eq!(t.commit_lag_count(), 2);
    }

    #[test]
    #[should_panic(expected = "executed 4 times")]
    fn exec_bound_violation_panics() {
        let t = Telemetry::new();
        t.op_committed(op(0, 0), 0, 4, SimTime::ZERO);
    }

    #[test]
    fn async_commits_split_the_lag_but_share_the_totals() {
        let t = Telemetry::new();
        // One round-path commit, one async-path commit.
        t.op_issued(op(0, 0), Some(SimTime::from_millis(1)));
        t.op_committed(op(0, 0), 2, 3, SimTime::from_millis(101));
        t.op_issued(op(0, 1), Some(SimTime::from_millis(4)));
        t.op_committed_async(op(0, 1), 2, SimTime::from_millis(4));
        // The combined accounting invariant holds across both paths...
        assert_eq!(t.ops_committed(), 2);
        assert_eq!(t.commit_lag_count(), 2);
        // ...and the async subset is tracked separately.
        assert_eq!(t.ops_committed_async(), 1);
        let spans = t.spans();
        let s = spans.iter().find(|s| s.op == op(0, 1)).unwrap();
        assert!(s.committed_async);
        assert_eq!(s.commit_round, None);
        assert_eq!(s.commit_lag(), Some(SimTime::ZERO));
        assert!(
            !spans
                .iter()
                .find(|s| s.op == op(0, 0))
                .unwrap()
                .committed_async
        );
    }

    #[test]
    fn debug_shows_enabled_state() {
        assert!(format!("{:?}", Telemetry::noop()).contains("enabled: false"));
        assert!(format!("{:?}", Telemetry::new()).contains("enabled: true"));
    }
}
