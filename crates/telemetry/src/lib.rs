//! # guesstimate-telemetry
//!
//! Operation-lifecycle telemetry for the GUESSTIMATE runtime.
//!
//! The paper's central contract is **per-operation**: an op is issued
//! against the guesstimated state `sg`, flushed to the mesh in stage 1
//! of the sync protocol, committed in a global order, and executed at
//! most 3 times. PR 1's `TraceEvent` stream and `SyncSample` stage
//! splits observe *rounds*; this crate observes *operations* and the
//! health quantities optimistic replication cares about (commit lag,
//! `sg`/`sc` divergence, pending depth).
//!
//! Three layers:
//!
//! * [`metrics`] — a dependency-free registry of [`Counter`]s,
//!   [`Gauge`]s and log-linear [`Histogram`]s with atomic hot paths,
//!   rendered as Prometheus text or JSON.
//! * [`spans`] — per-op lifecycle spans keyed by `OpId`
//!   (issue → flush → commit → completion, execution count, commit
//!   latency).
//! * [`Telemetry`] — the handle the runtime carries. The default is a
//!   no-op costing one branch per hook; an enabled handle is cloned
//!   into every machine of a cluster and snapshotted once at the end.
//!
//! Exports: [`Telemetry::render_prometheus`],
//! [`Telemetry::render_json`], and
//! [`Telemetry::render_chrome_trace`] (Trace Event Format, loadable in
//! `chrome://tracing` / Perfetto). See `docs/OBSERVABILITY.md` for a
//! worked example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod handle;
pub mod metrics;
pub mod spans;

pub use handle::{GroupRoundStats, Telemetry, TelemetryInner};
pub use metrics::{
    bucket_index, bucket_upper, Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS,
};
pub use spans::{OpSpan, SpanBook};
