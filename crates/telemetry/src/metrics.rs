//! A dependency-free metrics registry: counters, gauges, log-linear
//! histograms, and Prometheus-text / JSON renderers.
//!
//! Design constraints:
//!
//! * **Atomic hot paths.** [`Counter::inc`], [`Gauge::set`] and
//!   [`Histogram::observe`] are single relaxed atomic operations (the
//!   histogram adds a handful of shift/mask instructions to pick a
//!   bucket). No locks, no allocation.
//! * **No dependencies.** Rendering is hand-rolled; the exposition
//!   format follows the Prometheus text format 0.0.4 conventions
//!   (`# HELP`/`# TYPE` headers, cumulative `le` buckets,
//!   `_sum`/`_count` series, label-value escaping).
//! * **Registration is cold.** Instruments are registered once behind a
//!   mutex and handed out as `Arc`s; the hot path never touches the
//!   registry again.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating; counters never wrap).
    pub fn add(&self, n: u64) {
        let prev = self.value.fetch_add(n, Ordering::Relaxed);
        debug_assert!(prev.checked_add(n).is_some(), "counter wrapped");
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower.
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`].
///
/// Log-linear layout, 4 sub-buckets per power of two: values `0..=3` get
/// exact buckets (index = value), and every larger power-of-two range
/// `[2^m, 2^(m+1))` is split into 4 equal sub-buckets. The highest index
/// is reached at `u64::MAX` (`m = 63`, sub-bucket 3): `4*62 + 3 = 251`.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// A log-linear histogram of `u64` samples.
///
/// Relative error of a bucket's bounds is at most 25%, and small values
/// (`0..=7`) are recorded *exactly* — which is what lets the exec-count
/// histogram distinguish "executed 3 times" (the paper's bound) from
/// "executed 4 times" with no ambiguity.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Maps a sample to its bucket index.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let m = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
        4 * (m - 1) + ((v >> (m - 2)) & 3) as usize
    }
}

/// The largest sample value a bucket contains (inclusive upper bound).
pub fn bucket_upper(idx: usize) -> u64 {
    assert!(idx < HISTOGRAM_BUCKETS, "bucket index out of range");
    if idx < 4 {
        idx as u64
    } else {
        let m = idx / 4 + 1;
        let sub = (idx % 4) as u128;
        let upper = (1u128 << m) + (sub + 1) * (1u128 << (m - 2)) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), indexed by bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of samples strictly greater than `v`.
    pub fn count_above(&self, v: u64) -> u64 {
        let cut = bucket_index(v);
        self.buckets[cut + 1..]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// The largest recorded sample, rounded up to its bucket's upper
    /// bound. `None` if empty.
    pub fn max_upper(&self) -> Option<u64> {
        let counts = self.bucket_counts();
        counts.iter().rposition(|&c| c > 0).map(bucket_upper)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the upper bound of
    /// the bucket holding the q-th sample. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper(idx);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// The instrument behind one registry entry.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A collection of named instruments, renderable as Prometheus text or
/// JSON.
///
/// Registration is the only locked operation; the returned `Arc`
/// handles are the hot-path interface.
#[derive(Debug, Default)]
pub struct Registry {
    entries: parking_lot::Mutex<Vec<Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        self.entries.lock().push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            instrument,
        });
    }

    /// Registers a counter and returns its handle.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with_labels(name, help, &[])
    }

    /// Registers a counter with fixed labels.
    pub fn counter_with_labels(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, labels, Instrument::Counter(c.clone()));
        c
    }

    /// Registers a gauge and returns its handle.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with_labels(name, help, &[])
    }

    /// Registers a gauge with fixed labels.
    pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, labels, Instrument::Gauge(g.clone()));
        g
    }

    /// Registers a histogram and returns its handle.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with_labels(name, help, &[])
    }

    /// Registers a histogram with fixed labels.
    pub fn histogram_with_labels(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(name, help, labels, Instrument::Histogram(h.clone()));
        h
    }

    /// Renders every instrument in the Prometheus text exposition
    /// format (headers, escaped labels, cumulative histogram buckets).
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().clone();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in &entries {
            if last_name != Some(e.name.as_str()) {
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {}\n",
                    e.name,
                    escape_help(&e.help),
                    e.name,
                    e.instrument.type_name()
                ));
                last_name = Some(e.name.as_str());
            }
            match &e.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        c.get()
                    ));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        g.get()
                    ));
                }
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    let highest = counts.iter().rposition(|&c| c > 0);
                    if let Some(hi) = highest {
                        for (idx, &c) in counts[..=hi].iter().enumerate() {
                            if c == 0 && idx != hi {
                                continue;
                            }
                            cum += c;
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                e.name,
                                label_block(&e.labels, Some(&bucket_upper(idx).to_string())),
                                cum
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        label_block(&e.labels, Some("+Inf")),
                        h.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Renders every instrument as a JSON document
    /// (`{"metrics": [...]}`; histograms carry non-cumulative buckets).
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().clone();
        let mut out = String::from("{\"metrics\":[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"type\":\"{}\",\"labels\":{{",
                escape_json(&e.name),
                e.instrument.type_name()
            ));
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push('}');
            match &e.instrument {
                Instrument::Counter(c) => out.push_str(&format!(",\"value\":{}", c.get())),
                Instrument::Gauge(g) => out.push_str(&format!(",\"value\":{}", g.get())),
                Instrument::Histogram(h) => {
                    out.push_str(&format!(",\"count\":{},\"sum\":{}", h.count(), h.sum()));
                    out.push_str(",\"buckets\":[");
                    let mut first = true;
                    for (idx, c) in h.bucket_counts().into_iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("{{\"le\":{},\"count\":{}}}", bucket_upper(idx), c));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n`.
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a Prometheus HELP string: `\` → `\\`, newline → `\n`.
pub fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a JSON string value.
pub fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v) as u64, v, "value {v} must be exact");
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_monotonic() {
        // Every index's upper bound + 1 must land in the next index.
        for idx in 0..HISTOGRAM_BUCKETS - 1 {
            let upper = bucket_upper(idx);
            assert_eq!(bucket_index(upper), idx, "upper bound of {idx} stays in it");
            assert_eq!(
                bucket_index(upper + 1),
                idx + 1,
                "upper+1 of {idx} starts the next bucket"
            );
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // For values >= 4 the bucket width is 2^(m-2), i.e. <= 25% of
        // the bucket's lower bound.
        for &v in &[4u64, 100, 1_000, 65_537, 1 << 40] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v);
            assert!((upper - v) as f64 <= 0.25 * v as f64 + 1.0);
        }
    }

    #[test]
    fn histogram_counts_sum_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // Median of 1..=100 is 50; its bucket [48, 55] has upper 55.
        let med = h.quantile(0.5);
        assert!((48..=55).contains(&med), "median bucket upper: {med}");
        assert_eq!(h.quantile(1.0), bucket_upper(bucket_index(100)));
        assert_eq!(h.count_above(100), 0);
        assert!(h.count_above(40) > 0);
        assert_eq!(h.max_upper(), Some(bucket_upper(bucket_index(100))));
    }

    #[test]
    fn count_above_uses_exact_small_buckets() {
        let h = Histogram::new();
        h.observe(2);
        h.observe(3);
        h.observe(3);
        assert_eq!(h.count_above(3), 0);
        h.observe(4);
        assert_eq!(h.count_above(3), 1);
        assert_eq!(h.count_above(2), 3);
    }

    #[test]
    fn prometheus_rendering_has_headers_buckets_and_escaping() {
        let r = Registry::new();
        let c = r.counter_with_labels(
            "test_total",
            "a \"help\" with\nnewline and back\\slash",
            &[("app", "va\"l\nue\\x")],
        );
        c.add(3);
        let h = r.histogram("lat_us", "latency");
        h.observe(2);
        h.observe(10);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP test_total a \"help\" with\\nnewline and back\\\\slash\n"));
        assert!(text.contains("# TYPE test_total counter\n"));
        assert!(text.contains("test_total{app=\"va\\\"l\\nue\\\\x\"} 3\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"2\"} 1\n"));
        // Bucket for 10 is [10, 11]; cumulative count there is 2.
        assert!(text.contains("lat_us_bucket{le=\"11\"} 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum 12\n"));
        assert!(text.contains("lat_us_count 2\n"));
    }

    #[test]
    fn json_rendering_is_wellformed_and_escaped() {
        let r = Registry::new();
        r.counter_with_labels("c", "h", &[("k", "a\"b\\c\nd")])
            .inc();
        let g = r.gauge("g", "h");
        g.set(-5);
        let h = r.histogram("h", "h");
        h.observe(7);
        let json = r.render_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"k\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"value\":-5"));
        assert!(json.contains("{\"le\":7,\"count\":1}"));
    }

    #[test]
    fn gauge_set_max_only_raises() {
        let g = Gauge::new();
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }
}
