//! Per-operation lifecycle spans.
//!
//! The paper's contract is per-operation: an op is issued against the
//! guesstimated state `sg`, flushed to the mesh during stage 1,
//! committed in the global order, and its completion runs — and along
//! the way it executes **at most 3 times** (issue, at most one replay
//! epoch per rebuild collapsed into the count kept by the machine, and
//! the committed execution). An [`OpSpan`] records that lifecycle for
//! one operation, keyed by [`OpId`], with the timestamps needed to
//! derive commit lag and flush latency.
//!
//! Spans are tracked **on the issuing machine only** (the machine that
//! owns the op's sequence number); remote executions of the same op are
//! part of other machines' replay work and show up in the exec-count
//! histogram, not as separate spans.

use std::collections::BTreeMap;

use guesstimate_core::{MachineId, OpId};
use guesstimate_net::SimTime;

/// The recorded lifecycle of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// The operation.
    pub op: OpId,
    /// When the op was issued on `sg` (None for untimed issue paths).
    pub issued_at: Option<SimTime>,
    /// When the op was first broadcast in a stage-1 flush. Re-flushes
    /// after message loss do not move this.
    pub flushed_at: Option<SimTime>,
    /// When the op was committed into `sc` on the issuing machine.
    pub committed_at: Option<SimTime>,
    /// When the op's completion callback ran (same protocol instant as
    /// commit in this runtime; kept separate for format fidelity).
    pub completed_at: Option<SimTime>,
    /// The sync round that committed the op (`None` for an op committed
    /// through the hybrid async path, which bypasses rounds).
    pub commit_round: Option<u64>,
    /// The op committed through the hybrid async path (commute-first
    /// commit, no round).
    pub committed_async: bool,
    /// Total executions on the issuing machine (issue + replays +
    /// commit). The paper bounds this by 3.
    pub exec_count: u32,
    /// The issuing machine restarted before the op committed; the op
    /// was dropped with the machine's pending list.
    pub lost: bool,
}

impl OpSpan {
    fn new(op: OpId) -> Self {
        OpSpan {
            op,
            issued_at: None,
            flushed_at: None,
            committed_at: None,
            completed_at: None,
            commit_round: None,
            committed_async: false,
            exec_count: 0,
            lost: false,
        }
    }

    /// Commit latency (issue → commit) if both ends were stamped.
    pub fn commit_lag(&self) -> Option<SimTime> {
        match (self.issued_at, self.committed_at) {
            (Some(i), Some(c)) => Some(c.saturating_since(i)),
            _ => None,
        }
    }

    /// Whether the span reached commit.
    pub fn committed(&self) -> bool {
        self.committed_at.is_some()
    }

    /// Renders the span as one JSON object (a JSONL line, no trailing
    /// newline). Timestamps are virtual microseconds; unset edges render
    /// as `null`. This is the `<stem>_spans.jsonl` artifact format the
    /// `obs` report binary joins against the protocol trace.
    pub fn to_json_line(&self) -> String {
        let us = |t: Option<SimTime>| match t {
            Some(t) => t.as_micros().to_string(),
            None => "null".to_owned(),
        };
        let round = match self.commit_round {
            Some(r) => r.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "{{\"machine\":{},\"seq\":{},\"issued_us\":{},\"flushed_us\":{},\
             \"committed_us\":{},\"completed_us\":{},\"round\":{round},\
             \"async\":{},\"exec_count\":{},\"lost\":{}}}",
            self.op.machine().index(),
            self.op.seq(),
            us(self.issued_at),
            us(self.flushed_at),
            us(self.committed_at),
            us(self.completed_at),
            self.committed_async,
            self.exec_count,
            self.lost,
        )
    }
}

/// The set of spans for a run, keyed by [`OpId`].
#[derive(Debug, Default)]
pub struct SpanBook {
    spans: BTreeMap<OpId, OpSpan>,
}

impl SpanBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, op: OpId) -> &mut OpSpan {
        self.spans.entry(op).or_insert_with(|| OpSpan::new(op))
    }

    /// Records an issue. `at` is `None` on untimed paths (e.g. instance
    /// creation before the cluster clock is meaningful).
    pub fn issued(&mut self, op: OpId, at: Option<SimTime>) {
        let s = self.entry(op);
        if s.issued_at.is_none() {
            s.issued_at = at;
        }
        s.exec_count = s.exec_count.max(1);
    }

    /// Records a stage-1 flush. Idempotent: a re-flush after message
    /// loss keeps the original timestamp and the single span.
    pub fn flushed(&mut self, op: OpId, at: SimTime) {
        let s = self.entry(op);
        if s.flushed_at.is_none() {
            s.flushed_at = Some(at);
        }
    }

    /// Records the commit, with the authoritative execution count from
    /// the issuing machine.
    pub fn committed(&mut self, op: OpId, round: u64, exec_count: u32, at: SimTime) {
        let s = self.entry(op);
        s.committed_at = Some(at);
        s.commit_round = Some(round);
        s.exec_count = exec_count;
        s.lost = false;
    }

    /// Records an async-path commit (no round; the hybrid commit path).
    pub fn committed_async(&mut self, op: OpId, exec_count: u32, at: SimTime) {
        let s = self.entry(op);
        s.committed_at = Some(at);
        s.commit_round = None;
        s.committed_async = true;
        s.exec_count = exec_count;
        s.lost = false;
    }

    /// Records the completion callback.
    pub fn completed(&mut self, op: OpId, at: SimTime) {
        let s = self.entry(op);
        if s.completed_at.is_none() {
            s.completed_at = Some(at);
        }
    }

    /// Marks every uncommitted span issued by `machine` as lost (the
    /// machine restarted and dropped its pending list).
    pub fn machine_restarted(&mut self, machine: MachineId) {
        for s in self.spans.values_mut() {
            if s.op.machine() == machine && !s.committed() {
                s.lost = true;
            }
        }
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// A snapshot of every span, in `OpId` order.
    pub fn snapshot(&self) -> Vec<OpSpan> {
        self.spans.values().copied().collect()
    }

    /// The span for one op, if tracked.
    pub fn get(&self, op: OpId) -> Option<OpSpan> {
        self.spans.get(&op).copied()
    }

    /// The largest exec count across all spans (0 when empty).
    pub fn max_exec_count(&self) -> u32 {
        self.spans.values().map(|s| s.exec_count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(m: u32, seq: u64) -> OpId {
        OpId::new(MachineId::new(m), seq)
    }

    #[test]
    fn lifecycle_orders_and_lag() {
        let mut book = SpanBook::new();
        let id = op(1, 0);
        book.issued(id, Some(SimTime::from_millis(10)));
        book.flushed(id, SimTime::from_millis(40));
        book.committed(id, 3, 2, SimTime::from_millis(200));
        book.completed(id, SimTime::from_millis(200));
        let s = book.snapshot()[0];
        assert_eq!(s.commit_lag(), Some(SimTime::from_millis(190)));
        assert_eq!(s.commit_round, Some(3));
        assert_eq!(s.exec_count, 2);
        assert!(!s.lost);
    }

    #[test]
    fn reflush_keeps_one_span_and_first_timestamp() {
        let mut book = SpanBook::new();
        let id = op(0, 7);
        book.issued(id, Some(SimTime::from_millis(1)));
        book.flushed(id, SimTime::from_millis(5));
        // The flush was lost; the next round re-broadcasts the batch.
        book.flushed(id, SimTime::from_millis(50));
        assert_eq!(book.len(), 1);
        assert_eq!(book.snapshot()[0].flushed_at, Some(SimTime::from_millis(5)));
    }

    #[test]
    fn restart_marks_only_uncommitted_own_spans_lost() {
        let mut book = SpanBook::new();
        book.issued(op(1, 0), Some(SimTime::ZERO));
        book.committed(op(1, 0), 0, 1, SimTime::from_millis(1));
        book.issued(op(1, 1), Some(SimTime::ZERO));
        book.issued(op(2, 0), Some(SimTime::ZERO));
        book.machine_restarted(MachineId::new(1));
        let spans = book.snapshot();
        assert!(!spans.iter().find(|s| s.op == op(1, 0)).unwrap().lost);
        assert!(spans.iter().find(|s| s.op == op(1, 1)).unwrap().lost);
        assert!(!spans.iter().find(|s| s.op == op(2, 0)).unwrap().lost);
    }

    #[test]
    fn max_exec_count_tracks_commits() {
        let mut book = SpanBook::new();
        assert_eq!(book.max_exec_count(), 0);
        book.issued(op(0, 0), None);
        assert_eq!(book.max_exec_count(), 1);
        book.committed(op(0, 0), 0, 3, SimTime::ZERO);
        assert_eq!(book.max_exec_count(), 3);
    }
}
