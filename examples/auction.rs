//! A bidding war under speculative replication.
//!
//! Both bidders' bids succeed instantly on their own guesstimated state;
//! the commit order decides whose bid stands, the loser's completion
//! routine fires with `false`, and an OrElse *bid ladder* automatically
//! escalates — the §5 pattern of composing alternatives so the operation
//! can succeed "using one alternative during the execution on the
//! guesstimated state and another during commitment".
//!
//! Run with: `cargo run --example auction`

use guesstimate::apps::auction::{self, ops, Auction};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

fn main() {
    let mut registry = OpRegistry::new();
    auction::register(&mut registry);
    let mut net = sim_cluster(
        3,
        registry,
        MachineConfig::default().with_sync_period(SimTime::from_millis(200)),
        NetConfig::lan(21).with_latency(LatencyModel::lan_ms(30)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    // The seller (machine 0) lists a lamp: reserve 100, increment 10.
    let house = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(Auction::new());
    net.call(MachineId::new(0), |m, _| {
        m.issue(ops::list_item(house, "lamp", "seller", 100, 10))
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(1));

    // Ann (m1) and Bob (m2) both bid 100 in the same sync window: each sees
    // their own bid stand locally; the commit order will pick one.
    for (i, bidder) in [(1u32, "ann"), (2, "bob")] {
        let name = bidder.to_owned();
        net.call(MachineId::new(i), move |m, _| {
            let issued = m
                .issue_with_completion(
                    ops::bid(house, "lamp", &name, 100),
                    Box::new(move |ok| {
                        println!(
                            "{name}'s 100 bid committed: {ok}{}",
                            if ok {
                                ""
                            } else {
                                "  → outbid before commit!"
                            }
                        )
                    }),
                )
                .unwrap();
            assert!(issued, "bid succeeds optimistically");
        });
        let view = net
            .actor(MachineId::new(i))
            .unwrap()
            .read::<Auction, _>(house, |a| a.best_bid("lamp"))
            .unwrap();
        println!("machine m{i} local view right after issuing: best = {view:?}");
    }
    net.run_until(net.now() + SimTime::from_secs(2));
    let best = net
        .actor(MachineId::new(0))
        .unwrap()
        .read::<Auction, _>(house, |a| a.best_bid("lamp"))
        .unwrap();
    println!("\nafter sync, agreed best bid: {best:?} (the loser was told via completion)\n");

    // The loser responds with a bid *ladder*: 110 orelse 120 orelse 130.
    let loser = if best.as_ref().map(|b| b.0.as_str()) == Some("ann") {
        (2u32, "bob")
    } else {
        (1u32, "ann")
    };
    println!("{} escalates with a ladder up to 130 ...", loser.1);
    let lname = loser.1.to_owned();
    net.call(MachineId::new(loser.0), move |m, _| {
        let ladder = ops::bid_up_to(house, "lamp", &lname, 110, 10, 130).unwrap();
        m.issue(ladder).unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));

    // Seller closes.
    net.call(MachineId::new(0), |m, _| {
        m.issue(ops::close(house, "lamp", "seller")).unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));

    let m0 = net.actor(MachineId::new(0)).unwrap();
    let winner = m0.read::<Auction, _>(house, |a| a.winner("lamp")).unwrap();
    println!("auction closed; winner: {winner:?}");
    let digests: Vec<u64> = (0..3)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(winner.unwrap().1, 110, "the ladder's first rung sufficed");
    println!("all replicas agree on the outcome.");
}
