//! The car-pool system and the §5 specification story.
//!
//! `GetRide(e)` is an OrElse chain over vehicles. Its specification
//! φ_GetRide says only "the user gets a ride on *some* vehicle": the
//! vehicle chosen on the guesstimated state may be full by commit time, and
//! the operation still conforms as long as the commit-time execution seats
//! the rider somewhere. This example engineers exactly that situation and
//! shows φ_GetRide holding while the *specific* vehicle changed.
//!
//! Run with: `cargo run --example carpool`

use guesstimate::apps::carpool::{self, ops, CarPool};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

fn main() {
    let mut registry = OpRegistry::new();
    carpool::register(&mut registry);
    let mut net = sim_cluster(
        3,
        registry,
        MachineConfig::default().with_sync_period(SimTime::from_millis(200)),
        NetConfig::lan(33).with_latency(LatencyModel::lan_ms(30)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    let pool = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(CarPool::new());
    net.call(MachineId::new(0), |m, _| {
        m.issue(ops::add_vehicle(pool, "v1", 1, "concert")).unwrap();
        m.issue(ops::add_vehicle(pool, "v2", 2, "concert")).unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(1));

    // Ann (on machine 2) asks for a ride: her guesstimate shows v1 free,
    // so the OrElse chain's first arm seats her in v1 locally.
    net.call(MachineId::new(2), |m, _| {
        let ride = m
            .read::<CarPool, _>(pool, |p| ops::get_ride(p, pool, "ann", "concert"))
            .unwrap()
            .expect("vehicles exist");
        assert!(m.issue(ride).unwrap());
    });
    let anns_view = net
        .actor(MachineId::new(2))
        .unwrap()
        .read::<CarPool, _>(pool, |p| p.ride_of("ann", "concert"))
        .unwrap();
    println!("ann's guesstimate after GetRide: riding in {anns_view:?}");

    // Meanwhile Bob (on machine 1) grabs v1's only seat. Commit order is
    // lexicographic (machineID, opnumber), so Bob's op commits *before*
    // Ann's OrElse re-executes — exactly the paper's GetRide scenario.
    net.call(MachineId::new(1), |m, _| {
        assert!(m.issue(ops::board(pool, "bob", "v1")).unwrap());
    });
    let bobs_view = net
        .actor(MachineId::new(1))
        .unwrap()
        .read::<CarPool, _>(pool, |p| p.ride_of("bob", "concert"))
        .unwrap();
    println!("bob's guesstimate after boarding:  riding in {bobs_view:?}");
    println!("(both think they are in v1 — only one can be after commit)");

    net.run_until(net.now() + SimTime::from_secs(2));
    let m0 = net.actor(MachineId::new(0)).unwrap();
    let (ann_ride, bob_ride) = m0
        .read::<CarPool, _>(pool, |p| {
            (p.ride_of("ann", "concert"), p.ride_of("bob", "concert"))
        })
        .unwrap();
    println!("\ncommitted outcome on every machine:");
    println!("  ann rides {ann_ride:?}");
    println!("  bob rides {bob_ride:?}");

    // φ_GetRide: ann has SOME ride; the specific vehicle may differ from
    // her optimistic v1.
    assert_eq!(bob_ride.as_deref(), Some("v1"), "bob's op committed first");
    assert_eq!(
        ann_ride.as_deref(),
        Some("v2"),
        "φ_GetRide holds via the OrElse fallback — a different vehicle than          her guesstimate predicted"
    );
    let digests: Vec<u64> = (0..3)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    println!("\nφ_GetRide satisfied: ann has a ride (though not necessarily the one her");
    println!("guesstimate predicted), and all replicas agree.");
}
