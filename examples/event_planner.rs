//! Event planning on the **threaded** (real-thread, wall-clock) driver,
//! demonstrating the paper's four design patterns (§5):
//!
//! * **blocking sign-in/registration** — Figure 4's semaphore pattern,
//!   packaged as `issue_blocking`;
//! * **OrElse** — join the first available of several events;
//! * **Atomic** — swap events only if the important one can be joined;
//! * **completions** — non-blocking joins whose outcome is reported later.
//!
//! Run with: `cargo run --example event_planner`

use std::time::Duration;

use guesstimate::apps::event_planner::{self, ops, EventPlanner};
use guesstimate::net::{LatencyModel, SimTime};
use guesstimate::runtime::{issue_blocking, threaded_cluster, BlockingOutcome, MachineConfig};
use guesstimate::OpRegistry;

fn wait_until(mut pred: impl FnMut() -> bool, what: &str) {
    for _ in 0..1_000 {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

fn main() {
    let mut registry = OpRegistry::new();
    event_planner::register(&mut registry);
    let cfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(50))
        .with_join_retry(SimTime::from_millis(100));
    let (_net, handles) = threaded_cluster(3, registry, cfg, LatencyModel::constant_ms(2), 9);
    let (ann_pc, bob_pc) = (handles[1].clone(), handles[2].clone());
    wait_until(
        || {
            handles
                .iter()
                .all(|h| h.read(|m| m.in_cohort()).unwrap_or(false))
        },
        "cohort",
    );
    println!("3 machines online (master + Ann's and Bob's laptops)");

    // The master machine hosts the planner object and seeds the events.
    let planner = handles[0]
        .with(|m, _| m.create_instance(EventPlanner::with_quota(2)))
        .unwrap();
    handles[0].with(|m, _| {
        m.issue(ops::create_event(planner, "party", 1)).unwrap();
        m.issue(ops::create_event(planner, "dinner", 2)).unwrap();
        m.issue(ops::create_event(planner, "hike", 2)).unwrap();
    });
    wait_until(
        || {
            ann_pc
                .read(|m| m.read::<EventPlanner, _>(planner, |p| p.event_names().len()) == Some(3))
                .unwrap_or(false)
        },
        "events to replicate",
    );

    // --- Pattern 1: blocking registration & sign-in (Figure 4) ---
    for (handle, user) in [(&ann_pc, "ann"), (&bob_pc, "bob")] {
        let reg = issue_blocking(
            handle,
            ops::register_user(planner, user, "pw"),
            Duration::from_secs(5),
        );
        let sin = issue_blocking(
            handle,
            ops::sign_in(planner, user, "pw"),
            Duration::from_secs(5),
        );
        println!("{user}: registration {reg:?}, sign-in {sin:?} (thread blocked until commit)");
        assert_eq!(reg, BlockingOutcome::Committed(true));
        assert_eq!(sin, BlockingOutcome::Committed(true));
    }
    // Signing in twice must fail at commit — one session per user.
    let again = issue_blocking(
        &bob_pc,
        ops::sign_in(planner, "ann", "pw"),
        Duration::from_secs(5),
    );
    println!("ann tries to sign in on Bob's laptop too: {again:?}");
    // Either the guesstimate already reflects her session (instant local
    // rejection) or the race is caught at commit time — never two sessions.
    assert!(matches!(
        again,
        BlockingOutcome::Rejected | BlockingOutcome::Committed(false)
    ));

    // --- Pattern 2: OrElse — Bob joins whichever event has room ---
    bob_pc.with(|m, _| {
        let op = ops::join_one_of(planner, "bob", &["party", "dinner"]).unwrap();
        m.issue_with_completion(
            op,
            Box::new(|ok| println!("bob's join-one-of committed: {ok}")),
        )
        .unwrap();
    });

    // --- Pattern 3: non-blocking join with a completion (Ann races Bob) ---
    ann_pc.with(|m, _| {
        m.issue_with_completion(
            ops::join(planner, "ann", "party"),
            Box::new(|ok| {
                println!(
                    "ann's party join committed: {ok} {}",
                    if ok {
                        "(she got the last spot)"
                    } else {
                        "(bob got there first)"
                    }
                )
            }),
        )
        .unwrap();
    });
    wait_until(
        || {
            handles[0]
                .read(|m| {
                    m.read::<EventPlanner, _>(planner, |p| p.vacancies("party") == Some(0))
                        .unwrap_or(false)
                })
                .unwrap_or(false)
        },
        "party to fill",
    );

    // --- Pattern 4: Atomic swap — keep dinner unless the hike is joinable ---
    let ann_state = ann_pc
        .read(|m| {
            m.read::<EventPlanner, _>(planner, |p| {
                (p.joined_events("ann"), p.is_attending("ann", "party"))
            })
        })
        .unwrap()
        .unwrap();
    println!("ann currently attends {:?}", ann_state.0);
    ann_pc.with(|m, _| {
        m.issue(ops::join(planner, "ann", "dinner")).unwrap();
        let swap = ops::swap_events(planner, "ann", "dinner", "hike");
        m.issue_with_completion(
            swap,
            Box::new(|ok| println!("ann's dinner→hike swap committed: {ok}")),
        )
        .unwrap();
    });

    // Let everything settle and show the converged plan.
    wait_until(
        || {
            let a = handles[0].read(|m| m.committed_digest());
            handles
                .iter()
                .all(|h| h.read(|m| m.committed_digest()) == a)
                && handles[0].read(|m| m.pending_len() == 0).unwrap_or(false)
                && ann_pc.read(|m| m.pending_len() == 0).unwrap_or(false)
                && bob_pc.read(|m| m.pending_len() == 0).unwrap_or(false)
        },
        "convergence",
    );
    println!("\nfinal plan (identical on every machine):");
    handles[0].read(|m| {
        m.read::<EventPlanner, _>(planner, |p| {
            for e in p.event_names() {
                println!(
                    "  {e:<8} capacity {:?}, vacancies {:?}",
                    p.capacity(&e).unwrap(),
                    p.vacancies(&e).unwrap()
                );
            }
            println!("  ann attends {:?}", p.joined_events("ann"));
            println!("  bob attends {:?}", p.joined_events("bob"));
        })
    });
}
