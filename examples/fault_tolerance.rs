//! Fault tolerance, §4/§7: stall detection, resend, removal, restart, rejoin.
//!
//! One machine goes silent mid-session (a stall — the paper saw these when
//! "a message was lost in transmission" or a machine was restarted). The
//! master first resends the signal the machine failed to respond to, then
//! removes it from the round and restarts it; the machine re-enters through
//! the membership path "in a consistent state" — while the other users keep
//! working, never blocked.
//!
//! Run with: `cargo run --example fault_tolerance`

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{FaultPlan, LatencyModel, NetConfig, SimTime, StallWindow};
use guesstimate::runtime::{run_until_cohort, sim_cluster, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

fn main() {
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let victim = MachineId::new(2);
    let faults = FaultPlan::new().with_stall(StallWindow::new(
        victim,
        SimTime::from_secs(8),
        SimTime::from_secs(16),
    ));
    let mut net = sim_cluster(
        3,
        registry,
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(250))
            .with_stall_timeout(SimTime::from_secs(1)),
        NetConfig::lan(99)
            .with_latency(LatencyModel::constant_ms(20))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(SimTime::from_secs(7));
    println!("t=7s   3 machines working; m2 will stall from t=8s to t=16s");

    // Machines 0 and 1 keep playing through the whole incident.
    for k in 0..60u64 {
        let who = MachineId::new((k % 2) as u32);
        net.schedule_call(
            SimTime::from_secs(7) + SimTime::from_millis(200 * k),
            who,
            move |m, _| {
                if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                    if let Some(&(r, c, v)) = moves.first() {
                        let _ = m.issue(sudoku::ops::update(board, r, c, v));
                    }
                }
            },
        );
    }

    // Watch the incident unfold.
    for checkpoint in [10u64, 14, 18, 25] {
        net.run_until(SimTime::from_secs(checkpoint));
        let master = net.actor(MachineId::new(0)).unwrap();
        let resends: u64 = master.stats().sync_samples.iter().map(|s| s.resends).sum();
        let removals: u64 = master.stats().sync_samples.iter().map(|s| s.removals).sum();
        let m2 = net.actor(victim).unwrap();
        println!(
            "t={checkpoint}s  rounds={:<4} resends={resends:<3} removals={removals:<2} \
             m2: restarts={} in_cohort={}",
            master.stats().syncs_seen,
            m2.stats().restarts,
            m2.in_cohort(),
        );
    }

    net.run_until(SimTime::from_secs(30));
    let filled: Vec<usize> = (0..3)
        .map(|i| {
            81 - net
                .actor(MachineId::new(i))
                .unwrap()
                .read::<Sudoku, _>(board, |s| s.empty_count())
                .unwrap()
        })
        .collect();
    let digests: Vec<u64> = (0..3)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    println!();
    println!("t=30s  filled cells per machine: {filled:?}");
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "replicas agree");
    assert!(
        net.actor(victim).unwrap().stats().restarts >= 1,
        "m2 was restarted by recovery"
    );
    assert!(net.actor(victim).unwrap().in_cohort(), "m2 rejoined");
    println!(
        "m2 was removed, restarted and re-admitted automatically; it caught up to the \
         exact committed state — and machines 0/1 never stopped playing."
    );
}
