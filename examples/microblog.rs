//! The twitter-like application, plus the §9 remote-update callback
//! extension: each machine registers a hook that fires whenever *another*
//! user's committed post lands, refreshing the local timeline — the
//! facility the paper wished for after hand-rolling Sudoku's grid refresh
//! ("A mechanism to register a callback function for remote updates could
//! prove useful").
//!
//! Run with: `cargo run --example microblog`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use guesstimate::apps::microblog::{self, ops, MicroBlog};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

fn main() {
    let mut registry = OpRegistry::new();
    microblog::register(&mut registry);
    let mut net = sim_cluster(
        3,
        registry,
        MachineConfig::default().with_sync_period(SimTime::from_millis(200)),
        NetConfig::lan(57).with_latency(LatencyModel::lan_ms(25)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    let blog = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(MicroBlog::new());
    net.run_until(net.now() + SimTime::from_secs(1));

    // Ann's machine (m1) refreshes her timeline whenever remote activity
    // commits — the §9 extension in action.
    let refreshes = Arc::new(AtomicUsize::new(0));
    let r = refreshes.clone();
    net.actor_mut(MachineId::new(1))
        .unwrap()
        .on_remote_update(Box::new(move |_obj| {
            r.fetch_add(1, Ordering::SeqCst);
        }));

    // Users register and follow each other.
    let users = [(0u32, "host"), (1, "ann"), (2, "bob")];
    for (i, name) in users {
        net.call(MachineId::new(i), move |m, _| {
            m.issue(ops::register(blog, name)).unwrap();
        });
    }
    net.run_until(net.now() + SimTime::from_secs(1));
    net.call(MachineId::new(1), |m, _| {
        m.issue(ops::follow(blog, "ann", "bob")).unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(1));

    // Everyone posts over a few sync rounds.
    let posts = [
        (0u32, "host", "welcome everyone"),
        (2, "bob", "hello from bob's laptop"),
        (1, "ann", "hi! following bob"),
        (2, "bob", "guesstimate is speculative"),
        (0, "host", "host news (ann does not follow)"),
    ];
    for (k, (i, author, text)) in posts.into_iter().enumerate() {
        net.schedule_call(
            net.now() + SimTime::from_millis(300 * k as u64),
            MachineId::new(i),
            move |m, _| {
                m.issue(ops::post(blog, author, text)).unwrap();
            },
        );
    }
    net.run_until(net.now() + SimTime::from_secs(4));

    // Ann's timeline: her posts + bob's, newest first, identical everywhere.
    let m1 = net.actor(MachineId::new(1)).unwrap();
    println!("ann's timeline (own posts + followees, newest first):");
    m1.read::<MicroBlog, _>(blog, |b| {
        for p in b.timeline("ann") {
            println!("  [{:>2}] {:<5} {}", p.seq, p.author, p.text);
        }
    })
    .unwrap();
    println!();
    println!(
        "remote-update refreshes on ann's machine: {}",
        refreshes.load(Ordering::SeqCst)
    );
    let digests: Vec<u64> = (0..3)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    assert!(
        refreshes.load(Ordering::SeqCst) >= 4,
        "foreign commits refreshed the UI"
    );
    m1.read::<MicroBlog, _>(blog, |b| {
        let tl = b.timeline("ann");
        assert_eq!(tl.len(), 3, "host's post filtered out");
        assert_eq!(tl[0].text, "guesstimate is speculative");
    })
    .unwrap();
    println!("all replicas agree; the timeline refreshed itself on every remote commit.");
}
