//! Quickstart: the GUESSTIMATE programming model in one file.
//!
//! Three machines share a seat-reservation counter. Operations execute
//! immediately on each machine's *guesstimated* state (no blocking), are
//! committed in a globally agreed order by the background synchronizer, and
//! completion routines report the commit-time outcome — including the rare
//! *conflict* where an operation that succeeded optimistically loses the
//! race at commit time.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use guesstimate::core::{args, GState, OpRegistry, RestoreError, SharedOp, Value};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, MachineConfig};
use guesstimate::MachineId;

/// The shared object: seats on a flight. Derives the paper's
/// `GSharedObject` contract via [`GState`].
#[derive(Clone, Default)]
struct Flight {
    booked: i64,
    capacity: i64,
}

impl GState for Flight {
    const TYPE_NAME: &'static str = "Flight";
    fn snapshot(&self) -> Value {
        Value::map([
            ("booked", Value::from(self.booked)),
            ("capacity", Value::from(self.capacity)),
        ])
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let shape = || RestoreError::shape("flight snapshot");
        self.booked = v
            .field("booked")
            .and_then(Value::as_i64)
            .ok_or_else(shape)?;
        self.capacity = v
            .field("capacity")
            .and_then(Value::as_i64)
            .ok_or_else(shape)?;
        Ok(())
    }
}

fn main() {
    // 1. Register the shared type and its operations — the reflection-free
    //    analog of `Guesstimate.CreateOperation(obj, "book", n)`.
    let mut registry = OpRegistry::new();
    registry.register_type::<Flight>();
    registry.register_method::<Flight>("book", |f, a| {
        let Some(n) = a.i64(0) else { return false };
        if n <= 0 || f.booked + n > f.capacity {
            return false; // precondition: never oversell
        }
        f.booked += n;
        true
    });

    // 2. Build a 3-machine mesh (machine 0 is the master) and let the
    //    membership protocol assemble the cohort.
    let mut net = sim_cluster(
        3,
        registry,
        MachineConfig::default().with_sync_period(SimTime::from_millis(200)),
        NetConfig::lan(42).with_latency(LatencyModel::lan_ms(25)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    println!("cohort assembled: {:?}", net.members());

    // 3. Machine 0 creates the shared object (visible locally at once,
    //    replicated to everyone at the next synchronization).
    let m0 = MachineId::new(0);
    let flight = net.actor_mut(m0).unwrap().create_instance(Flight {
        booked: 0,
        capacity: 10,
    });
    net.run_until(net.now() + SimTime::from_secs(1));

    // 4. Everyone books seats — non-blocking, against the local guesstimate.
    let confirmed = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    for i in 0..3u32 {
        let (confirmed, lost) = (confirmed.clone(), lost.clone());
        net.call(MachineId::new(i), move |m, _| {
            let op = SharedOp::primitive(flight, "book", args![4]);
            let issued = m
                .issue_with_completion(
                    op,
                    Box::new(move |committed| {
                        // The paper's completion pattern: tell the user
                        // whether the optimistic booking really committed.
                        if committed {
                            confirmed.fetch_add(1, Ordering::SeqCst);
                        } else {
                            lost.fetch_add(1, Ordering::SeqCst);
                        }
                    }),
                )
                .unwrap();
            println!(
                "machine m{i}: booked 4 seats optimistically (issue ok: {issued}), local view = {:?}/10",
                m.read::<Flight, _>(flight, |f| f.booked).unwrap()
            );
        });
    }

    // 5. Let the synchronizer commit everything and report.
    net.run_until(net.now() + SimTime::from_secs(3));
    let final_booked = net
        .actor(m0)
        .unwrap()
        .read::<Flight, _>(flight, |f| f.booked)
        .unwrap();
    println!();
    println!("after synchronization:");
    println!("  committed bookings : {final_booked}/10 seats");
    println!(
        "  confirmed / lost   : {} / {}",
        confirmed.load(Ordering::SeqCst),
        lost.load(Ordering::SeqCst)
    );
    for i in 0..3u32 {
        let m = net.actor(MachineId::new(i)).unwrap();
        println!(
            "  m{i}: committed digest {:#018x}, conflicts {}",
            m.committed_digest(),
            m.stats().conflicts
        );
    }
    // Three optimistic 4-seat bookings, capacity 10: exactly one must lose.
    assert_eq!(final_booked, 8);
    assert_eq!(confirmed.load(Ordering::SeqCst), 2);
    assert_eq!(lost.load(Ordering::SeqCst), 1);
    println!("\nexactly one optimistic booking lost the commit-order race — the");
    println!("losing machine's completion routine was told, and every replica agrees.");
}
