//! The paper's running example: a multi-player collaborative Sudoku.
//!
//! Reproduces the Figure 2 UI flow in text form: each player's move is
//! painted YELLOW when issued optimistically, then repainted GREEN if the
//! commit succeeds or RED if it conflicts with a move another player
//! committed first (§2: "if the update operation is successful, the
//! completion operation changes the color of the square ... to GREEN and if
//! update fails the color is set to RED").
//!
//! Run with: `cargo run --example sudoku`

use std::sync::{Arc, Mutex};

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Color {
    Yellow, // issued, awaiting commit
    Green,  // committed
    Red,    // conflicted at commit
}

fn main() {
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let mut net = sim_cluster(
        4,
        registry,
        MachineConfig::default().with_sync_period(SimTime::from_millis(250)),
        NetConfig::lan(7).with_latency(LatencyModel::lan_ms(30)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));

    // A per-player "UI": a move log of (cell, color), updated from
    // completion routines.
    type MoveLog = Arc<Mutex<Vec<((u8, u8), Color)>>>;
    let uis: Vec<MoveLog> = (0..4).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();

    // Each player repeatedly picks the first legal move their *guesstimate*
    // shows in their assigned band of the grid — overlapping bands, so
    // conflicts are possible.
    for round in 0..30u64 {
        for player in 0..4u32 {
            let ui = uis[player as usize].clone();
            net.schedule_call(
                net.now() + SimTime::from_millis(400 * round + 90 * u64::from(player)),
                MachineId::new(player),
                move |m, _| {
                    let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) else {
                        return;
                    };
                    // Deliberately overlap players on the same cells: take
                    // the first few candidates, offset by player.
                    let Some(&(r, c, v)) = moves.get(player as usize % 2) else {
                        return;
                    };
                    let ui2 = ui.clone();
                    let issued = m
                        .issue_with_completion(
                            sudoku::ops::update(board, r, c, v),
                            Box::new(move |ok| {
                                let mut ui = ui2.lock().unwrap();
                                // Repaint: GREEN on commit, RED on conflict.
                                if let Some(e) = ui.iter_mut().rev().find(|e| e.0 == (r, c)) {
                                    e.1 = if ok { Color::Green } else { Color::Red };
                                }
                            }),
                        )
                        .unwrap();
                    if issued {
                        ui.lock().unwrap().push(((r, c), Color::Yellow));
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(20));

    // Print the final (converged) board.
    let m0 = net.actor(MachineId::new(0)).unwrap();
    println!("final board (committed everywhere):");
    for r in 1..=9u8 {
        let mut line = String::new();
        for c in 1..=9u8 {
            let v = m0
                .read::<Sudoku, _>(board, |s| s.cell(r, c).unwrap())
                .unwrap();
            line.push(if v == 0 { '.' } else { char::from(b'0' + v) });
            line.push(' ');
            if c % 3 == 0 && c != 9 {
                line.push_str("| ");
            }
        }
        println!("  {line}");
        if r % 3 == 0 && r != 9 {
            println!("  ---------------------");
        }
    }

    println!();
    println!("per-player move outcomes (YELLOW = still pending):");
    let mut total_green = 0;
    let mut total_red = 0;
    for (p, ui) in uis.iter().enumerate() {
        let ui = ui.lock().unwrap();
        let green = ui.iter().filter(|e| e.1 == Color::Green).count();
        let red = ui.iter().filter(|e| e.1 == Color::Red).count();
        let yellow = ui.iter().filter(|e| e.1 == Color::Yellow).count();
        println!("  player {p}: {green} GREEN, {red} RED, {yellow} YELLOW");
        total_green += green;
        total_red += red;
    }
    let digests: Vec<u64> = (0..4)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "replicas agree");
    println!();
    println!(
        "all 4 replicas agree; {total_green} moves committed, {total_red} lost races to \
         another player's committed move (RED squares, as in the paper's UI)."
    );
}
