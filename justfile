# Developer workflow. Run `just check` before sending a change.

# Everything CI would run, in order.
check: fmt clippy doc test analyze shards mc-smoke bench-snapshot bench-shards

# Formatting gate (no writes).
fmt:
    cargo fmt --all --check

# Lint gate: the whole workspace, tests and bins included, warnings fatal.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Doc gate: rustdoc warnings (broken intra-doc links, missing docs on the
# public protocol surface) are fatal.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# The full test suite (unit + integration + doctests, every crate).
test:
    cargo test --workspace -q

# Effect-analysis lint: conflict matrices for all six apps; any undeclared
# effect, footprint under-approximation, nondeterminism, or witness-refuted
# footprint (undeclared read/write) is fatal.
analyze:
    cargo run -q -p guesstimate-analysis --bin analyze

# Shard-plan gate: derive + sanitize + witness-check every app's ShardPlan
# and archive it, then re-derive and require the archive byte-identical
# (deterministic derivation; docs/ANALYSIS.md "Shard plans").
shards:
    cargo run -q -p guesstimate-analysis --bin analyze -- --shard-plan --json target/shard_plans.json
    cargo run -q -p guesstimate-analysis --bin analyze -- --shard-plan --json target/shard_plans_again.json > /dev/null
    cmp target/shard_plans.json target/shard_plans_again.json

# Effect-witness soundness, all three layers (docs/ANALYSIS.md "Soundness"):
# the analyzer's witness sanitizer over the six apps, the core witness
# recorder's unit tests, the runtime's apply-site containment tests, and
# the model checker's sneaky-preset detection + shrink regression — plus
# the same three layers for shard plans (static sanitizer + witness escape
# check in `shards`, the runtime shard-containment tests, and the mc
# mis-keyed-preset detection + shrink regression).
sanitize: shards
    cargo run -q -p guesstimate-analysis --bin analyze
    cargo test -q -p guesstimate-core witness
    cargo test -q -p guesstimate-runtime undeclared_read
    cargo test -q --test mc_regressions under_declared_read
    cargo test -q -p guesstimate-runtime shard
    cargo test -q --test mc_regressions mis_keyed

# Model-checker smoke: a quick bounded exploration of every preset
# (debug build, small budget) — catches oracle violations early. The
# cross-group preset runs separately: it explores a multi-group cluster
# shape with its own oracles, so `all` does not include it.
mc-smoke:
    cargo run -q -p guesstimate-mc --bin mc -- --preset all --max-schedules 400
    cargo run -q -p guesstimate-mc --bin mc -- --preset cross-group --max-schedules 400

# Telemetry smoke: fixed-seed fig5 with metrics + spans + exporters on;
# validates the observability invariants and artifact well-formedness,
# and refreshes BENCH_pr4.json (docs/OBSERVABILITY.md).
bench-snapshot:
    ./scripts/bench_snapshot.sh

# Shard-scaling gate: fixed-seed multi-group run over ThreadedNet at
# 1/2/4/8 sync groups; validates per-group stage partitioning and the
# >= 2.5x 4-group throughput gate, and refreshes BENCH_pr10.json
# (docs/PROTOCOL.md "Multi-group synchronization").
bench-shards:
    ./scripts/bench_shards.sh

# Causal cluster report: run fig5 (short, traced) and then the obs
# report binary over its trace + spans — the merged happens-before
# timeline, the per-op lag waterfall, re-execution attribution, and
# guess-divergence windows (docs/OBSERVABILITY.md "Lag waterfalls").
obs:
    cargo run --release -q -p guesstimate-bench --bin fig5_sync_distribution 120 42 > /dev/null
    cargo run --release -q -p guesstimate-obs --bin obs

# The CI model-checking gate: release build, full budget, with the
# validated commute matrix from the effect analysis; requires >= 10k
# schedules per preset and >= 30% pruning from the reduction.
mc:
    cargo run -q -p guesstimate-analysis --bin analyze -- --json target/analysis.json > /dev/null
    cargo run --release -q -p guesstimate-mc --bin mc -- --preset all \
        --matrix target/analysis.json --max-schedules 12000 \
        --min-schedules 10000 --min-prune 0.30
    cargo run --release -q -p guesstimate-mc --bin mc -- --preset cross-group \
        --max-schedules 12000 --min-schedules 10000

# Tier-1 smoke: what the release gate runs.
tier1:
    cargo build --release
    cargo test -q

# Regenerate the paper's headline figures with traces enabled.
figures:
    cargo run --release -p guesstimate-bench --bin fig5_sync_distribution
    cargo run --release -p guesstimate-bench --bin fig6_sync_vs_users
    cargo run --release -p guesstimate-bench --bin failure_recovery
