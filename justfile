# Developer workflow. Run `just check` before sending a change.

# Everything CI would run, in order.
check: fmt clippy test analyze

# Formatting gate (no writes).
fmt:
    cargo fmt --all --check

# Lint gate: the whole workspace, tests and bins included, warnings fatal.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# The full test suite (unit + integration + doctests, every crate).
test:
    cargo test --workspace -q

# Effect-analysis lint: conflict matrices for all six apps; any undeclared
# effect, footprint under-approximation or nondeterminism is fatal.
analyze:
    cargo run -q -p guesstimate-analysis --bin analyze

# Tier-1 smoke: what the release gate runs.
tier1:
    cargo build --release
    cargo test -q

# Regenerate the paper's headline figures with traces enabled.
figures:
    cargo run --release -p guesstimate-bench --bin fig5_sync_distribution
    cargo run --release -p guesstimate-bench --bin fig6_sync_vs_users
    cargo run --release -p guesstimate-bench --bin failure_recovery
