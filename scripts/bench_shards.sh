#!/usr/bin/env sh
# Shard-scaling gate: a fixed-seed run of the multi-group synchronizer
# over ThreadedNet at 1/2/4/8 sync groups. The shard_scaling binary
# validates the invariants in-process (per-group stage durations
# partition every group's rounds, one lag sample per committed op,
# aggregate committed ops/s strictly monotone in the group count with
# the 4-group cluster >= 2.5x the single group); this script checks the
# published summary is well-formed and carries both verdicts, then
# publishes it as BENCH_pr10.json. See docs/PROTOCOL.md "Multi-group
# synchronization".
set -eu
cd "$(dirname "$0")/.."

out=BENCH_pr10.json
cargo run --release -q -p guesstimate-bench --bin shard_scaling -- 200 30000 42 "$out"

if [ ! -s "$out" ]; then
    echo "bench_shards.sh: missing or empty artifact $out" >&2
    exit 1
fi
case "$(head -c 1 "$out")" in
    '{') ;;
    *) echo "bench_shards.sh: $out is not a JSON object" >&2; exit 1 ;;
esac
grep -q '"ok_scaling": true' "$out"
grep -q '"ok_stage_partition": true' "$out"

echo "bench_shards.sh: shard scaling validated; summary in $out"
