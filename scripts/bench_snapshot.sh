#!/usr/bin/env sh
# Telemetry smoke gate: a fixed-seed fig5 run with the observability
# stack on. The bench_snapshot binary validates the invariants
# in-process (per-stage durations partition each round, the commit-lag
# histogram holds one sample per committed op, every op executes at most
# 3 times, and the no-op handle leaves the committed history
# byte-identical); this script additionally checks that the exported
# artifacts exist and are well-formed, then publishes the
# machine-readable summaries as BENCH_pr4.json, BENCH_pr6.json (the
# hybrid commit-lag collapse, gated at >= 5x in-process), BENCH_pr8.json
# (the per-app shard-balance rows from the derived shard plans, gated
# in-process on cross-shard routes staying confined to CarPool), and
# BENCH_pr9.json (the causal-observability gate: strict happens-before
# on the merged timeline, exact per-op lag attribution on both commit
# paths, cause-tagged re-executions, postmortem round-trip). See
# docs/OBSERVABILITY.md and docs/ANALYSIS.md "Shard plans".
set -eu
cd "$(dirname "$0")/.."

stem=target/bench_snapshot_metrics
out=BENCH_pr4.json
hybrid_out=BENCH_pr6.json
shards_out=BENCH_pr8.json
obs_out=BENCH_pr9.json
GUESSTIMATE_METRICS="$stem" \
    cargo run --release -q -p guesstimate-bench --bin bench_snapshot -- 60 42 "$out" "$hybrid_out" "$shards_out" "$obs_out"

for f in "$stem.prom" "$stem.json" "${stem}_chrome.json" "${stem}_spans.jsonl" "${stem}_trace.jsonl" "$out" "$hybrid_out" "$shards_out" "$obs_out"; do
    if [ ! -s "$f" ]; then
        echo "bench_snapshot.sh: missing or empty artifact $f" >&2
        exit 1
    fi
done

# Prometheus text: the metric families the dashboards key on must be
# present with their TYPE lines, and the commit-lag histogram must carry
# its _count series (including the per-path split).
for pat in \
    '^# TYPE guesstimate_ops_committed_total counter$' \
    '^# TYPE guesstimate_commit_lag_us histogram$' \
    '^guesstimate_commit_lag_us_count ' \
    '^# TYPE guesstimate_commit_lag_round_us histogram$' \
    '^# TYPE guesstimate_net_sent_total counter$'; do
    if ! grep -q "$pat" "$stem.prom"; then
        echo "bench_snapshot.sh: $stem.prom lacks /$pat/" >&2
        exit 1
    fi
done

# JSON artifacts: object-shaped, and the Chrome trace must carry the
# traceEvents array viewers look for.
for f in "$stem.json" "${stem}_chrome.json" "$out" "$hybrid_out" "$shards_out" "$obs_out"; do
    case "$(head -c 1 "$f")" in
        '{') ;;
        *) echo "bench_snapshot.sh: $f is not a JSON object" >&2; exit 1 ;;
    esac
done
grep -q '"traceEvents"' "${stem}_chrome.json"
grep -q '"invisibility_ok": true' "$out"
grep -q '"stage_sum_ok": true' "$out"
grep -q '"lag_collapse_ok": true' "$hybrid_out"
grep -q '"cross_only_carpool_ok": true' "$shards_out"
grep -q '"hb_ok": true' "$obs_out"
grep -q '"exact_sum_ok": true' "$obs_out"
grep -q '"async_exact_sum_ok": true' "$obs_out"
grep -q '"postmortem_ok": true' "$obs_out"

# The standalone report binary agrees: run it over the snapshot's own
# trace + spans artifacts and require a clean exit.
GUESSTIMATE_TRACE="${stem}_trace.jsonl" GUESSTIMATE_METRICS="$stem" \
    cargo run --release -q -p guesstimate-obs --bin obs >/dev/null

echo "bench_snapshot.sh: artifacts validated; summaries in $out, $hybrid_out, $shards_out and $obs_out"
