#!/usr/bin/env sh
# The `just check` pipeline for environments without `just`.
set -eu
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Doc gate: rustdoc warnings (broken intra-doc links, missing docs on the
# public protocol surface) are fatal.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
cargo test --workspace -q
# Effect-analysis lint: undeclared effects, footprint under-approximations,
# nondeterminism and witness-refuted footprints (undeclared reads/writes
# caught by perturbation probing — `just sanitize` runs this plus the
# runtime/mc layers in isolation) fail the check (docs/ANALYSIS.md).
# `--shard-plan` additionally derives, sanitizes and witness-checks each
# app's ShardPlan (docs/ANALYSIS.md "Shard plans"); the second run must
# produce a byte-identical archive (deterministic derivation).
cargo run -q -p guesstimate-analysis --bin analyze -- --shard-plan --json target/shard_plans.json
cargo run -q -p guesstimate-analysis --bin analyze -- --shard-plan --json target/shard_plans_again.json > /dev/null
cmp target/shard_plans.json target/shard_plans_again.json
# Model-checker smoke: bounded exploration of every preset with all
# oracles armed (docs/MODELCHECK.md) — `all` includes the hybrid
# `message_board` preset, whose step oracle checks committed-digest
# agreement under the commute-first async commit path. The full-budget
# gated run is CI's `mc` step / `just mc`.
cargo run -q -p guesstimate-mc --bin mc -- --preset all --max-schedules 400
# Telemetry smoke: fixed-seed fig5 with the observability stack on,
# self-validated invariants + artifact well-formedness
# (docs/OBSERVABILITY.md).
./scripts/bench_snapshot.sh
