//! Workspace-local stand-in for the `criterion` crate.
//!
//! Provides the subset of the API that `benches/microbench.rs` uses —
//! `Criterion::bench_function`, `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock timing harness.
//! Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window; the mean time per
//! iteration is printed to stdout. No statistics, plots, or baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How setup cost relates to routine cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; batch many iterations per setup.
    SmallInput,
    /// Setup output is large; batch few iterations per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark timing driver handed to the benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let window = Instant::now();
        while window.elapsed() < MEASURE_WINDOW && self.iters < MAX_ITERS {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let window = Instant::now();
        while window.elapsed() < MEASURE_WINDOW && self.iters < MAX_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let per = self.total.as_nanos() as f64 / self.iters as f64;
        let (val, unit) = if per >= 1e9 {
            (per / 1e9, "s")
        } else if per >= 1e6 {
            (per / 1e6, "ms")
        } else if per >= 1e3 {
            (per / 1e3, "µs")
        } else {
            (per, "ns")
        };
        println!("{name:<40} {val:>10.2} {unit}/iter  ({} iters)", self.iters);
    }
}

/// Top-level benchmark registry (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Runs and reports one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function(format!("fmt-{}", 1), |b| {
            b.iter_batched(|| vec![1, 2], |v| v.len(), BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
