//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! Unlike crossbeam, std distinguishes bounded (`SyncSender`) from
//! unbounded (`Sender`) sender types; the shim unifies them behind one
//! [`channel::Sender`] enum so call sites keep crossbeam's single-type
//! API.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer channels (mirrors `crossbeam::channel`).

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a channel (bounded or unbounded).
    #[derive(Debug)]
    pub enum Sender<T> {
        /// Unbounded sender: `send` never blocks.
        Unbounded(mpsc::Sender<T>),
        /// Bounded sender: `send` blocks while the buffer is full.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `t`, blocking on a full bounded channel. Errors only if
        /// the receiving half has disconnected.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(t),
                Sender::Bounded(s) => s.send(t),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn bounded_round_trip_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send("a").unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), "a");
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            ));
            drop(tx);
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            ));
        }
    }
}
