//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind `parking_lot`'s
//! poison-free API: `lock()` / `read()` / `write()` return guards
//! directly. A poisoned std lock is recovered transparently
//! (`PoisonError::into_inner`), matching `parking_lot`'s behavior of
//! not propagating panics through locks.

#![warn(missing_docs)]

use std::sync::{PoisonError, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `t`.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutably borrows the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_recovers_from_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
