//! Collection strategies (mirrors `proptest::collection`).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `elem` and whose length is
/// uniform in `size` (half-open, as real proptest's `0..n`).
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + runner.below(span) as usize;
        (0..len).map(|_| self.elem.new_value(runner)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with an entry count drawn from `size`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// Generates maps from `key`/`value` strategies; duplicate keys collapse,
/// so the final size may be below the drawn count (as in real proptest).
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    assert!(size.start < size.end, "empty size range");
    BTreeMapStrategy { key, value, size }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let n = self.size.start + runner.below(span) as usize;
        (0..n)
            .map(|_| (self.key.new_value(runner), self.value.new_value(runner)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProptestConfig, Strategy};

    #[test]
    fn vec_and_map_respect_sizes() {
        let mut r = TestRunner::new(&ProptestConfig::default(), "collection-tests");
        let vs = vec(0u8..10, 0..5);
        let ms = btree_map("[a-b]{1,2}", 0i64..4, 1..4);
        for _ in 0..100 {
            assert!(vs.new_value(&mut r).len() < 5);
            let m = ms.new_value(&mut r);
            assert!(m.len() <= 3);
            assert!(m.keys().all(|k| !k.is_empty()));
        }
    }
}
