//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps the same test-source syntax —
//! `proptest! { #[test] fn f(x in strategy) { .. } }`, `prop_oneof!`,
//! `prop_assert!` / `prop_assert_eq!`, `Strategy::prop_map` /
//! `prop_recursive`, `any::<T>()`, `proptest::collection::{vec,
//! btree_map}`, ranges, tuples, and `[a-z]{m,n}`-style string patterns —
//! and runs each property as a fixed number of seeded random cases.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case index so it can be replayed deterministically), and string
//! strategies support only single-character-class regexes of the form
//! `[a-z]{m,n}`.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// Declares property tests.
///
/// Accepts an optional leading `#![proptest_config(..)]` inner attribute
/// followed by one or more `#[test] fn name(pat in strategy, ..) { .. }`
/// items. Each function runs `config.cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(&config, stringify!($name));
                for case in 0..config.cases {
                    runner.begin_case(case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut runner);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Builds a strategy choosing uniformly among the given strategies
/// (all must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property-test assertion: fails the current case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Property-test equality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "{} ({:?} vs {:?})",
            format!($($fmt)*),
            lhs,
            rhs
        );
    }};
}

/// Property-test inequality assertion with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
}
