//! One-stop import for property tests (mirrors `proptest::prelude`).

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Nested module mirror so `prop::collection::..` paths also work.
pub mod prop {
    pub use crate::collection;
}
