//! Value-generation strategies (mirrors `proptest::strategy`).

use std::marker::PhantomData;
use std::sync::Arc;

use crate::test_runner::TestRunner;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an inner strategy into one producing branches.
    ///
    /// `depth` bounds the nesting; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility but the
    /// shim bounds only by depth.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            branch: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe strategy facade backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.dyn_new_value(runner)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Strategy produced by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    branch: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        // Geometric-ish depth choice: each extra level of nesting is half
        // as likely, capped at `depth`.
        let mut levels = 0;
        while levels < self.depth && runner.next_u64() & 1 == 1 {
            levels += 1;
        }
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.branch)(strat);
        }
        strat.new_value(runner)
    }
}

/// Strategy produced by [`crate::prop_oneof!`]: uniform choice among
/// equally typed strategies.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let idx = runner.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(runner)
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary_value(runner: &mut TestRunner) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary_value(runner)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// All bit patterns — including infinities and NaNs — as real
    /// proptest's `any::<f64>()` can produce.
    fn arbitrary_value(runner: &mut TestRunner) -> f64 {
        f64::from_bits(runner.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(runner: &mut TestRunner) -> f32 {
        f32::from_bits(runner.next_u64() as u32)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    runner.next_u64()
                } else {
                    runner.below(span as u64)
                };
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    runner.next_u64()
                } else {
                    runner.below(span as u64)
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// ---------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    /// Interprets the string as a regex of the restricted form
    /// `[a-z]{m,n}` (one character-class, one repetition). Panics on
    /// anything else — extend the parser if a test needs more.
    fn new_value(&self, runner: &mut TestRunner) -> String {
        let (classes, lo, hi) = parse_simple_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (shim supports [a-z]{{m,n}} only)")
        });
        let len = lo + runner.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                let idx = runner.below(classes.len() as u64) as usize;
                classes[idx]
            })
            .collect()
    }
}

/// Parses `[a-z]{m,n}` / `[a-z]{n}` into (alphabet, min_len, max_len).
fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProptestConfig;

    fn runner() -> TestRunner {
        TestRunner::new(&ProptestConfig::default(), "strategy-tests")
    }

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut r = runner();
        let s = (0u32..4, -2i64..5).prop_map(|(a, b)| i64::from(a) + b);
        for _ in 0..200 {
            let v = s.new_value(&mut r);
            assert!((-2..9).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = runner();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.new_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn string_pattern_respects_class_and_len() {
        let mut r = runner();
        let s = "[a-c]{1,4}";
        for _ in 0..200 {
            let v = Strategy::new_value(&s, &mut r);
            assert!((1..=4).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
        let exact = "[xy]{3}";
        let v = Strategy::new_value(&exact, &mut r);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = runner();
        for _ in 0..100 {
            let t = strat.new_value(&mut r);
            assert!(depth(&t) <= 5, "depth bound: {t:?}");
        }
    }
}
