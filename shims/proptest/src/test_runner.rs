//! Case runner and configuration (mirrors `proptest::test_runner`).

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the random cases of one property.
///
/// The stream is seeded from the property's name, so every property sees
/// a distinct but fully deterministic sequence of inputs: a failure at
/// "case k" reproduces exactly on re-run.
#[derive(Debug)]
pub struct TestRunner {
    rng: Xoshiro256pp,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Marks the start of case `case` (kept for replay bookkeeping).
    pub fn begin_case(&mut self, _case: u32) {}

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform draw from `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// xoshiro256++ (same algorithm as the workspace's `rand` shim).
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256pp {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
