//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This shim reimplements the small API surface the
//! workspace actually uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the [`Rng`] methods `gen_range` / `gen_bool` — on top of a
//! xoshiro256++ generator seeded through SplitMix64. Determinism is the
//! only contract the workspace relies on (simulations replay bit-for-bit
//! for a given seed); statistical quality of xoshiro256++ is more than
//! adequate for latency sampling and workload generation.
//!
//! Stream values differ from the real `rand` crate; nothing in the
//! workspace depends on a specific stream, only on seed-determinism.

#![warn(missing_docs)]

pub mod rngs;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports the `Range` / `RangeInclusive` forms over the integer and
    /// float types the workspace uses. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` by rejection, avoiding modulo bias.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = below(rng, span as u64);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v: u64 = r.gen_range(10..=20);
            assert!((10..=20).contains(&v));
            let v: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let v: usize = r.gen_range(0..3);
            assert!(v < 3);
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let f: f64 = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut r = StdRng::seed_from_u64(1);
        assert!(sample(&mut r) < 100);
        assert!(sample::<StdRng>(&mut r) < 100);
    }
}
