//! # guesstimate — facade crate
//!
//! A comprehensive Rust reproduction of **GUESSTIMATE: A Programming Model
//! for Collaborative Distributed Systems** (Rajan, Rajamani, Yaduvanshi,
//! PLDI 2010).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — shared objects, replayable operations, the operation
//!   registry, atomic/or-else execution.
//! * [`net`] — the simulated peer-to-peer mesh substrate (the stand-in for
//!   .NET PeerChannel): latency models, fault injection, virtual-time and
//!   threaded drivers.
//! * [`runtime`] — the GUESSTIMATE runtime: per-machine committed and
//!   guesstimated replicas, the 3-stage master–slave synchronization
//!   protocol, membership, fault recovery, and the paper's API surface.
//! * [`semantics`] — the formal operational semantics (rules R1/R2/R3) as an
//!   executable transition system, with invariant checking and bounded
//!   exploration.
//! * [`spec`] — specifications: pre/post contracts, object invariants,
//!   runtime conformance checking and a bounded-exhaustive assertion
//!   classifier (the Spec#/Boogie analog).
//! * [`apps`] — the paper's six collaborative applications: Sudoku, event
//!   planner, message board, car pool, auction, microblog.
//! * [`baselines`] — the consistency-model baselines the paper positions
//!   itself against: one-copy serializability and unsynchronized local
//!   replication.
//! * [`telemetry`] — operation-lifecycle observability: the metrics
//!   registry, per-op spans, guesstimate-health gauges, and the
//!   Prometheus/JSON/Chrome-trace exporters (`docs/OBSERVABILITY.md`).
//!
//! See `README.md` for a tour and `examples/` for runnable programs.

pub use guesstimate_apps as apps;
pub use guesstimate_baselines as baselines;
pub use guesstimate_core as core;
pub use guesstimate_net as net;
pub use guesstimate_runtime as runtime;
pub use guesstimate_semantics as semantics;
pub use guesstimate_spec as spec;
pub use guesstimate_telemetry as telemetry;

pub use guesstimate_core::{
    args, ArgView, CompletionFn, ExecOutcome, GState, MachineId, ObjectId, ObjectStore, OpId,
    OpRegistry, RestoreError, SharedOp, Value,
};
