//! §4 "Bounded re-executions": each operation executes at most three times
//! (issue, at most one replay while re-establishing `sg = [P](sc)`, commit)
//! — checked under dense schedules, many seeds, and varying cluster sizes.

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster_instrumented, Machine, MachineConfig};
use guesstimate::telemetry::Telemetry;
use guesstimate::{MachineId, OpRegistry};

fn run_dense_session(users: u32, seed: u64, latency_ms: u64) -> Vec<Machine> {
    run_dense_session_with(users, seed, latency_ms, Telemetry::noop())
}

fn run_dense_session_with(
    users: u32,
    seed: u64,
    latency_ms: u64,
    telemetry: Telemetry,
) -> Vec<Machine> {
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let mut net = sim_cluster_instrumented(
        users,
        registry,
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(120))
            .with_stall_timeout(SimTime::from_secs(2)),
        NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(latency_ms)),
        None,
        telemetry,
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(15)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));
    // Dense, jittered issue schedule: many ops land mid-round, earning the
    // third (replay) execution.
    for i in 0..users {
        for k in 0..50u64 {
            let jitter = (seed
                .wrapping_mul(2654435761)
                .wrapping_add(k * 97 + u64::from(i) * 13))
                % 53;
            net.schedule_call(
                net.now() + SimTime::from_millis(40 * k + jitter),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                        if let Some(&(r, c, v)) = moves.get((k % 7) as usize) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(20));
    (0..users)
        .map(|i| net.remove_machine(MachineId::new(i)).unwrap())
        .collect()
}

#[test]
fn ops_execute_at_most_three_times_across_seeds() {
    for seed in [1u64, 17, 23, 99] {
        let machines = run_dense_session(4, seed, 25);
        let mut twos = 0u64;
        let mut threes = 0u64;
        for m in &machines {
            let st = m.stats();
            assert!(
                st.max_exec_count <= 3,
                "seed {seed}, {}: executed {} times",
                m.id(),
                st.max_exec_count
            );
            assert_eq!(
                st.exec_histogram[0], 0,
                "no op commits with zero executions"
            );
            assert_eq!(
                st.exec_histogram[1], 0,
                "every op at least issues + commits"
            );
            twos += st.exec_histogram[2];
            threes += st.exec_histogram[3];
        }
        assert!(twos > 0, "seed {seed}: common case is two executions");
        assert!(
            threes > 0,
            "seed {seed}: dense schedule produces replayed (3x) ops"
        );
    }
}

#[test]
fn bound_holds_for_larger_clusters_and_slower_links() {
    let machines = run_dense_session(8, 5, 60);
    for m in &machines {
        assert!(m.stats().max_exec_count <= 3, "{}", m.id());
    }
    // And the aggregate histogram only has mass at 2 and 3.
    let mut total = [0u64; 8];
    for m in &machines {
        for (i, v) in m.stats().exec_histogram.iter().enumerate() {
            total[i] += v;
        }
    }
    assert_eq!(total[0] + total[1], 0);
    assert!(
        total[2] + total[3] > 100,
        "plenty of committed ops measured"
    );
    assert_eq!(total[4..].iter().sum::<u64>(), 0, "nothing beyond three");
}

/// The same bound, re-asserted through the telemetry layer: the
/// exec-count histogram a shared [`Telemetry`] handle accumulates across
/// the whole cluster must have zero mass above bucket 3, and its span
/// tally must agree with the runtime's own commit statistics.
#[test]
fn bound_reasserted_through_telemetry_histograms() {
    let telemetry = Telemetry::new();
    let machines = run_dense_session_with(4, 17, 25, telemetry.clone());

    assert!(
        telemetry.max_exec_count() <= 3,
        "telemetry saw an op execute {} times",
        telemetry.max_exec_count()
    );
    assert_eq!(
        telemetry.exec_count_above(3),
        0,
        "exec-count histogram must have zero mass above bucket 3"
    );

    let committed: u64 = machines.iter().map(|m| m.stats().committed_own).sum();
    assert!(committed > 0, "dense schedule commits ops");
    assert_eq!(
        telemetry.ops_committed(),
        committed,
        "one span commit per runtime commit"
    );
    assert_eq!(
        telemetry.commit_lag_count(),
        committed,
        "one commit-lag sample per commit"
    );
}
