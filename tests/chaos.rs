//! Chaos soak: every fault mode at once — background loss and duplication,
//! stalls, a partition, a permanent crash of a non-master, membership churn
//! and a master failover — under continuous load. The survivors must end
//! identical, drained, and invariant-clean.

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{FaultPlan, LatencyModel, NetConfig, PartitionWindow, SimTime, StallWindow};
use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

#[test]
fn everything_at_once_soak() {
    let n = 6u32;
    let faults = FaultPlan::new()
        .with_drop_prob(0.01)
        .with_dup_prob(0.01)
        // m2 stalls mid-run.
        .with_stall(StallWindow::new(
            MachineId::new(2),
            SimTime::from_secs(20),
            SimTime::from_secs(26),
        ))
        // m4+m5 get partitioned away for a while.
        .with_partition(PartitionWindow::new(
            vec![MachineId::new(4), MachineId::new(5)],
            SimTime::from_secs(35),
            SimTime::from_secs(45),
        ))
        // m3 dies for good.
        .with_crash(MachineId::new(3), SimTime::from_secs(55));
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let mut net = sim_cluster(
        n,
        registry.clone(),
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(150))
            .with_stall_timeout(SimTime::from_millis(900))
            .with_join_retry(SimTime::from_millis(500))
            .with_paranoid_checks(true),
        NetConfig::lan(4242)
            .with_latency(LatencyModel::lan_ms(20))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    // Several boards so activity never dries up.
    let boards: Vec<_> = {
        let master = net.actor_mut(MachineId::new(0)).unwrap();
        (0..4)
            .map(|_| master.create_instance(sudoku::example_puzzle()))
            .collect()
    };
    net.run_until(SimTime::from_secs(12));

    // Continuous activity on every machine for 70 seconds.
    for i in 0..n {
        for k in 0..230u64 {
            let b = boards[((k + u64::from(i)) % 4) as usize];
            net.schedule_call(
                SimTime::from_secs(12) + SimTime::from_millis(300 * k + 29 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(b, |s| s.candidate_moves()) {
                        if let Some(&(r, c, v)) = moves.get(((k * 7 + 3) % 11) as usize) {
                            let _ = m.issue(sudoku::ops::update(b, r, c, v));
                        }
                    }
                },
            );
        }
    }
    // A late joiner arrives mid-chaos.
    net.schedule_join(
        SimTime::from_secs(30),
        MachineId::new(6),
        Machine::new_member(
            MachineId::new(6),
            std::sync::Arc::new(registry),
            MachineConfig::default()
                .with_sync_period(SimTime::from_millis(150))
                .with_stall_timeout(SimTime::from_millis(900))
                .with_join_retry(SimTime::from_millis(500))
                .with_paranoid_checks(true),
        ),
    );

    // Long quiet tail so every recovery path finishes.
    net.run_until(SimTime::from_secs(120));

    // m3 crashed; everyone else should be alive and in the cohort.
    assert!(net.actor(MachineId::new(3)).is_none());
    let alive: Vec<u32> = [0u32, 1, 2, 4, 5, 6]
        .into_iter()
        .filter(|&i| {
            net.actor(MachineId::new(i))
                .map(Machine::in_cohort)
                .unwrap_or(false)
        })
        .collect();
    assert!(
        alive.len() >= 5,
        "almost everyone recovered into the cohort: {alive:?}"
    );
    let digests: Vec<u64> = alive
        .iter()
        .map(|&i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "survivors agree: {digests:?}"
    );
    for &i in &alive {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert_eq!(m.pending_len(), 0, "m{i} drained");
        assert!(m.check_guess_invariant(), "m{i}: [P](sc) = sg");
        assert!(m.stats().max_exec_count <= 3, "m{i}: bounded re-execution");
    }
    // The chaos actually happened.
    let master_stats = net.actor(MachineId::new(0)).unwrap().stats();
    let removals: u64 = master_stats.sync_samples.iter().map(|s| s.removals).sum();
    let resends: u64 = master_stats.sync_samples.iter().map(|s| s.resends).sum();
    assert!(removals >= 2, "stall + partition evictions: {removals}");
    assert!(resends >= 2, "loss-driven resends: {resends}");
    assert!(net.metrics().dropped > 50);
    assert!(net.metrics().duplicated > 10);
    // And real work committed throughout.
    let committed: u64 = alive
        .iter()
        .map(|&i| net.actor(MachineId::new(i)).unwrap().stats().committed_own)
        .sum();
    assert!(
        committed > 150,
        "substantial committed workload: {committed}"
    );
}
