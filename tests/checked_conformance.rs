//! Distributed conformance: run every application through the *checked*
//! registry (the Spec# runtime-check analog) on a live cluster. Every
//! execution — at issue on the guesstimated state, at replay, and at commit
//! on every machine — is verified against the contracts; a single frame,
//! postcondition or invariant violation anywhere in the distributed system
//! would land in the shared log.

use guesstimate::apps::{self, auction, carpool, event_planner, microblog, sudoku};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig};
use guesstimate::spec::ConformanceLog;
use guesstimate::{MachineId, OpRegistry};

#[test]
fn no_conformance_violations_across_a_distributed_session() {
    let log = ConformanceLog::new();
    let mut registry = OpRegistry::new();
    apps::register_all_checked(&mut registry, &log);
    let n = 4u32;
    let mut net = sim_cluster(
        n,
        registry,
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_secs(1)),
        NetConfig::lan(17).with_latency(LatencyModel::lan_ms(15)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    let (board, planner, pool, house, blog) = {
        let m = net.actor_mut(MachineId::new(0)).unwrap();
        (
            m.create_instance(sudoku::example_puzzle()),
            m.create_instance(event_planner::EventPlanner::with_quota(2)),
            m.create_instance(carpool::CarPool::new()),
            m.create_instance(auction::Auction::new()),
            m.create_instance(microblog::MicroBlog::new()),
        )
    };
    net.run_until(net.now() + SimTime::from_secs(2));
    net.call(MachineId::new(0), |m, _| {
        m.issue(event_planner::ops::create_event(planner, "party", 2))
            .unwrap();
        m.issue(carpool::ops::add_vehicle(pool, "van", 2, "party"))
            .unwrap();
        m.issue(auction::ops::list_item(house, "lamp", "seller", 10, 5))
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));

    // Heavy mixed activity from all machines, including operations that
    // are *meant* to fail (capacity races, low bids, duplicate usernames).
    let users = ["ann", "bob", "cid", "dee"];
    for round in 0..25u64 {
        for (i, user) in users.iter().enumerate() {
            let uid = MachineId::new(i as u32);
            let user = user.to_string();
            net.schedule_call(
                net.now() + SimTime::from_millis(160 * round + 23 * i as u64),
                uid,
                move |m: &mut Machine, _| match round % 5 {
                    0 => {
                        let _ = m.issue(event_planner::ops::register_user(planner, &user, "pw"));
                        let _ = m.issue(microblog::ops::register(blog, &user));
                    }
                    1 => {
                        let _ = m.issue(event_planner::ops::join(planner, &user, "party"));
                        let _ = m.issue(carpool::ops::board(pool, &user, "van"));
                    }
                    2 => {
                        let _ = m.issue(auction::ops::bid(house, "lamp", &user, 10 + round as i64));
                        let _ = m.issue(microblog::ops::post(blog, &user, "hi"));
                    }
                    3 => {
                        if let Some(moves) =
                            m.read::<sudoku::Sudoku, _>(board, |s| s.candidate_moves())
                        {
                            if let Some(&(r, c, v)) = moves.get((round % 3) as usize) {
                                let _ = m.issue(sudoku::ops::update(board, r, c, v));
                            }
                        }
                    }
                    _ => {
                        let _ = m.issue(event_planner::ops::leave(planner, &user, "party"));
                        let _ = m.issue(carpool::ops::disembark(pool, &user, "van"));
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(15));

    // Converged, drained, and — the point — zero contract violations
    // anywhere, despite thousands of checked executions across 4 machines.
    let digests: Vec<u64> = (0..n)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    let committed: u64 = (0..n)
        .map(|i| net.actor(MachineId::new(i)).unwrap().stats().committed_own)
        .sum();
    assert!(
        committed > 100,
        "substantial committed workload: {committed}"
    );
    assert!(
        log.is_empty(),
        "conformance violations: {:?}",
        log.violations()
    );
}

#[test]
fn a_buggy_operation_is_caught_in_flight() {
    // Register a deliberately broken Sudoku update (the paper's off-by-one)
    // on every machine; the runtime checks catch it during a live run, on
    // whichever machine first executes the violating case.
    use guesstimate::core::GState;
    use guesstimate::spec::MethodContract;

    let log = ConformanceLog::new();
    let mut registry = OpRegistry::new();
    registry.register_type::<sudoku::Sudoku>();
    let contract = MethodContract::new().with_invariant(|snap| {
        // Reuse the app's invariant through a fresh board restore.
        let mut s = sudoku::Sudoku::new();
        GState::restore(&mut s, snap)
            .map(|_| s.valid())
            .unwrap_or(false)
    });
    guesstimate::spec::register_checked::<sudoku::Sudoku>(
        &mut registry,
        "update",
        contract,
        &log,
        |s, a| {
            let (Some(r), Some(c), Some(v)) = (a.i64(0), a.i64(1), a.i64(2)) else {
                return false;
            };
            if !(1..=9).contains(&r) || !(1..=9).contains(&c) || !(1..=9).contains(&v) {
                return false;
            }
            // BUG: no constraint checking at all.
            s.set_cell_unchecked(r as u8, c as u8, v as u8);
            true
        },
    );
    let mut net = sim_cluster(
        2,
        registry,
        MachineConfig::default().with_sync_period(SimTime::from_millis(100)),
        NetConfig::lan(19).with_latency(LatencyModel::constant_ms(10)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::Sudoku::new());
    net.run_until(net.now() + SimTime::from_secs(1));
    net.call(MachineId::new(1), |m, _| {
        m.issue(sudoku::ops::update(board, 1, 1, 5)).unwrap();
        m.issue(sudoku::ops::update(board, 1, 2, 5)).unwrap(); // violates row
    });
    net.run_until(net.now() + SimTime::from_secs(2));
    assert!(
        !log.is_empty(),
        "the runtime checks caught the unchecked duplicate"
    );
}
