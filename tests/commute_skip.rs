//! Commute-aware replay skipping is observationally invisible.
//!
//! `MachineConfig::commute_skip` elides the `sg = [P](sc)` rebuild when a
//! round's foreign commits provably commute with every pending local
//! operation (see `docs/ANALYSIS.md`). These tests run the *same* seeded
//! workload with the optimization off and on and require:
//!
//! 1. byte-identical committed histories (agreement on `C` is unchanged);
//! 2. identical final committed **and** guesstimated snapshots per machine;
//! 3. the optimized run actually skipped replays (the workload commutes
//!    often enough to exercise the fast path);
//!
//! and repeat the comparison under a chaos schedule (message loss), where
//! recovery resends and restarts interleave with the skip judgment.

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{FaultPlan, LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig, WireEnvelope};
use guesstimate::{MachineId, OpRegistry};

fn registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    sudoku::register(&mut r);
    r
}

/// Everything observable we compare between runs.
struct Outcome {
    histories: Vec<Vec<WireEnvelope>>,
    committed_digests: Vec<u64>,
    guess_digests: Vec<u64>,
    replays_skipped: u64,
    restarts: u64,
}

/// Runs one seeded 4-machine, 2-board Sudoku session and collects its
/// observables.
///
/// Machines split across the two grids (operations on different objects
/// commute trivially) and use per-machine candidate indices on their own
/// grid (same-object operations usually commute by cell-disjoint
/// footprints), so the skip judgment fires often — while same-cell and
/// same-row/col/box pairs still force full rebuilds now and then.
fn run_workload(commute_skip: bool, faults: FaultPlan, seed: u64) -> Outcome {
    let n = 4u32;
    let mut net = sim_cluster(
        n,
        registry(),
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(800))
            .with_record_history(true)
            .with_commute_skip(commute_skip),
        NetConfig::lan(seed)
            .with_latency(LatencyModel::lan_ms(20))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(20)));
    let boards: Vec<_> = {
        let master = net.actor_mut(MachineId::new(0)).unwrap();
        (0..2)
            .map(|_| master.create_instance(sudoku::example_puzzle()))
            .collect()
    };
    net.run_until(net.now() + SimTime::from_secs(1));
    for i in 0..n {
        let board = boards[(i % 2) as usize];
        for k in 0..40u64 {
            net.schedule_call(
                net.now() + SimTime::from_millis(60 * k + 17 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                        let idx = ((k + 5 * u64::from(i)) % 11) as usize;
                        if let Some(&(r, c, v)) = moves.get(idx) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(20));

    let machines: Vec<&Machine> = (0..n)
        .map(|i| net.actor(MachineId::new(i)).unwrap())
        .collect();
    Outcome {
        histories: machines.iter().map(|m| m.history().to_vec()).collect(),
        committed_digests: machines.iter().map(|m| m.committed_digest()).collect(),
        guess_digests: machines.iter().map(|m| m.guess_digest()).collect(),
        replays_skipped: machines.iter().map(|m| m.stats().replays_skipped).sum(),
        restarts: machines.iter().map(|m| m.stats().restarts).sum(),
    }
}

fn assert_equivalent(off: &Outcome, on: &Outcome) {
    assert_eq!(
        off.histories, on.histories,
        "committed histories must be byte-identical with skipping on and off"
    );
    assert_eq!(
        off.committed_digests, on.committed_digests,
        "final committed snapshots must match"
    );
    assert_eq!(
        off.guess_digests, on.guess_digests,
        "final guesstimated snapshots must match"
    );
}

#[test]
fn skipping_preserves_history_and_snapshots() {
    let off = run_workload(false, FaultPlan::new(), 23);
    let on = run_workload(true, FaultPlan::new(), 23);
    assert_eq!(off.replays_skipped, 0, "skipping is off by default");
    assert!(
        on.replays_skipped > 0,
        "the commuting workload must exercise the skip path"
    );
    assert!(
        off.histories[0].len() > 40,
        "substantial history recorded ({} ops)",
        off.histories[0].len()
    );
    assert_equivalent(&off, &on);
}

#[test]
fn skipping_preserves_history_under_message_loss() {
    let chaos = || FaultPlan::new().with_drop_prob(0.01);
    let off = run_workload(false, chaos(), 31);
    let on = run_workload(true, chaos(), 31);
    // The fault schedule is seed-deterministic and skipping is local to the
    // `sg` rebuild, so even recovery (resends, removals, restarts) unfolds
    // identically in both runs.
    assert_eq!(
        off.restarts, on.restarts,
        "recovery must unfold identically"
    );
    assert_equivalent(&off, &on);
    assert!(
        on.replays_skipped > 0,
        "skips must still happen under chaos"
    );
}
