//! End-to-end convergence: all six applications running together on one
//! GUESSTIMATE cluster, with the §3 invariants checked mid-flight.

use guesstimate::apps;
use guesstimate::apps::{auction, carpool, event_planner, message_board, microblog, sudoku};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig};
use guesstimate::{MachineId, ObjectId, OpRegistry};

fn cluster(n: u32, seed: u64) -> guesstimate::net::SimNet<Machine> {
    let mut registry = OpRegistry::new();
    apps::register_all(&mut registry);
    sim_cluster(
        n,
        registry,
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(800))
            // Debug-assert sg = [P](sc) after every protocol callback on
            // every machine, replacing ad-hoc mid-run polling.
            .with_paranoid_checks(true),
        NetConfig::lan(seed).with_latency(LatencyModel::constant_ms(10)),
    )
}

fn assert_all_converged(net: &guesstimate::net::SimNet<Machine>, n: u32) {
    let digests: Vec<u64> = (0..n)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "committed replicas diverged: {digests:?}"
    );
    for i in 0..n {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert_eq!(m.pending_len(), 0, "m{i} has pending ops at quiescence");
        assert_eq!(m.guess_digest(), m.committed_digest(), "m{i}: sg != sc");
        assert!(m.check_guess_invariant(), "m{i}: [P](sc) != sg");
    }
}

#[test]
fn all_six_apps_converge_on_one_cluster() {
    let n = 5;
    let mut net = cluster(n, 1);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    // Machine 0 creates one object per application.
    let (board, planner, mboard, pool, house, blog) = {
        let m = net.actor_mut(MachineId::new(0)).unwrap();
        (
            m.create_instance(sudoku::example_puzzle()),
            m.create_instance(event_planner::EventPlanner::with_quota(2)),
            m.create_instance(message_board::MessageBoard::new()),
            m.create_instance(carpool::CarPool::new()),
            m.create_instance(auction::Auction::new()),
            m.create_instance(microblog::MicroBlog::new()),
        )
    };
    net.run_until(net.now() + SimTime::from_secs(2));

    // Every machine sees all six objects with the right types.
    for i in 0..n {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert_eq!(m.available_objects().len(), 6, "m{i} catalog");
        assert_eq!(m.object_type(board), Some("Sudoku"));
        assert_eq!(m.object_type(blog), Some("MicroBlog"));
    }

    // Interleave activity on all apps from different machines.
    let users = ["ann", "bob", "cid", "dee", "eve"];
    for (i, user) in users.iter().enumerate() {
        let uid = MachineId::new(i as u32);
        let user = user.to_string();
        net.schedule_call(
            net.now() + SimTime::from_millis(100 * i as u64),
            uid,
            move |m: &mut Machine, _| {
                m.issue(event_planner::ops::register_user(planner, &user, "pw"))
                    .unwrap();
                m.issue(microblog::ops::register(blog, &user)).unwrap();
            },
        );
    }
    net.run_until(net.now() + SimTime::from_secs(2));
    net.call(MachineId::new(0), |m, _| {
        m.issue(event_planner::ops::create_event(planner, "party", 3))
            .unwrap();
        m.issue(message_board::ops::create_topic(mboard, "general"))
            .unwrap();
        m.issue(carpool::ops::add_vehicle(pool, "van", 3, "party"))
            .unwrap();
        m.issue(auction::ops::list_item(house, "lamp", "ann", 10, 5))
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));

    for (i, user) in users.iter().enumerate() {
        let uid = MachineId::new(i as u32);
        let user = user.to_string();
        net.schedule_call(
            net.now() + SimTime::from_millis(50 * i as u64),
            uid,
            move |m: &mut Machine, _| {
                let _ = m.issue(event_planner::ops::join(planner, &user, "party"));
                let _ = m.issue(message_board::ops::post(mboard, "general", &user, "hello"));
                let _ = m.issue(carpool::ops::board(pool, &user, "van"));
                if user != "ann" {
                    let _ = m.issue(auction::ops::bid(house, "lamp", &user, 10 + 5 * i as i64));
                }
                let _ = m.issue(microblog::ops::post(blog, &user, "posted!"));
            },
        );
    }
    net.run_until(net.now() + SimTime::from_secs(5));
    assert_all_converged(&net, n);

    // Cross-app assertions on the converged state.
    let m0 = net.actor(MachineId::new(0)).unwrap();
    m0.read::<event_planner::EventPlanner, _>(planner, |p| {
        assert_eq!(
            3 - p.vacancies("party").unwrap(),
            3,
            "exactly capacity-many party joins committed"
        );
    })
    .unwrap();
    m0.read::<message_board::MessageBoard, _>(mboard, |b| {
        assert_eq!(b.posts("general").unwrap().len(), 5, "all posts kept");
    })
    .unwrap();
    m0.read::<carpool::CarPool, _>(pool, |p| {
        assert_eq!(p.free_seats("van"), Some(0), "van filled to capacity");
    })
    .unwrap();
    m0.read::<auction::Auction, _>(house, |a| {
        let best = a.best_bid("lamp").unwrap();
        assert_eq!(best.1, 30, "highest valid bid stands");
    })
    .unwrap();
    m0.read::<microblog::MicroBlog, _>(blog, |b| {
        assert_eq!(b.posts().len(), 5);
        assert_eq!(b.user_count(), 5);
    })
    .unwrap();
}

#[test]
fn guess_invariant_holds_throughout_a_run() {
    let n = 4;
    let mut net = cluster(n, 3);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));

    // Issue moves and check the invariant at many interleaved points.
    for k in 0..120u64 {
        let who = MachineId::new((k % n as u64) as u32);
        net.schedule_call(
            net.now() + SimTime::from_millis(37 * k),
            who,
            move |m: &mut Machine, _| {
                if let Some(moves) = m.read::<sudoku::Sudoku, _>(board, |s| s.candidate_moves()) {
                    if let Some(&(r, c, v)) = moves.get((k % 11) as usize) {
                        let _ = m.issue(sudoku::ops::update(board, r, c, v));
                    }
                }
                assert!(m.check_guess_invariant(), "[P](sc) != sg mid-run");
            },
        );
    }
    // Per-step invariant checking is handled by `paranoid_checks` in the
    // cluster config: every protocol callback on every machine
    // debug-asserts sg = [P](sc), which subsumes the old 250ms polling
    // loop this test used to run.
    net.run_until(net.now() + SimTime::from_secs(10));
    assert_all_converged(&net, n);
}

#[test]
fn late_joiners_and_leavers_interleave_safely() {
    let mut net = cluster(2, 7);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let blog = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(microblog::MicroBlog::new());
    net.call(MachineId::new(0), |m, _| {
        m.issue(microblog::ops::register(blog, "ann")).unwrap();
        m.issue(microblog::ops::post(blog, "ann", "first")).unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));

    // Machines 2 and 3 join late, with their own registries.
    for i in 2..4u32 {
        let mut registry = OpRegistry::new();
        apps::register_all(&mut registry);
        net.schedule_join(
            net.now() + SimTime::from_millis(500 * u64::from(i)),
            MachineId::new(i),
            Machine::new_member(
                MachineId::new(i),
                std::sync::Arc::new(registry),
                MachineConfig::default()
                    .with_sync_period(SimTime::from_millis(100))
                    .with_stall_timeout(SimTime::from_millis(800)),
            ),
        );
    }
    net.run_until(net.now() + SimTime::from_secs(5));
    // Late joiners see the pre-join post and can extend the state.
    for i in 2..4u32 {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert!(m.in_cohort(), "m{i} joined");
        assert_eq!(
            m.read::<microblog::MicroBlog, _>(blog, |b| b.posts().len()),
            Some(1)
        );
    }
    net.call(MachineId::new(3), |m, _| {
        m.issue(microblog::ops::register(blog, "dee")).unwrap();
        m.issue(microblog::ops::post(blog, "dee", "late but here"))
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));

    // Machine 1 leaves gracefully; the rest keep converging.
    net.call(MachineId::new(1), |m, ctx| m.leave(ctx));
    net.call(MachineId::new(2), |m, _| {
        m.issue(microblog::ops::register(blog, "cid")).unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(3));

    let remaining = [0u32, 2, 3];
    let digests: Vec<u64> = remaining
        .iter()
        .map(|&i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    let m0 = net.actor(MachineId::new(0)).unwrap();
    m0.read::<microblog::MicroBlog, _>(blog, |b| {
        assert_eq!(b.user_count(), 3);
        assert_eq!(b.posts().len(), 2);
    })
    .unwrap();
}

#[test]
fn object_ids_resolve_by_string_form() {
    // AvailableObjects/GetUniqueID round trip through the display form.
    let mut net = cluster(2, 9);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(2));
    let unique_id = board.to_string();
    let parsed = ObjectId::parse(&unique_id).expect("canonical form");
    assert_eq!(parsed, board);
    let m1 = net.actor(MachineId::new(1)).unwrap();
    assert_eq!(m1.join_instance(parsed), Some("Sudoku"));
}

#[test]
fn sixteen_machine_cluster_converges_under_load() {
    // Scale check beyond the paper's 8 users: the serial protocol still
    // converges (just with longer rounds — the Figure 6 trend).
    let n = 16;
    let mut net = cluster(n, 77);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(20)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(2));
    for i in 0..n {
        for k in 0..6u64 {
            net.schedule_call(
                net.now() + SimTime::from_millis(450 * k + 20 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<sudoku::Sudoku, _>(board, |s| s.candidate_moves())
                    {
                        if let Some(&(r, c, v)) = moves.get((k % 5) as usize) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(15));
    assert_all_converged(&net, n);
    // Round duration reflects 16 serial flush turns.
    let samples = &net.actor(MachineId::new(0)).unwrap().stats().sync_samples;
    let full_rounds: Vec<_> = samples.iter().filter(|s| s.participants == 16).collect();
    assert!(!full_rounds.is_empty(), "full-cohort rounds happened");
    for s in &full_rounds {
        assert!(
            s.duration >= SimTime::from_millis(150),
            "16 serial turns at 10ms latency each: {s:?}"
        );
    }
    let st = net.actor(MachineId::new(5)).unwrap().stats();
    assert!(st.max_exec_count <= 3);
}
