//! Reproducibility: the claim EXPERIMENTS.md rests on — identical seeds
//! produce bit-identical runs (states, stats, transport counters), and
//! different seeds genuinely differ.

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{FaultPlan, LatencyModel, NetConfig, NetMetrics, SimTime, StallWindow};
use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

struct RunSummary {
    final_digest: u64,
    completed: usize,
    conflicts: u64,
    syncs: u64,
    restarts: u64,
    metrics: NetMetrics,
    sync_durations: Vec<u64>,
}

fn run(seed: u64) -> RunSummary {
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let faults = FaultPlan::new()
        .with_drop_prob(0.01)
        .with_stall(StallWindow::new(
            MachineId::new(2),
            SimTime::from_secs(10),
            SimTime::from_secs(13),
        ));
    let mut net = sim_cluster(
        4,
        registry,
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(150))
            .with_stall_timeout(SimTime::from_millis(900)),
        NetConfig::lan(seed)
            .with_latency(LatencyModel::lan_ms(20))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(8)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));
    for i in 0..4u32 {
        for k in 0..25u64 {
            net.schedule_call(
                SimTime::from_secs(9) + SimTime::from_millis(120 * k + 17 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                        if let Some(&(r, c, v)) = moves.get(((k + u64::from(i)) % 6) as usize) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
    net.run_until(SimTime::from_secs(40));
    let master = net.actor(MachineId::new(0)).unwrap();
    RunSummary {
        final_digest: master.committed_digest(),
        completed: master.completed_len(),
        conflicts: (0..4)
            .filter_map(|i| net.actor(MachineId::new(i)))
            .map(|m| m.stats().conflicts)
            .sum(),
        syncs: master.stats().syncs_seen,
        restarts: (0..4)
            .filter_map(|i| net.actor(MachineId::new(i)))
            .map(|m| m.stats().restarts)
            .sum(),
        metrics: net.metrics(),
        sync_durations: master
            .stats()
            .sync_samples
            .iter()
            .map(|s| s.duration.as_micros())
            .collect(),
    }
}

#[test]
fn identical_seeds_reproduce_runs_bit_for_bit() {
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a.final_digest, b.final_digest);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.conflicts, b.conflicts);
    assert_eq!(a.syncs, b.syncs);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.metrics, b.metrics, "every message delivery identical");
    assert_eq!(
        a.sync_durations, b.sync_durations,
        "every round duration identical"
    );
}

#[test]
fn different_seeds_produce_different_histories() {
    let a = run(1234);
    let b = run(5678);
    // Latency samples and drop coin-flips differ, so the transport history
    // cannot coincide (state digests might, if workloads commit the same
    // moves — the transport-level counters are the discriminating check).
    assert_ne!(a.sync_durations, b.sync_durations);
    assert_ne!(a.metrics, b.metrics);
}
