//! §9 "Limitations and Future Work" extensions, implemented and tested:
//! off-line updates, remote-update callbacks, and master failover.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{FaultPlan, LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

fn registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    sudoku::register(&mut r);
    r
}

fn base_cfg() -> MachineConfig {
    MachineConfig::default()
        .with_sync_period(SimTime::from_millis(120))
        .with_stall_timeout(SimTime::from_millis(700))
        .with_join_retry(SimTime::from_millis(400))
}

// ---------------------------------------------------------------------
// Off-line updates
// ---------------------------------------------------------------------

#[test]
fn offline_issues_commit_after_rejoining() {
    let mut net = sim_cluster(
        3,
        registry(),
        base_cfg(),
        NetConfig::lan(5).with_latency(LatencyModel::constant_ms(10)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));

    // Machine 2 goes offline, keeps working against its frozen guesstimate.
    net.call(MachineId::new(2), |m, ctx| m.go_offline(ctx));
    net.run_until(net.now() + SimTime::from_secs(1));
    assert_eq!(net.actor(MachineId::new(0)).unwrap().members().len(), 2);

    let offline_move = {
        let m = net.actor_mut(MachineId::new(2)).unwrap();
        let mv = m
            .read::<Sudoku, _>(board, |s| s.candidate_moves()[0])
            .unwrap();
        assert!(m
            .issue(sudoku::ops::update(board, mv.0, mv.1, mv.2))
            .unwrap());
        assert_eq!(m.pending_len(), 1, "op parked on the offline pending list");
        mv
    };
    // Meanwhile the online machines keep committing.
    net.call(MachineId::new(1), |m, _| {
        let mv = m
            .read::<Sudoku, _>(board, |s| s.candidate_moves()[7])
            .unwrap();
        assert!(m
            .issue(sudoku::ops::update(board, mv.0, mv.1, mv.2))
            .unwrap());
    });
    net.run_until(net.now() + SimTime::from_secs(2));
    // The offline machine hasn't seen machine 1's committed move.
    assert_ne!(
        net.actor(MachineId::new(2)).unwrap().committed_digest(),
        net.actor(MachineId::new(0)).unwrap().committed_digest()
    );

    // Rejoin: the offline op is preserved, replayed, and committed.
    net.call(MachineId::new(2), |m, ctx| m.come_online(ctx));
    net.run_until(net.now() + SimTime::from_secs(4));
    let digests: Vec<u64> = (0..3)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "converged after rejoin"
    );
    let m0 = net.actor(MachineId::new(0)).unwrap();
    assert_eq!(
        m0.read::<Sudoku, _>(board, |s| s.cell(offline_move.0, offline_move.1)),
        Some(Some(offline_move.2)),
        "the offline move committed globally"
    );
    assert_eq!(net.actor(MachineId::new(2)).unwrap().pending_len(), 0);
}

#[test]
fn conflicting_offline_work_is_reported_not_silently_lost() {
    use std::sync::atomic::AtomicI32;
    let mut net = sim_cluster(
        2,
        registry(),
        base_cfg(),
        NetConfig::lan(7).with_latency(LatencyModel::constant_ms(10)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::Sudoku::new());
    net.run_until(net.now() + SimTime::from_secs(1));

    net.call(MachineId::new(1), |m, ctx| m.go_offline(ctx));
    // Offline machine pencils 5 into (1,1); online machine commits 5 at
    // (1,2) — same row, so the offline move must conflict at commit time.
    let seen = Arc::new(AtomicI32::new(-1));
    let s = seen.clone();
    net.call(MachineId::new(1), move |m, _| {
        assert!(m
            .issue_with_completion(
                sudoku::ops::update(board, 1, 1, 5),
                Box::new(move |ok| s.store(ok as i32, Ordering::SeqCst)),
            )
            .unwrap());
    });
    net.call(MachineId::new(0), |m, _| {
        assert!(m.issue(sudoku::ops::update(board, 1, 2, 5)).unwrap());
    });
    net.run_until(net.now() + SimTime::from_secs(2));
    net.call(MachineId::new(1), |m, ctx| m.come_online(ctx));
    net.run_until(net.now() + SimTime::from_secs(4));

    assert_eq!(
        seen.load(Ordering::SeqCst),
        0,
        "the completion reported the offline conflict"
    );
    assert_eq!(net.actor(MachineId::new(1)).unwrap().stats().conflicts, 1);
    let m0 = net.actor(MachineId::new(0)).unwrap();
    assert_eq!(m0.read::<Sudoku, _>(board, |s| s.cell(1, 1)), Some(Some(0)));
    assert_eq!(m0.read::<Sudoku, _>(board, |s| s.cell(1, 2)), Some(Some(5)));
}

// ---------------------------------------------------------------------
// Remote-update callbacks
// ---------------------------------------------------------------------

#[test]
fn remote_update_hooks_fire_for_foreign_commits_only() {
    let mut net = sim_cluster(
        2,
        registry(),
        base_cfg(),
        NetConfig::lan(9).with_latency(LatencyModel::constant_ms(10)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());

    let remote_events = Arc::new(AtomicUsize::new(0));
    let e = remote_events.clone();
    net.actor_mut(MachineId::new(0))
        .unwrap()
        .on_remote_update(Box::new(move |obj| {
            assert_eq!(obj, board);
            e.fetch_add(1, Ordering::SeqCst);
        }));
    net.run_until(net.now() + SimTime::from_secs(1));
    // Machine 0's OWN move must not fire its hook (completions cover that).
    net.call(MachineId::new(0), |m, _| {
        let mv = m
            .read::<Sudoku, _>(board, |s| s.candidate_moves()[0])
            .unwrap();
        m.issue(sudoku::ops::update(board, mv.0, mv.1, mv.2))
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));
    assert_eq!(
        remote_events.load(Ordering::SeqCst),
        0,
        "own ops don't fire"
    );

    // A move from machine 1 does fire machine 0's hook.
    net.call(MachineId::new(1), |m, _| {
        let mv = m
            .read::<Sudoku, _>(board, |s| s.candidate_moves()[3])
            .unwrap();
        m.issue(sudoku::ops::update(board, mv.0, mv.1, mv.2))
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));
    assert_eq!(
        remote_events.load(Ordering::SeqCst),
        1,
        "foreign op fires once"
    );
}

// ---------------------------------------------------------------------
// Master failover
// ---------------------------------------------------------------------

#[test]
fn surviving_members_elect_a_new_master_after_a_crash() {
    let failover = SimTime::from_secs(3);
    let cfg = base_cfg().with_master_failover(failover);
    let faults = FaultPlan::new().with_crash(MachineId::new(0), SimTime::from_secs(8));
    let mut net = sim_cluster(
        4,
        registry(),
        cfg,
        NetConfig::lan(11)
            .with_latency(LatencyModel::constant_ms(10))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(SimTime::from_secs(7));
    let committed_before = net.actor(MachineId::new(1)).unwrap().completed_len();

    // Master crashes at t=8s; survivors should elect and resume.
    net.run_until(SimTime::from_secs(25));
    let masters: Vec<u32> = (1..4)
        .filter(|&i| net.actor(MachineId::new(i)).unwrap().is_master())
        .collect();
    assert_eq!(masters.len(), 1, "exactly one new master: {masters:?}");
    let new_master = MachineId::new(masters[0]);
    assert_eq!(
        net.actor(new_master).unwrap().stats().promotions,
        1,
        "promotion recorded"
    );

    // The survivors form a working system again: new ops commit everywhere.
    net.call(MachineId::new(3), |m, _| {
        if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
            let (r, c, v) = moves[0];
            assert!(m.issue(sudoku::ops::update(board, r, c, v)).unwrap());
        }
    });
    net.run_until(SimTime::from_secs(35));
    let survivors: Vec<u32> = (1..4)
        .filter(|&i| net.actor(MachineId::new(i)).unwrap().in_cohort())
        .collect();
    assert_eq!(
        survivors.len(),
        3,
        "everyone re-admitted under the new master"
    );
    let digests: Vec<u64> = survivors
        .iter()
        .map(|&i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    assert!(
        net.actor(MachineId::new(1)).unwrap().completed_len() > committed_before,
        "commits resumed after failover"
    );
    for &i in &survivors {
        assert_eq!(net.actor(MachineId::new(i)).unwrap().pending_len(), 0);
    }
}

#[test]
fn a_brief_stall_does_not_trigger_a_spurious_election() {
    let cfg = base_cfg().with_master_failover(SimTime::from_secs(5));
    // Master silent for 1.5s — well under the failover threshold; the
    // normal stall machinery handles it without any election.
    let faults = FaultPlan::new().with_stall(guesstimate::net::StallWindow::new(
        MachineId::new(0),
        SimTime::from_secs(8),
        SimTime::from_millis(9_500),
    ));
    let mut net = sim_cluster(
        3,
        registry(),
        cfg,
        NetConfig::lan(13)
            .with_latency(LatencyModel::constant_ms(10))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
    net.run_until(SimTime::from_secs(20));
    for i in 1..3 {
        assert_eq!(
            net.actor(MachineId::new(i)).unwrap().stats().promotions,
            0,
            "m{i} never promoted"
        );
        assert!(!net.actor(MachineId::new(i)).unwrap().is_master());
    }
    assert!(net.actor(MachineId::new(0)).unwrap().is_master());
}

#[test]
fn without_failover_a_dead_master_halts_progress_but_not_consistency() {
    let faults = FaultPlan::new().with_crash(MachineId::new(0), SimTime::from_secs(8));
    let mut net = sim_cluster(
        3,
        registry(),
        base_cfg(), // no failover
        NetConfig::lan(15)
            .with_latency(LatencyModel::constant_ms(10))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
    net.run_until(SimTime::from_secs(9));
    let rounds_at_crash = net.actor(MachineId::new(1)).unwrap().stats().syncs_seen;
    net.run_until(SimTime::from_secs(25));
    // No progress (the paper's single-point-of-failure limitation) ...
    let m1 = net.actor(MachineId::new(1)).unwrap();
    let m2 = net.actor(MachineId::new(2)).unwrap();
    assert!(m1.stats().syncs_seen <= rounds_at_crash + 1);
    assert!(!m1.is_master() && !m2.is_master());
    // ... but also no divergence.
    assert_eq!(m1.committed_digest(), m2.committed_digest());
}
