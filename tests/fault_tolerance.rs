//! Fault-tolerance integration tests (§4 "Failures and fault tolerance",
//! §7 "Failure and recovery"): stalls, permanent crashes, message loss and
//! duplication — the survivors must stay consistent and live.

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{FaultPlan, LatencyModel, NetConfig, SimTime, StallWindow};
use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig};
use guesstimate::{MachineId, OpRegistry};

fn registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    sudoku::register(&mut r);
    r
}

fn mcfg() -> MachineConfig {
    MachineConfig::default()
        .with_sync_period(SimTime::from_millis(150))
        .with_stall_timeout(SimTime::from_millis(700))
        .with_join_retry(SimTime::from_millis(400))
        .with_paranoid_checks(true)
}

fn schedule_activity(
    net: &mut guesstimate::net::SimNet<Machine>,
    board: guesstimate::ObjectId,
    users: &[u32],
    events: u64,
    gap_ms: u64,
) {
    let start = net.now();
    for (slot, &i) in users.iter().enumerate() {
        for k in 0..events {
            net.schedule_call(
                start + SimTime::from_millis(gap_ms * k + 17 * slot as u64),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                        if let Some(&(r, c, v)) = moves.get((k % 9) as usize) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
}

fn assert_agree(net: &guesstimate::net::SimNet<Machine>, ids: &[u32]) {
    let digests: Vec<u64> = ids
        .iter()
        .map(|&i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {digests:?}"
    );
}

#[test]
fn permanent_crash_of_a_member_does_not_block_the_rest() {
    let faults = FaultPlan::new().with_crash(MachineId::new(2), SimTime::from_secs(8));
    let mut net = sim_cluster(
        4,
        registry(),
        mcfg(),
        NetConfig::lan(3)
            .with_latency(LatencyModel::constant_ms(15))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(SimTime::from_secs(7));
    schedule_activity(&mut net, board, &[0, 1, 3], 40, 300);
    net.run_until(SimTime::from_secs(30));

    // The dead machine is gone; the master removed it from membership.
    assert!(net.actor(MachineId::new(2)).is_none());
    let master = net.actor(MachineId::new(0)).unwrap();
    assert_eq!(master.members().len(), 3, "crashed machine evicted");
    // Rounds continued after the crash.
    let post_crash_rounds = master
        .stats()
        .sync_samples
        .iter()
        .filter(|s| s.started_at > SimTime::from_secs(10))
        .count();
    assert!(
        post_crash_rounds > 20,
        "rounds kept completing: {post_crash_rounds}"
    );
    assert_agree(&net, &[0, 1, 3]);
    for i in [0u32, 1, 3] {
        assert_eq!(net.actor(MachineId::new(i)).unwrap().pending_len(), 0);
    }
}

#[test]
fn overlapping_stalls_on_two_machines_recover() {
    let faults = FaultPlan::new()
        .with_stall(StallWindow::new(
            MachineId::new(1),
            SimTime::from_secs(8),
            SimTime::from_secs(12),
        ))
        .with_stall(StallWindow::new(
            MachineId::new(3),
            SimTime::from_secs(10),
            SimTime::from_secs(14),
        ));
    let mut net = sim_cluster(
        4,
        registry(),
        mcfg(),
        NetConfig::lan(5)
            .with_latency(LatencyModel::constant_ms(15))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(SimTime::from_secs(7));
    schedule_activity(&mut net, board, &[0, 2], 60, 200);
    net.run_until(SimTime::from_secs(40));

    // Both stalled machines were restarted and rejoined.
    for i in [1u32, 3] {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert!(m.stats().restarts >= 1, "m{i} restarted");
        assert!(m.in_cohort(), "m{i} rejoined");
    }
    assert_agree(&net, &[0, 1, 2, 3]);
    let master = net.actor(MachineId::new(0)).unwrap();
    let removals: u64 = master.stats().sync_samples.iter().map(|s| s.removals).sum();
    assert!(
        removals >= 2,
        "both stalled machines were removed at least once"
    );
}

#[test]
fn loss_and_duplication_together_still_converge() {
    let faults = FaultPlan::new().with_drop_prob(0.02).with_dup_prob(0.05);
    let mut net = sim_cluster(
        3,
        registry(),
        mcfg(),
        NetConfig::lan(11)
            .with_latency(LatencyModel::lan_ms(15))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(20)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));
    schedule_activity(&mut net, board, &[0, 1, 2], 30, 400);
    net.run_until(net.now() + SimTime::from_secs(60));

    let in_cohort: Vec<u32> = (0..3)
        .filter(|&i| net.actor(MachineId::new(i)).unwrap().in_cohort())
        .collect();
    assert!(in_cohort.len() >= 2);
    assert_agree(&net, &in_cohort);
    for &i in &in_cohort {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert_eq!(m.pending_len(), 0, "m{i} drained");
        assert!(m.check_guess_invariant());
    }
    // Duplication really happened and was tolerated.
    assert!(net.metrics().duplicated > 0);
    assert!(net.metrics().dropped > 0);
}

#[test]
fn stall_during_flush_vs_stall_during_ack_both_recover() {
    // Two separate short stalls positioned to hit different stages: the
    // exact stage is timing-dependent, but both paths (missing FlushDone →
    // nudge → remove; missing Ack → resend BeginApply → remove) must end
    // with a consistent cluster.
    for (from_s, seed) in [(8u64, 41), (8u64, 43)] {
        let faults = FaultPlan::new().with_stall(StallWindow::new(
            MachineId::new(1),
            SimTime::from_secs(from_s),
            SimTime::from_secs(from_s + 3),
        ));
        let mut net = sim_cluster(
            3,
            registry(),
            mcfg(),
            NetConfig::lan(seed)
                .with_latency(LatencyModel::lan_ms(20))
                .with_faults(faults),
        );
        assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
        let board = net
            .actor_mut(MachineId::new(0))
            .unwrap()
            .create_instance(sudoku::example_puzzle());
        net.run_until(SimTime::from_secs(7));
        schedule_activity(&mut net, board, &[0, 1, 2], 30, 250);
        net.run_until(SimTime::from_secs(30));
        assert_agree(&net, &[0, 1, 2]);
        assert!(
            net.actor(MachineId::new(1)).unwrap().in_cohort(),
            "seed {seed}: stalled machine back in the cohort"
        );
    }
}

#[test]
fn partition_isolates_minority_then_heals() {
    // Machines 3 and 4 are cut off from the master's side for 8 seconds.
    // The master removes them from rounds (they look stalled); on heal they
    // rejoin through the membership path and converge.
    use guesstimate::net::PartitionWindow;
    let faults = FaultPlan::new().with_partition(PartitionWindow::new(
        vec![MachineId::new(3), MachineId::new(4)],
        SimTime::from_secs(8),
        SimTime::from_secs(16),
    ));
    let mut net = sim_cluster(
        5,
        registry(),
        mcfg(),
        NetConfig::lan(21)
            .with_latency(LatencyModel::constant_ms(15))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(6)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(SimTime::from_secs(7));
    schedule_activity(&mut net, board, &[0, 1, 2], 50, 300);
    // During the partition the majority side keeps committing.
    net.run_until(SimTime::from_secs(15));
    assert!(
        net.actor(MachineId::new(0)).unwrap().members().len() <= 3,
        "minority evicted during the partition"
    );
    let majority_commits = net.actor(MachineId::new(0)).unwrap().completed_len();
    assert!(majority_commits > 10, "majority made progress");
    // After the heal, everyone is back and identical.
    net.run_until(SimTime::from_secs(40));
    for i in [3u32, 4] {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert!(m.in_cohort(), "m{i} rejoined after the heal");
    }
    assert_agree(&net, &[0, 1, 2, 3, 4]);
    assert_eq!(net.actor(MachineId::new(0)).unwrap().members().len(), 5);
}
