//! Model-checker regression schedules.
//!
//! `tests/schedules/` holds minimized, replayable schedule files produced
//! by the `mc` binary (see `docs/MODELCHECK.md`). Schedules *without* a
//! tamper block are interesting interleavings (message loss, late join,
//! cross-machine reorderings) that once exercised tricky protocol paths:
//! replaying them must stay oracle-clean. Schedules *with* a tamper block
//! — or recorded against a hidden negative preset (one absent from
//! [`guesstimate_mc::PRESETS`], such as `miskeyed`) — are repros:
//! replaying them must still produce a deterministic oracle violation,
//! proving the checker's detection power has not regressed.

use guesstimate_core::CommuteMatrix;
use guesstimate_mc::{
    explore, minimize, replay, ExploreConfig, Preset, Schedule, Step, TamperSpec, Violation,
};

fn schedule_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/schedules");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/schedules exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no schedules checked in under {dir:?}");
    files
}

#[test]
fn checked_in_schedules_replay_as_recorded() {
    let matrix = CommuteMatrix::new();
    for path in schedule_files() {
        let text = std::fs::read_to_string(&path).expect("schedule file readable");
        let sched = Schedule::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let report = replay(&sched, &matrix).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        // `cross-group` lives outside PRESETS (it explores a different
        // cluster shape) but is a positive preset: its schedules must
        // replay clean.
        let negative_preset = sched.preset != guesstimate_mc::CROSS_GROUP
            && guesstimate_mc::PRESETS
                .iter()
                .all(|p| p.name != sched.preset);
        if sched.tamper.is_some() || negative_preset {
            assert!(
                report.violation.is_some(),
                "{path:?}: repro schedule no longer reproduces a violation"
            );
        } else {
            assert!(
                report.violation.is_none(),
                "{path:?}: clean schedule now violates: {:?}",
                report.violation
            );
        }
        // Replay must be deterministic: a second run reaches the same verdict.
        let again = replay(&sched, &matrix).unwrap();
        assert_eq!(report.violation, again.violation, "{path:?}");
    }
}

/// End-to-end seeded-mutation check: corrupt the first Ops batch machine 1
/// receives by swapping the operation ids of the conflicting sudoku pair
/// (a deliberately reordered commit), and require the checker to detect
/// it, shrink it, and reproduce it deterministically from the shrunken
/// schedule.
#[test]
fn seeded_commit_reorder_is_detected_and_shrunk() {
    // The built-in preset must be used as-is: replay resolves the
    // schedule's preset *name*, so a locally shrunk variant would not
    // round-trip through the file format.
    let preset = *Preset::by_name("sudoku").expect("built-in preset");
    let tamper = Some(TamperSpec {
        victim: 1,
        nth: 1,
        swap: (0, 1),
    });
    let matrix = CommuteMatrix::new();
    let out = explore(&preset, &matrix, tamper, &ExploreConfig::default());
    let (violation, steps) = out
        .violation
        .expect("a reordered commit must trip the agreement oracles");
    let raw = Schedule {
        preset: preset.name.to_owned(),
        tamper,
        steps,
    };
    let min = minimize(&raw, &matrix);
    assert!(
        min.steps.len() <= raw.steps.len(),
        "minimization must never grow the schedule"
    );
    // The minimized schedule round-trips through its file format and
    // still fails, twice in a row.
    let reparsed = Schedule::from_json(&min.to_json()).expect("well-formed file");
    let first = replay(&reparsed, &matrix).expect("known preset");
    let second = replay(&reparsed, &matrix).expect("known preset");
    assert!(
        first.violation.is_some(),
        "minimized repro lost the violation (original: {violation})"
    );
    assert_eq!(
        first.violation, second.violation,
        "repro must be deterministic"
    );
}

/// Three-layer soundness demo, model-checker layer (the other two are the
/// analysis witness sanitizer and the runtime's paranoid apply-site
/// assert): the hidden `sneaky` preset injects a `mirror` operation whose
/// declared footprint omits its read of `src`. The witness-containment
/// oracle must report it, ddmin must shrink the repro, and the shrunken
/// schedule must replay deterministically.
#[test]
fn under_declared_read_is_caught_shrunk_and_replayable() {
    let preset = *Preset::by_name("sneaky").expect("hidden negative preset");
    assert!(
        guesstimate_mc::PRESETS.iter().all(|p| p.name != "sneaky"),
        "the negative preset must stay out of the positive suites"
    );
    let matrix = CommuteMatrix::new();
    let out = explore(&preset, &matrix, None, &ExploreConfig::default());
    let (violation, steps) = out
        .violation
        .expect("an undeclared read must trip the witness oracle");
    assert!(
        matches!(violation, Violation::WitnessEscape { .. }),
        "wrong oracle fired: {violation}"
    );
    assert!(
        violation.to_string().contains("src"),
        "the report names the leaked path: {violation}"
    );
    let raw = Schedule {
        preset: preset.name.to_owned(),
        tamper: None,
        steps,
    };
    let min = minimize(&raw, &matrix);
    assert!(min.steps.len() <= raw.steps.len());
    let reparsed = Schedule::from_json(&min.to_json()).expect("well-formed file");
    let first = replay(&reparsed, &matrix).expect("known preset");
    let second = replay(&reparsed, &matrix).expect("known preset");
    assert!(
        matches!(first.violation, Some(Violation::WitnessEscape { .. })),
        "minimized repro lost the violation: {:?}",
        first.violation
    );
    assert_eq!(
        first.violation, second.violation,
        "repro must be deterministic"
    );
}

/// Three-layer soundness demo for shard plans, model-checker layer (the
/// other two are the analysis sanitizer and the witness-backed escape
/// check in `analyze --shard-plan`): the hidden `miskeyed` preset installs
/// a shard plan whose `post` route keys by the *author* argument instead
/// of the topic, so the first committed post's `topics/news` write lands
/// outside its routed `KeyedBoard:0/ann` shard. The runtime containment
/// check records the escape, the `ShardEscape` oracle must report it,
/// ddmin must shrink the repro, and the shrunken schedule must replay
/// deterministically.
#[test]
fn mis_keyed_shard_plan_is_caught_shrunk_and_replayable() {
    let preset = *Preset::by_name("miskeyed").expect("hidden negative preset");
    assert!(
        guesstimate_mc::PRESETS.iter().all(|p| p.name != "miskeyed"),
        "the negative preset must stay out of the positive suites"
    );
    let matrix = CommuteMatrix::new();
    let out = explore(&preset, &matrix, None, &ExploreConfig::default());
    let (violation, steps) = out
        .violation
        .expect("a mis-keyed shard plan must trip the shard-escape oracle");
    assert!(
        matches!(violation, Violation::ShardEscape { .. }),
        "wrong oracle fired: {violation}"
    );
    let report = violation.to_string();
    assert!(
        report.contains("topics/") && report.contains("KeyedBoard:0/"),
        "the report names the escaping path and the routed shard: {violation}"
    );
    let raw = Schedule {
        preset: preset.name.to_owned(),
        tamper: None,
        steps,
    };
    let min = minimize(&raw, &matrix);
    assert!(min.steps.len() <= raw.steps.len());
    let reparsed = Schedule::from_json(&min.to_json()).expect("well-formed file");
    let first = replay(&reparsed, &matrix).expect("known preset");
    let second = replay(&reparsed, &matrix).expect("known preset");
    assert!(
        matches!(first.violation, Some(Violation::ShardEscape { .. })),
        "minimized repro lost the violation: {:?}",
        first.violation
    );
    assert_eq!(
        first.violation, second.violation,
        "repro must be deterministic"
    );
}

/// Regenerates `tests/schedules/miskeyed-shard-escape.json`: the minimized
/// shard-escape repro for the hidden `miskeyed` preset, checked in so the
/// replay suite proves the `ShardEscape` oracle's detection power has not
/// regressed. Run with `--ignored --nocapture` and paste the output into
/// the schedule file.
#[test]
#[ignore = "generator for the checked-in shard-escape schedule"]
fn generate_miskeyed_shard_escape_schedule() {
    let preset = *Preset::by_name("miskeyed").expect("hidden negative preset");
    let matrix = CommuteMatrix::new();
    let out = explore(&preset, &matrix, None, &ExploreConfig::default());
    let (violation, steps) = out.violation.expect("mis-keyed plan must violate");
    assert!(matches!(violation, Violation::ShardEscape { .. }));
    let raw = Schedule {
        preset: preset.name.to_owned(),
        tamper: None,
        steps,
    };
    let min = minimize(&raw, &matrix);
    let report = replay(&min, &matrix).expect("known preset");
    assert!(
        matches!(report.violation, Some(Violation::ShardEscape { .. })),
        "{:?}",
        report.violation
    );
    println!("{}", min.to_json());
}

/// Regenerates `tests/schedules/message-board-async-gap.json`: machine 1's
/// second async `like` (aseq 1) is delivered to machine 0 *before* its
/// first (aseq 0), forcing the per-sender reorder buffer to hold the gap
/// and release FIFO — then the run drains deterministically to a clean
/// quiescent state. Run with `--ignored --nocapture` and paste the output
/// into the schedule file.
#[test]
#[ignore = "generator for the checked-in async-gap schedule"]
fn generate_message_board_async_gap_schedule() {
    use guesstimate_core::MachineId;
    use guesstimate_runtime::Msg;

    let preset = *Preset::by_name("message_board").expect("built-in preset");
    let matrix = CommuteMatrix::new();
    let effective = preset.effective_matrix(&matrix);
    let mut built = preset.build(&effective, None);
    let mut steps = Vec::new();

    let mut gap: Vec<(u64, u64)> = built
        .net
        .pending_msgs()
        .iter()
        .filter_map(|&s| {
            let p = built.net.pending_msg(s)?;
            match &p.msg {
                Msg::AsyncOp { aseq, .. }
                    if p.from == MachineId::new(1) && p.to == MachineId::new(0) =>
                {
                    Some((*aseq, s))
                }
                _ => None,
            }
        })
        .collect();
    gap.sort_unstable();
    gap.reverse(); // highest aseq first: a same-sender gap at machine 0
    assert_eq!(gap.len(), 2, "machine 1 broadcast two likes to machine 0");
    for &(_, seq) in &gap {
        assert!(built.net.deliver(seq));
        steps.push(Step::Deliver(seq));
    }

    let rounds_target = built.base_rounds + preset.rounds;
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 100_000, "drain failed to converge");
        if let Some(&seq) = built.net.pending_msgs().first() {
            assert!(built.net.deliver(seq));
            steps.push(Step::Deliver(seq));
            continue;
        }
        let master = built.net.actor(MachineId::new(0)).expect("master");
        if master.stats().syncs_seen >= rounds_target {
            break;
        }
        assert!(built.net.fire_next_timer(), "drain stalled");
        steps.push(Step::Timer);
    }

    let sched = Schedule {
        preset: preset.name.to_owned(),
        tamper: None,
        steps,
    };
    let report = replay(&sched, &matrix).expect("known preset");
    assert!(report.violation.is_none(), "{:?}", report.violation);
    println!("{}", sched.to_json());
}

/// Regenerates `tests/schedules/cross-group-coordinated-round.json`: the
/// multi-group cluster's coordinated cross round under an adversarial
/// delivery order — every post-prelude wave is delivered in *reverse*
/// seq order, so the `CrossSubmit`, the per-group markers and the local
/// round traffic interleave maximally — then drained to quiescence.
/// Replaying it must stay clean through the per-group prefix, committed
/// digest and cross-round oracles. Run with `--ignored --nocapture` and
/// paste the output into the schedule file.
#[test]
#[ignore = "generator for the checked-in cross-group schedule"]
fn generate_cross_group_coordinated_round_schedule() {
    use guesstimate_mc::multigroup;

    let mut built = multigroup::build();
    let mut steps = Vec::new();
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 100_000, "drain failed to converge");
        assert_eq!(multigroup::check_step(&built.net), None);
        let pending = built.net.pending_msgs();
        if let Some(&seq) = pending.last() {
            assert!(built.net.deliver(seq));
            steps.push(Step::Deliver(seq));
            continue;
        }
        let node0 = built
            .net
            .actor(guesstimate_core::MachineId::new(0))
            .expect("node 0");
        let rounds_done = built.base_rounds.iter().all(|(&g, &base)| {
            node0
                .group(g)
                .is_some_and(|m| m.stats().syncs_seen >= base + 2)
        });
        if rounds_done && node0.cross_resolved() == 1 {
            break;
        }
        assert!(built.net.fire_next_timer(), "drain stalled");
        steps.push(Step::Timer);
    }
    assert_eq!(multigroup::check_terminal(&built.net), None);

    let sched = Schedule {
        preset: guesstimate_mc::CROSS_GROUP.to_owned(),
        tamper: None,
        steps,
    };
    let report = replay(&sched, &CommuteMatrix::new()).expect("dispatches to multigroup");
    assert!(report.violation.is_none(), "{:?}", report.violation);
    println!("{}", sched.to_json());
}
