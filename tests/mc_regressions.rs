//! Model-checker regression schedules.
//!
//! `tests/schedules/` holds minimized, replayable schedule files produced
//! by the `mc` binary (see `docs/MODELCHECK.md`). Schedules *without* a
//! tamper block are interesting interleavings (message loss, late join,
//! cross-machine reorderings) that once exercised tricky protocol paths:
//! replaying them must stay oracle-clean. Schedules *with* a tamper block
//! are seeded-corruption repros: replaying them must still produce a
//! deterministic oracle violation, proving the checker's detection power
//! has not regressed.

use guesstimate_core::CommuteMatrix;
use guesstimate_mc::{explore, minimize, replay, ExploreConfig, Preset, Schedule, TamperSpec};

fn schedule_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/schedules");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/schedules exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no schedules checked in under {dir:?}");
    files
}

#[test]
fn checked_in_schedules_replay_as_recorded() {
    let matrix = CommuteMatrix::new();
    for path in schedule_files() {
        let text = std::fs::read_to_string(&path).expect("schedule file readable");
        let sched = Schedule::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let report = replay(&sched, &matrix).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        if sched.tamper.is_some() {
            assert!(
                report.violation.is_some(),
                "{path:?}: tampered schedule no longer reproduces a violation"
            );
        } else {
            assert!(
                report.violation.is_none(),
                "{path:?}: clean schedule now violates: {:?}",
                report.violation
            );
        }
        // Replay must be deterministic: a second run reaches the same verdict.
        let again = replay(&sched, &matrix).unwrap();
        assert_eq!(report.violation, again.violation, "{path:?}");
    }
}

/// End-to-end seeded-mutation check: corrupt the first Ops batch machine 1
/// receives by swapping the operation ids of the conflicting sudoku pair
/// (a deliberately reordered commit), and require the checker to detect
/// it, shrink it, and reproduce it deterministically from the shrunken
/// schedule.
#[test]
fn seeded_commit_reorder_is_detected_and_shrunk() {
    // The built-in preset must be used as-is: replay resolves the
    // schedule's preset *name*, so a locally shrunk variant would not
    // round-trip through the file format.
    let preset = *Preset::by_name("sudoku").expect("built-in preset");
    let tamper = Some(TamperSpec {
        victim: 1,
        nth: 1,
        swap: (0, 1),
    });
    let matrix = CommuteMatrix::new();
    let out = explore(&preset, &matrix, tamper, &ExploreConfig::default());
    let (violation, steps) = out
        .violation
        .expect("a reordered commit must trip the agreement oracles");
    let raw = Schedule {
        preset: preset.name.to_owned(),
        tamper,
        steps,
    };
    let min = minimize(&raw, &matrix);
    assert!(
        min.steps.len() <= raw.steps.len(),
        "minimization must never grow the schedule"
    );
    // The minimized schedule round-trips through its file format and
    // still fails, twice in a row.
    let reparsed = Schedule::from_json(&min.to_json()).expect("well-formed file");
    let first = replay(&reparsed, &matrix).expect("known preset");
    let second = replay(&reparsed, &matrix).expect("known preset");
    assert!(
        first.violation.is_some(),
        "minimized repro lost the violation (original: {violation})"
    );
    assert_eq!(
        first.violation, second.violation,
        "repro must be deterministic"
    );
}
