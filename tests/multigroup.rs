//! Multi-group runtime integration: per-group protocol independence.
//!
//! Each sync group runs its own complete round protocol (master, round
//! counter, election watchdog), so a master failure in one group must
//! leave every other group's round loop untouched. The fixture is the
//! minimal two-component type split into groups `Pair:0` and `Pair:1`
//! with *different* master nodes: node 1 masters `Pair:1` only, so
//! killing node 1 decapitates exactly one group.

use std::collections::BTreeMap;
use std::sync::Arc;

use guesstimate::core::{args, ComponentPlan, PathPattern, Routing, ShardPlan, SharedOp, TypePlan};
use guesstimate::net::{LatencyModel, NetConfig, SimNet, SimTime};
use guesstimate::runtime::multigroup::{
    multi_sim_cluster, run_multi_until_joined, GroupTable, MultiClusterSpec, MultiMachine,
};
use guesstimate::runtime::MachineConfig;
use guesstimate::telemetry::Telemetry;
use guesstimate::{GState, MachineId, OpRegistry, RestoreError, Value};

/// Two independent fields; the shard plan splits them into two groups.
#[derive(Clone, Default, Debug, PartialEq)]
struct Pair {
    a: i64,
    b: i64,
}

impl GState for Pair {
    const TYPE_NAME: &'static str = "Pair";
    fn snapshot(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), Value::from(self.a));
        m.insert("b".to_owned(), Value::from(self.b));
        Value::Map(m)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let Value::Map(m) = v else {
            return Err(RestoreError::shape("map"));
        };
        self.a = m.get("a").and_then(Value::as_i64).unwrap_or(0);
        self.b = m.get("b").and_then(Value::as_i64).unwrap_or(0);
        Ok(())
    }
}

fn registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Pair>();
    r.register_method::<Pair>("bump_a", |p: &mut Pair, a| {
        let Some(d) = a.i64(0) else { return false };
        p.a += d;
        true
    });
    r.register_method::<Pair>("bump_b", |p: &mut Pair, a| {
        let Some(d) = a.i64(0) else { return false };
        p.b += d;
        true
    });
    r
}

fn plan() -> Arc<ShardPlan> {
    let mut tp = TypePlan {
        components: vec![
            ComponentPlan {
                prefixes: vec![PathPattern::parse("a").unwrap()],
                keyed: false,
            },
            ComponentPlan {
                prefixes: vec![PathPattern::parse("b").unwrap()],
                keyed: false,
            },
        ],
        routes: BTreeMap::new(),
    };
    tp.routes.insert(
        "bump_a".to_owned(),
        Routing::Local {
            component: 0,
            key_arg: None,
        },
    );
    tp.routes.insert(
        "bump_b".to_owned(),
        Routing::Local {
            component: 1,
            key_arg: None,
        },
    );
    let mut p = ShardPlan::new();
    p.types.insert("Pair".to_owned(), tp);
    Arc::new(p)
}

/// 4 nodes with asymmetric hosting so the two groups have *different*
/// master nodes (the round protocol requires each group's master to be
/// its lowest member): node 0 hosts only `Pair:0` and masters it; nodes
/// 1–3 host both groups, and node 1 — the lowest `Pair:1` member —
/// masters `Pair:1`.
fn cluster() -> SimNet<MultiMachine> {
    let table = Arc::new(GroupTable::from_plan(plan()));
    let spec = MultiClusterSpec {
        table,
        hosting: vec![vec![0], vec![0, 1], vec![0, 1], vec![0, 1]],
        masters: [(0, MachineId::new(0)), (1, MachineId::new(1))]
            .into_iter()
            .collect(),
        coordinator: MachineId::new(0),
    };
    let cfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(100))
        .with_stall_timeout(SimTime::from_millis(500))
        .with_join_retry(SimTime::from_millis(300))
        .with_master_failover(SimTime::from_secs(2))
        .with_shard_plan(plan());
    multi_sim_cluster(
        &spec,
        Arc::new(registry()),
        cfg,
        NetConfig::lan(21).with_latency(LatencyModel::constant_ms(10)),
        Telemetry::noop(),
    )
}

#[test]
fn killing_one_groups_master_leaves_the_other_group_committing() {
    let mut net = cluster();
    run_multi_until_joined(&mut net, SimTime::from_secs(10));

    // Node 1 hosts both groups, so its create fans out to both.
    let mut obj = None;
    net.call(MachineId::new(1), |mm, ctx| {
        obj = Some(mm.create_instance(Pair::default(), ctx));
    });
    let obj = obj.unwrap();
    net.run_until(net.now() + SimTime::from_secs(2));

    net.call(MachineId::new(2), |mm, ctx| {
        mm.issue(SharedOp::primitive(obj, "bump_a", args![1]), None, ctx)
            .unwrap();
    });
    net.call(MachineId::new(3), |mm, ctx| {
        mm.issue(SharedOp::primitive(obj, "bump_b", args![2]), None, ctx)
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(2));
    for i in 2..4 {
        assert_eq!(
            net.actor(MachineId::new(i))
                .unwrap()
                .read_committed::<Pair, _>(obj, |p| (p.a, p.b)),
            Some((1, 2)),
            "node {i} before the crash"
        );
    }

    // Kill node 1 — the master of `Pair:1` and an ordinary member of
    // `Pair:0` — mid-run.
    let crash_time = net.now();
    assert!(net.remove_machine(MachineId::new(1)).is_some());

    // `Pair:0`'s master (node 0) is alive: the group keeps committing
    // well before `Pair:1`'s failover threshold (2s) can even fire.
    net.call(MachineId::new(2), |mm, ctx| {
        mm.issue(SharedOp::primitive(obj, "bump_a", args![10]), None, ctx)
            .unwrap();
    });
    // Give `Pair:0`'s master time to stall-out the dead node-1 member
    // (stall_timeout 500ms) and re-run the round, but stay under the 2s
    // failover threshold so `Pair:1` is provably still masterless below.
    net.run_until(crash_time + SimTime::from_millis(1800));
    assert_eq!(
        net.actor(MachineId::new(2))
            .unwrap()
            .group(1)
            .unwrap()
            .stats()
            .promotions,
        0,
        "Pair:1 has not elected yet"
    );
    for i in [0u32, 2, 3] {
        // Read the group-0 machine directly: node 0 hosts only `Pair:0`,
        // whose copy of `b` is intentionally stale, so the merged view
        // is not the right lens here.
        assert_eq!(
            net.actor(MachineId::new(i))
                .unwrap()
                .group(0)
                .unwrap()
                .read_committed::<Pair, _>(obj, |p| p.a),
            Some(11),
            "node {i}: Pair:0 committed while Pair:1 was masterless"
        );
    }

    // `Pair:1` recovers on its own: nodes 2 and 3 elect node 2 (the
    // lowest surviving member of the group) and resume committing.
    net.run_until(crash_time + SimTime::from_secs(12));
    let m2 = net.actor(MachineId::new(2)).unwrap();
    assert!(
        m2.group(1).unwrap().is_master(),
        "node 2 promoted to Pair:1 master"
    );
    assert_eq!(m2.group(1).unwrap().stats().promotions, 1);
    assert!(!net
        .actor(MachineId::new(3))
        .unwrap()
        .group(1)
        .unwrap()
        .is_master());
    // Node 0 never hosts Pair:1, so nothing there could have promoted;
    // its Pair:0 machine is still the original master, not an electee.
    let m0 = net.actor(MachineId::new(0)).unwrap();
    assert!(m0.group(1).is_none());
    assert_eq!(m0.group(0).unwrap().stats().promotions, 0);

    net.call(MachineId::new(3), |mm, ctx| {
        mm.issue(SharedOp::primitive(obj, "bump_b", args![20]), None, ctx)
            .unwrap();
    });
    net.run_until(net.now() + SimTime::from_secs(3));
    for i in 2..4 {
        let mm = net.actor(MachineId::new(i)).unwrap();
        assert_eq!(
            mm.read_committed::<Pair, _>(obj, |p| (p.a, p.b)),
            Some((11, 22)),
            "node {i} after the election"
        );
    }
    // Per-group committed digests agree among each group's survivors.
    let d0: Vec<u64> = [0u32, 2, 3]
        .iter()
        .map(|&i| {
            net.actor(MachineId::new(i))
                .unwrap()
                .group(0)
                .unwrap()
                .committed_digest()
        })
        .collect();
    assert!(d0.windows(2).all(|w| w[0] == w[1]), "Pair:0 digests agree");
    let d1: Vec<u64> = [2u32, 3]
        .iter()
        .map(|&i| {
            net.actor(MachineId::new(i))
                .unwrap()
                .group(1)
                .unwrap()
                .committed_digest()
        })
        .collect();
    assert!(d1.windows(2).all(|w| w[0] == w[1]), "Pair:1 digests agree");
}
