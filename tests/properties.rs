//! Property-based tests (proptest) over the core data structures and the
//! formal semantics:
//!
//! * `Value` — total order laws, digest stability, snapshot determinism;
//! * `ObjectStore` — `copy_from` is idempotent and digest-faithful;
//! * `SharedOp` — structural metrics behave under arbitrary nesting;
//! * semantics — the §3 invariants survive *arbitrary* R1/R2/R3 schedules,
//!   and quiescence always equalizes guesstimated and committed state;
//! * runtime — random multi-machine schedules converge and respect the
//!   bounded-re-execution guarantee.

use guesstimate::core::{value_digest, ObjectId, ObjectStore, SharedOp, Value};
use guesstimate::semantics::{check_invariants, testmodel};
use guesstimate::{args, MachineId};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        any::<f64>().prop_map(Value::from),
        "[a-z]{0,8}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(Value::from),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::from),
            proptest::collection::btree_map("[a-z]{1,4}", inner, 0..4).prop_map(Value::Map),
        ]
    })
}

proptest! {
    #[test]
    fn value_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => {
                prop_assert_eq!(b.cmp(&a), Equal);
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(value_digest(&a), value_digest(&b));
            }
        }
    }

    #[test]
    fn value_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn value_clone_preserves_digest(a in arb_value()) {
        prop_assert_eq!(value_digest(&a), value_digest(&a.clone()));
    }
}

// ---------------------------------------------------------------------
// ObjectStore
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn store_copy_from_is_idempotent_and_digest_faithful(vals in proptest::collection::vec(any::<i64>(), 0..6)) {
        let mut src = ObjectStore::new();
        for (i, v) in vals.iter().enumerate() {
            src.insert(
                ObjectId::new(MachineId::new(0), i as u64),
                Box::new(testmodel::Counter { n: *v }),
            );
        }
        let mut dst = ObjectStore::new();
        dst.insert(ObjectId::new(MachineId::new(9), 9), Box::new(testmodel::Counter { n: -1 }));
        dst.copy_from(&src);
        prop_assert_eq!(dst.digest(), src.digest());
        prop_assert_eq!(dst.len(), src.len());
        dst.copy_from(&src);
        prop_assert_eq!(dst.digest(), src.digest());
        let cloned = src.clone();
        prop_assert_eq!(cloned.digest(), src.digest());
    }
}

// ---------------------------------------------------------------------
// SharedOp structure
// ---------------------------------------------------------------------

fn arb_op() -> impl Strategy<Value = SharedOp> {
    let obj = testmodel::counter_object();
    let leaf = (-3i64..6).prop_map(move |d| SharedOp::primitive(obj, "add", args![d]));
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(SharedOp::atomic),
            (inner.clone(), inner).prop_map(|(a, b)| a.or_else(b)),
        ]
    })
}

proptest! {
    #[test]
    fn op_metrics_are_consistent(op in arb_op()) {
        prop_assert!(op.depth() >= 1);
        let touched = op.objects_touched();
        if op.primitive_count() > 0 {
            prop_assert_eq!(touched.len(), 1, "single-object universe");
        } else {
            prop_assert!(touched.is_empty());
        }
        // Display never panics and mentions the method for non-empty ops.
        let s = op.to_string();
        if op.primitive_count() > 0 {
            prop_assert!(s.contains("add"));
        }
    }

    #[test]
    fn failed_ops_never_change_state(op in arb_op(), init in 0i64..20) {
        // Execute against a fresh store; whatever the outcome, a `false`
        // result must leave the state unchanged (the §3 frame condition,
        // which Atomic/OrElse composition must preserve).
        let registry = testmodel::counter_registry();
        let mut sys = testmodel::counter_system(1, init);
        let m = MachineId::new(0);
        let before = sys.machine(m).unwrap().guess.digest();
        let issued = sys.issue(m, op).unwrap();
        let after = sys.machine(m).unwrap().guess.digest();
        if !issued {
            prop_assert_eq!(before, after, "dropped op must not change sg");
        }
        let _ = registry;
    }
}

// ---------------------------------------------------------------------
// Semantics: invariants under arbitrary schedules
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Step {
    Local(u32),
    Issue(u32, i64, i64), // machine, delta, cap
    Commit(u32),
}

fn arb_steps(machines: u32) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0..machines).prop_map(Step::Local),
            (0..machines, -2i64..5, 1i64..15).prop_map(|(m, d, cap)| Step::Issue(m, d, cap)),
            (0..machines).prop_map(Step::Commit),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn semantics_invariants_hold_under_arbitrary_schedules(steps in arb_steps(3)) {
        let obj = testmodel::counter_object();
        let mut sys = testmodel::counter_system(3, 2);
        for step in steps {
            match step {
                Step::Local(m) => sys.local(MachineId::new(m)).unwrap(),
                Step::Issue(m, d, cap) => {
                    let _ = sys
                        .issue(MachineId::new(m), SharedOp::primitive(obj, "add_capped", args![d, cap]))
                        .unwrap();
                }
                Step::Commit(m) => {
                    let _ = sys.commit(MachineId::new(m)).unwrap();
                }
            }
            check_invariants(&sys).unwrap();
        }
        // Quiescence: drain all queues; guesstimates equal committed state.
        while sys.commit_any().unwrap() {
            check_invariants(&sys).unwrap();
        }
        prop_assert!(sys.quiescent());
        for id in sys.machine_ids() {
            let m = sys.machine(id).unwrap();
            prop_assert_eq!(m.guess.digest(), m.committed.digest());
        }
    }
}

// ---------------------------------------------------------------------
// Runtime: random schedules converge with the ≤3-executions bound
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn runtime_random_schedules_converge(seed in 0u64..5000, users in 2u32..5) {
        use guesstimate::apps::sudoku;
        use guesstimate::net::{LatencyModel, NetConfig, SimTime};
        use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig};
        use guesstimate::OpRegistry;

        let mut registry = OpRegistry::new();
        sudoku::register(&mut registry);
        let mut net = sim_cluster(
            users,
            registry,
            MachineConfig::default()
                .with_sync_period(SimTime::from_millis(120))
                .with_stall_timeout(SimTime::from_secs(2))
                .with_paranoid_checks(true),
            NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(20)),
        );
        prop_assert!(run_until_cohort(&mut net, SimTime::from_secs(15)));
        let board = net
            .actor_mut(MachineId::new(0))
            .unwrap()
            .create_instance(sudoku::example_puzzle());
        net.run_until(net.now() + SimTime::from_secs(1));
        for i in 0..users {
            for k in 0..12u64 {
                let jitter = (seed.wrapping_mul(6364136223846793005).wrapping_add(k * 31 + u64::from(i))) % 211;
                net.schedule_call(
                    net.now() + SimTime::from_millis(130 * k + jitter),
                    MachineId::new(i),
                    move |m: &mut Machine, _| {
                        if let Some(moves) = m.read::<sudoku::Sudoku, _>(board, |s| s.candidate_moves()) {
                            if let Some(&(r, c, v)) = moves.get((k % 4) as usize) {
                                let _ = m.issue(sudoku::ops::update(board, r, c, v));
                            }
                        }
                    },
                );
            }
        }
        net.run_until(net.now() + SimTime::from_secs(10));
        let digests: Vec<u64> = (0..users)
            .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
            .collect();
        prop_assert!(digests.windows(2).all(|w| w[0] == w[1]));
        for i in 0..users {
            let m = net.actor(MachineId::new(i)).unwrap();
            prop_assert_eq!(m.pending_len(), 0);
            prop_assert!(m.stats().max_exec_count <= 3);
            prop_assert!(m.check_guess_invariant());
        }
    }
}

// ---------------------------------------------------------------------
// Semantics: commits of operations on disjoint objects commute
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn commits_on_disjoint_objects_commute(da in 1i64..5, db in 1i64..5) {
        use guesstimate::semantics::SemSystem;
        use guesstimate::core::OpRegistry;
        use std::sync::Arc;

        // Two counters; machine 0 updates object A, machine 1 updates B.
        let obj_a = ObjectId::new(MachineId::new(0), 0);
        let obj_b = ObjectId::new(MachineId::new(0), 1);
        let registry: Arc<OpRegistry> = Arc::new(testmodel::counter_registry());
        let mut initial = ObjectStore::new();
        initial.insert(obj_a, Box::new(testmodel::Counter { n: 0 }));
        initial.insert(obj_b, Box::new(testmodel::Counter { n: 0 }));
        let mk = || {
            let mut sys = SemSystem::new(2, registry.clone(), &initial);
            sys.issue(MachineId::new(0), SharedOp::primitive(obj_a, "add", args![da])).unwrap();
            sys.issue(MachineId::new(1), SharedOp::primitive(obj_b, "add", args![db])).unwrap();
            sys
        };
        // Order 1: commit machine 0 first; order 2: machine 1 first.
        let mut s1 = mk();
        s1.commit(MachineId::new(0)).unwrap();
        s1.commit(MachineId::new(1)).unwrap();
        let mut s2 = mk();
        s2.commit(MachineId::new(1)).unwrap();
        s2.commit(MachineId::new(0)).unwrap();
        prop_assert_eq!(
            s1.machine(MachineId::new(0)).unwrap().committed.digest(),
            s2.machine(MachineId::new(0)).unwrap().committed.digest(),
            "disjoint-object commits commute"
        );
        check_invariants(&s1).unwrap();
        check_invariants(&s2).unwrap();
    }
}

// ---------------------------------------------------------------------
// §5 "Specifications": conformance composes through OrElse and Atomic
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// The paper's §5 lemma: "If operations s and t both conform to a
    /// specification φ, it can be established that the operation
    /// s OrElse t also conforms to φ." Here φ = "the counter does not
    /// decrease", to which every `add_capped(d, cap)` with d ≥ 0 conforms;
    /// the lemma must hold for arbitrary OrElse chains over arbitrary
    /// states.
    #[test]
    fn or_else_chains_preserve_conformance(
        arms in proptest::collection::vec((0i64..6, 0i64..12), 1..5),
        init in 0i64..12,
    ) {
        use guesstimate::core::execute;
        let registry = testmodel::counter_registry();
        let obj = testmodel::counter_object();
        let chain = SharedOp::first_of(
            arms.iter()
                .map(|&(d, cap)| SharedOp::primitive(obj, "add_capped", args![d, cap]))
                .collect(),
        )
        .expect("non-empty");
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(testmodel::Counter { n: init }));
        let pre = store.get_as::<testmodel::Counter>(obj).unwrap().n;
        let ok = execute(&chain, &mut store, &registry).unwrap().is_success();
        let post = store.get_as::<testmodel::Counter>(obj).unwrap().n;
        if ok {
            prop_assert!(post >= pre, "φ holds on success");
        } else {
            prop_assert_eq!(post, pre, "frame condition on failure");
        }
    }

    /// The Atomic analog: an all-or-nothing group of conforming operations
    /// either applies all of them (φ holds transitively) or none.
    #[test]
    fn atomic_groups_preserve_conformance(
        parts in proptest::collection::vec((0i64..6, 0i64..12), 1..5),
        init in 0i64..12,
    ) {
        use guesstimate::core::execute;
        let registry = testmodel::counter_registry();
        let obj = testmodel::counter_object();
        let group = SharedOp::atomic(
            parts
                .iter()
                .map(|&(d, cap)| SharedOp::primitive(obj, "add_capped", args![d, cap]))
                .collect(),
        );
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(testmodel::Counter { n: init }));
        let pre = store.get_as::<testmodel::Counter>(obj).unwrap().n;
        let ok = execute(&group, &mut store, &registry).unwrap().is_success();
        let post = store.get_as::<testmodel::Counter>(obj).unwrap().n;
        if ok {
            let total: i64 = parts.iter().map(|&(d, _)| d).sum();
            prop_assert_eq!(post, pre + total, "all parts applied");
        } else {
            prop_assert_eq!(post, pre, "no part applied");
        }
    }
}
