//! Refinement: the runtime implements the operational semantics.
//!
//! §3: "The committed state sc is obtained by executing the sequence of
//! completed operations C from the initial state", and all machines agree
//! on `C`. We record the full committed history of a live runtime session
//! (`MachineConfig::record_history`) and check:
//!
//! 1. every machine recorded the *same* history (agreement on `C`);
//! 2. replaying that history from the empty store — through the exact
//!    `Create`/`Shared` execution semantics — reproduces the runtime's
//!    committed state bit-for-bit (simulation of R3*);
//! 3. replaying the shared-op suffix through the *semantics crate*'s
//!    commit-order replay yields the same state again.

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::core::{execute, ObjectStore, SharedOp};
use guesstimate::net::{LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig, WireOp};
use guesstimate::semantics::replay_in_commit_order;
use guesstimate::{MachineId, OpRegistry};

fn registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    sudoku::register(&mut r);
    r
}

/// Replays a recorded wire history (creation + shared ops) from scratch.
fn replay_history(history: &[guesstimate::runtime::WireEnvelope], reg: &OpRegistry) -> ObjectStore {
    let mut store = ObjectStore::new();
    for env in history {
        match &env.op {
            WireOp::Create {
                object,
                type_name,
                init,
            } => {
                let mut obj = reg.construct(type_name).expect("registered");
                obj.restore(init).expect("snapshot matches");
                store.insert(*object, obj);
            }
            WireOp::Shared(op) => {
                let _ = execute(op, &mut store, reg);
            }
            // Cross markers are multi-group placeholders; this workload is
            // single-group, so none can appear in its history.
            WireOp::CrossMarker { .. } => panic!("single-group history has no cross markers"),
        }
    }
    store
}

#[test]
fn runtime_committed_state_equals_history_replay() {
    let n = 4u32;
    let mut net = sim_cluster(
        n,
        registry(),
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_secs(1))
            .with_record_history(true),
        NetConfig::lan(13).with_latency(LatencyModel::lan_ms(20)),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));
    for i in 0..n {
        for k in 0..30u64 {
            net.schedule_call(
                net.now() + SimTime::from_millis(70 * k + 11 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                        if let Some(&(r, c, v)) = moves.get((k % 5) as usize) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(10));

    // (1) Agreement on C: every machine recorded the identical history.
    let histories: Vec<Vec<guesstimate::runtime::WireEnvelope>> = (0..n)
        .map(|i| net.actor(MachineId::new(i)).unwrap().history().to_vec())
        .collect();
    for (i, h) in histories.iter().enumerate() {
        assert_eq!(
            h.len(),
            histories[0].len(),
            "m{i} recorded a different history length"
        );
        assert_eq!(h, &histories[0], "m{i} recorded a different history");
    }
    assert!(histories[0].len() > 50, "substantial history recorded");

    // (2) Replaying C from the empty store reproduces sc exactly.
    let reg = registry();
    let replayed = replay_history(&histories[0], &reg);
    for i in 0..n {
        let m = net.actor(MachineId::new(i)).unwrap();
        assert_eq!(
            replayed.digest(),
            m.committed_digest(),
            "m{i}: sc is not the fold of C over the initial state"
        );
    }

    // (3) The shared-op suffix (everything after the creation prefix)
    // replayed through the semantics crate agrees too.
    let create_prefix: usize = histories[0]
        .iter()
        .take_while(|e| matches!(e.op, WireOp::Create { .. }))
        .count();
    let initial = replay_history(&histories[0][..create_prefix], &reg);
    let shared_ops: Vec<SharedOp> = histories[0][create_prefix..]
        .iter()
        .map(|e| match &e.op {
            WireOp::Shared(op) => op.clone(),
            WireOp::Create { .. } => panic!("creations must form a prefix in this workload"),
            WireOp::CrossMarker { .. } => panic!("single-group history has no cross markers"),
        })
        .collect();
    let semantic = replay_in_commit_order(&initial, &shared_ops, &reg);
    assert_eq!(semantic.digest(), replayed.digest());
}

#[test]
fn histories_agree_even_with_message_loss() {
    let n = 3u32;
    let faults = guesstimate::net::FaultPlan::new().with_drop_prob(0.01);
    let mut net = sim_cluster(
        n,
        registry(),
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(600))
            .with_record_history(true),
        NetConfig::lan(31)
            .with_latency(LatencyModel::constant_ms(10))
            .with_faults(faults),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(20)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));
    for i in 0..n {
        for k in 0..20u64 {
            net.schedule_call(
                net.now() + SimTime::from_millis(150 * k + 31 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                        if let Some(&(r, c, v)) = moves.first() {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(30));

    // Restarted machines rebuild their committed state from a snapshot, so
    // their recorded histories are suffixes; compare only machines that
    // never restarted, and require at least two of them.
    let stable: Vec<u32> = (0..n)
        .filter(|&i| {
            let m = net.actor(MachineId::new(i)).unwrap();
            m.in_cohort() && m.stats().restarts == 0
        })
        .collect();
    assert!(stable.len() >= 2, "need at least two stable machines");
    let reference = net
        .actor(MachineId::new(stable[0]))
        .unwrap()
        .history()
        .to_vec();
    for &i in &stable[1..] {
        assert_eq!(
            net.actor(MachineId::new(i)).unwrap().history(),
            &reference[..],
            "m{i} diverged from m{}",
            stable[0]
        );
    }
    // And the fold-of-C property still holds for stable machines.
    let reg = registry();
    let replayed = replay_history(&reference, &reg);
    assert_eq!(
        replayed.digest(),
        net.actor(MachineId::new(stable[0]))
            .unwrap()
            .committed_digest()
    );
}
