//! Cluster-level telemetry integration: per-op span lifecycle under
//! message loss, and observational invisibility of the instrumented run
//! (docs/OBSERVABILITY.md).

use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{FaultPlan, LatencyModel, NetConfig, SimTime};
use guesstimate::runtime::{run_until_cohort, sim_cluster_instrumented, Machine, MachineConfig};
use guesstimate::telemetry::Telemetry;
use guesstimate::{MachineId, OpRegistry};

/// A short seeded session with background message loss: 4 users issue a
/// couple hundred Sudoku moves while 5% of messages are dropped, forcing
/// stall recovery (resends, re-flushes) to carry rounds to completion.
fn lossy_session(seed: u64, drop_prob: f64, telemetry: Telemetry) -> Vec<Machine> {
    let users = 4u32;
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let mut net = sim_cluster_instrumented(
        users,
        registry,
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(150))
            .with_stall_timeout(SimTime::from_secs(2)),
        NetConfig::lan(seed)
            .with_latency(LatencyModel::lan_ms(20))
            .with_faults(FaultPlan::new().with_drop_prob(drop_prob)),
        None,
        telemetry,
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(15)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(1));
    for i in 0..users {
        for k in 0..40u64 {
            net.schedule_call(
                net.now() + SimTime::from_millis(120 * k + u64::from(i) * 31),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) {
                        if let Some(&(r, c, v)) = moves.get((k % 5) as usize) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(40));
    (0..users)
        .map(|i| net.remove_machine(MachineId::new(i)).unwrap())
        .collect()
}

/// Counts a named counter in the Prometheus rendering.
fn prom_counter(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from Prometheus output"))
}

/// Message loss makes flushes disappear mid-round; recovery re-flushes
/// them. A re-flush must bump the flush counter but never duplicate the
/// operation's span, and the paper's ≤3 execution bound must survive.
#[test]
fn spans_stay_unique_under_message_loss() {
    let telemetry = Telemetry::new();
    let machines = lossy_session(11, 0.05, telemetry.clone());

    let spans = telemetry.spans();
    assert!(!spans.is_empty(), "lossy session still commits ops");
    let mut ids: Vec<_> = spans.iter().map(|s| s.op).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), spans.len(), "exactly one span per operation");

    for s in &spans {
        assert!(
            s.exec_count <= 3,
            "{:?} executed {} times",
            s.op,
            s.exec_count
        );
        if let (Some(issued), Some(flushed)) = (s.issued_at, s.flushed_at) {
            assert!(issued <= flushed, "{:?}: flushed before issued", s.op);
        }
        if let (Some(flushed), Some(committed)) = (s.flushed_at, s.committed_at) {
            assert!(flushed <= committed, "{:?}: committed before flushed", s.op);
        }
    }

    // Re-flushes are visible in the counter, not as extra spans: the
    // flush broadcasts must be at least as numerous as the distinct
    // flushed operations, strictly more once recovery re-flushed any.
    let prom = telemetry.render_prometheus();
    let flush_broadcasts = prom_counter(&prom, "guesstimate_ops_flushed_total");
    let flushed_spans = spans.iter().filter(|s| s.flushed_at.is_some()).count() as u64;
    assert!(
        flush_broadcasts >= flushed_spans,
        "flush broadcasts {flush_broadcasts} < distinct flushed ops {flushed_spans}"
    );

    let committed: u64 = machines.iter().map(|m| m.stats().committed_own).sum();
    assert!(committed > 0);
    assert_eq!(telemetry.ops_committed(), committed);
    assert_eq!(telemetry.commit_lag_count(), committed);
}

/// Observational invisibility: running the identical seeded session with
/// a live telemetry handle and with the no-op handle must commit
/// byte-identical histories on every machine.
#[test]
fn telemetry_is_observationally_invisible() {
    let instrumented = lossy_session(7, 0.02, Telemetry::new());
    let noop = lossy_session(7, 0.02, Telemetry::noop());

    assert_eq!(instrumented.len(), noop.len());
    for (a, b) in instrumented.iter().zip(&noop) {
        assert_eq!(
            a.committed_digest(),
            b.committed_digest(),
            "{}: telemetry perturbed the committed history",
            a.id()
        );
        assert_eq!(a.stats().committed_own, b.stats().committed_own);
        assert_eq!(a.stats().issued, b.stats().issued);
    }
    let committed: u64 = instrumented.iter().map(|m| m.stats().committed_own).sum();
    assert!(committed > 0, "the comparison must cover real commits");
}
