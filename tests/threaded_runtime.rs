//! The same runtime under real threads and a wall clock: concurrent
//! application threads issue against their machines while the delivery
//! service plays the network — exercising the locking the paper's §6
//! "Maintaining local state" discusses.

use std::time::{Duration, Instant};

use guesstimate::apps::message_board::{self, MessageBoard};
use guesstimate::apps::sudoku::{self, Sudoku};
use guesstimate::net::{LatencyModel, SimTime};
use guesstimate::runtime::{issue_blocking, threaded_cluster, BlockingOutcome, MachineConfig};
use guesstimate::OpRegistry;

fn wait_for(pred: impl Fn() -> bool, ms: u64) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    pred()
}

fn registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    sudoku::register(&mut r);
    message_board::register(&mut r);
    r
}

fn cfg() -> MachineConfig {
    MachineConfig::default()
        .with_sync_period(SimTime::from_millis(40))
        .with_stall_timeout(SimTime::from_secs(3))
        .with_join_retry(SimTime::from_millis(100))
}

#[test]
fn concurrent_posters_from_real_threads_converge() {
    let (_net, handles) = threaded_cluster(3, registry(), cfg(), LatencyModel::constant_ms(1), 3);
    assert!(wait_for(
        || handles
            .iter()
            .all(|h| h.read(|m| m.in_cohort()).unwrap_or(false)),
        10_000
    ));
    let board = handles[0]
        .with(|m, _| m.create_instance(MessageBoard::new()))
        .unwrap();
    handles[0].with(|m, _| {
        m.issue(message_board::ops::create_topic(board, "chat"))
            .unwrap()
    });
    assert!(wait_for(
        || handles.iter().all(
            |h| h.read(|m| m.object_type(board).is_some()).unwrap_or(false)
                && h.read(|m| m.read::<MessageBoard, _>(board, |b| b.topics().len()) == Some(1))
                    .unwrap_or(false)
        ),
        10_000
    ));

    // Three OS threads hammer their machines concurrently.
    let threads: Vec<_> = handles
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, h)| {
            std::thread::spawn(move || {
                for k in 0..20 {
                    h.with(|m, _| {
                        m.issue(message_board::ops::post(
                            board,
                            "chat",
                            &format!("user{i}"),
                            &format!("msg {k}"),
                        ))
                        .unwrap();
                    });
                    std::thread::sleep(Duration::from_millis(3));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Everyone drains and agrees; all 60 posts survive in the same order.
    assert!(wait_for(
        || {
            let d0 = handles[0].read(|m| m.committed_digest());
            handles.iter().all(|h| {
                h.read(|m| m.pending_len() == 0).unwrap_or(false)
                    && h.read(|m| m.committed_digest()) == d0
            })
        },
        15_000
    ));
    let counts: Vec<Option<usize>> = handles
        .iter()
        .map(|h| {
            h.read(|m| m.read::<MessageBoard, _>(board, |b| b.posts("chat").unwrap().len()))
                .unwrap()
        })
        .collect();
    assert_eq!(counts, vec![Some(60), Some(60), Some(60)]);
}

#[test]
fn blocking_and_nonblocking_issues_interleave() {
    let (_net, handles) = threaded_cluster(2, registry(), cfg(), LatencyModel::constant_ms(1), 5);
    assert!(wait_for(
        || handles
            .iter()
            .all(|h| h.read(|m| m.in_cohort()).unwrap_or(false)),
        10_000
    ));
    let board = handles[0]
        .with(|m, _| m.create_instance(sudoku::example_puzzle()))
        .unwrap();
    assert!(wait_for(
        || handles[1]
            .read(|m| m.object_type(board).is_some())
            .unwrap_or(false),
        10_000
    ));

    // Non-blocking move from machine 1 while machine 0's thread does a
    // blocking one — the blocking call must not deadlock the mesh.
    handles[1].with(|m, _| {
        let mv = m
            .read::<Sudoku, _>(board, |s| s.candidate_moves()[0])
            .unwrap();
        m.issue(sudoku::ops::update(board, mv.0, mv.1, mv.2))
            .unwrap();
    });
    let mv0 = handles[0]
        .read(|m| m.read::<Sudoku, _>(board, |s| s.candidate_moves()[5]))
        .unwrap()
        .unwrap();
    let outcome = issue_blocking(
        &handles[0],
        sudoku::ops::update(board, mv0.0, mv0.1, mv0.2),
        Duration::from_secs(10),
    );
    assert!(matches!(outcome, BlockingOutcome::Committed(_)));
    assert!(wait_for(
        || {
            let d0 = handles[0].read(|m| m.committed_digest());
            handles[1].read(|m| m.committed_digest()) == d0
                && handles
                    .iter()
                    .all(|h| h.read(|m| m.pending_len() == 0).unwrap_or(false))
        },
        15_000
    ));
}
